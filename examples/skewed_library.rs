//! A skewed digital-library workload: the scenario motivating VoroNet.
//!
//! Documents are published with two attribute values (say, publication year
//! and popularity rank).  Real collections are heavily skewed — most
//! documents cluster around a few popular values — which breaks DHT-style
//! load balancing.  This example publishes a power-law (Zipf, α = 2)
//! collection and shows that VoroNet keeps both the per-object state and the
//! routing cost essentially identical to the uniform case.
//!
//! ```text
//! cargo run --release --example skewed_library
//! ```

use voronet::prelude::*;
use voronet_core::experiments::{build_overlay, mean_route_length};

const OBJECTS: usize = 3_000;
const ROUTE_SAMPLES: usize = 2_000;

fn describe(dist: Distribution) -> (f64, f64, u64) {
    let cfg = VoroNetConfig::new(OBJECTS).with_seed(2006);
    let (mut net, ids) = build_overlay(dist, OBJECTS, cfg);
    let mean_hops = mean_route_length(&mut net, &ids, ROUTE_SAMPLES, 99);
    let degrees = net.degree_histogram();
    (degrees.mean(), mean_hops, degrees.max().unwrap_or(0))
}

fn main() {
    println!("publishing {OBJECTS} objects under uniform and skewed distributions\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "distribution", "mean |vn|", "max |vn|", "mean hops"
    );
    for dist in [
        Distribution::Uniform,
        Distribution::PowerLaw { alpha: 1.0 },
        Distribution::PowerLaw { alpha: 2.0 },
        Distribution::PowerLaw { alpha: 5.0 },
    ] {
        let (mean_deg, mean_hops, max_deg) = describe(dist);
        println!(
            "{:<22} {:>12.2} {:>12} {:>12.2}",
            dist.label(),
            mean_deg,
            max_deg,
            mean_hops
        );
    }
    println!(
        "\nThe neighbourhood size stays O(1) and the routing cost stays\n\
         poly-logarithmic even when almost every object crowds one corner of\n\
         the attribute space — the property Figure 5 and Figure 6 of the\n\
         paper demonstrate at 300 000 objects."
    );
}
