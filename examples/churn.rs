//! Churn: objects continuously joining and leaving the overlay.
//!
//! Demonstrates the decentralised maintenance of Section 3.3/4.2: joins and
//! departures touch only a constant-size neighbourhood (plus one
//! poly-logarithmic route), long-range links are repaired by delegation, and
//! the overlay invariants hold throughout.
//!
//! ```text
//! cargo run --release --example churn
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use voronet::prelude::*;

const STEPS: usize = 4_000;
const TARGET_POPULATION: usize = 1_500;

fn main() {
    let config = VoroNetConfig::new(2 * TARGET_POPULATION)
        .with_long_links(2)
        .with_seed(11);
    let mut net = VoroNet::new(config);
    let mut rng = StdRng::seed_from_u64(12);
    let mut live: Vec<ObjectId> = Vec::new();

    let mut join_messages = 0u64;
    let mut leave_messages = 0u64;
    let mut joins = 0u64;
    let mut leaves = 0u64;
    let mut delegated = 0u64;

    for step in 0..STEPS {
        // Keep the population around the target with 60/40 join/leave mix.
        let join = live.len() < 10
            || (live.len() < TARGET_POPULATION && rng.random::<f64>() < 0.6)
            || rng.random::<f64>() < 0.5;
        if join {
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            if let Ok(report) = net.insert(p) {
                join_messages += report.messages;
                joins += 1;
                live.push(report.id);
            }
        } else if !live.is_empty() {
            let idx = rng.random_range(0..live.len());
            let id = live.swap_remove(idx);
            let report = net.remove(id).unwrap();
            leave_messages += report.messages;
            delegated += report.delegated_links as u64;
            leaves += 1;
        }
        if step % 1000 == 999 {
            net.check_invariants(false)
                .expect("overlay invariants must survive churn");
            println!(
                "step {:>5}: {:>5} objects live, invariants OK",
                step + 1,
                net.len()
            );
        }
    }

    println!("\nchurn summary over {STEPS} steps:");
    println!(
        "  joins: {joins} (avg {:.1} messages each)",
        join_messages as f64 / joins as f64
    );
    println!(
        "  leaves: {leaves} (avg {:.1} messages each, {:.2} long links delegated each)",
        leave_messages as f64 / leaves as f64,
        delegated as f64 / leaves as f64
    );

    let degrees = net.degree_histogram();
    println!(
        "  final population {}: mean degree {:.2}, mode {}",
        net.len(),
        degrees.mean(),
        degrees.mode().unwrap_or(0)
    );

    // Routing still works after heavy churn.
    let ids: Vec<ObjectId> = net.ids().collect();
    let mut total_hops = 0u64;
    let samples = 500;
    for _ in 0..samples {
        let a = ids[rng.random_range(0..ids.len())];
        let b = ids[rng.random_range(0..ids.len())];
        if a == b {
            continue;
        }
        total_hops += net.route_between(a, b).unwrap().hops as u64;
    }
    println!(
        "  mean route length after churn: {:.2} hops",
        total_hops as f64 / samples as f64
    );
}
