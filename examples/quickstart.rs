//! Quickstart: build a small VoroNet overlay, publish objects, route a few
//! queries and inspect one object's view.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use voronet::prelude::*;

fn main() {
    // An overlay provisioned for up to 10 000 objects, one long link each.
    let config = VoroNetConfig::new(10_000).with_seed(42);
    let mut net = VoroNet::new(config);

    // Publish 2 000 objects drawn uniformly from the attribute space.  In a
    // real deployment each object would be published by the physical node
    // hosting it; the coordinates are its two attribute values.
    let mut generator = PointGenerator::new(Distribution::Uniform, 7);
    let mut ids = Vec::new();
    while ids.len() < 2_000 {
        if let Ok(report) = net.insert(generator.next_point()) {
            ids.push(report.id);
        }
    }
    println!(
        "published {} objects (d_min = {:.5})",
        net.len(),
        net.dmin()
    );

    // Greedy routing between two random objects.
    let route = net.route_between(ids[17], ids[1_900]).unwrap();
    println!(
        "route {} -> {}: {} hops through {} objects",
        ids[17],
        ids[1_900],
        route.hops,
        route.path.len()
    );

    // Point query: which object is responsible for an arbitrary point of the
    // attribute space?
    let query = Point2::new(0.42, 0.66);
    let answer = net.handle_query(ids[0], query).unwrap();
    println!(
        "query {query} answered by {} at {} after {} hops",
        answer.owner,
        net.coords(answer.owner).unwrap(),
        answer.hops
    );

    // The view an object maintains: Voronoi neighbours, close neighbours,
    // long links and back-long-range pointers (Section 3.1 of the paper).
    let view = net.view(answer.owner).unwrap();
    println!(
        "owner's view: {} voronoi neighbours, {} close, {} long links, {} back links ({} entries total)",
        view.voronoi_neighbours.len(),
        view.close_neighbours.len(),
        view.long_links.len(),
        view.back_long_links.len(),
        view.size()
    );

    // Degree statistics: the mode of |vn(o)| is 6 regardless of distribution.
    let degrees = net.degree_histogram();
    println!(
        "voronoi degree: mean {:.2}, mode {}, max {}",
        degrees.mean(),
        degrees.mode().unwrap(),
        degrees.max().unwrap()
    );

    // Range query (the paper's motivating application): all objects with
    // attribute values in [0.4, 0.6] x [0.4, 0.6].
    let rect = Rect::new(Point2::new(0.4, 0.4), Point2::new(0.6, 0.6));
    let report = range_query(&mut net, ids[3], voronet::workloads::RangeQuery { rect }).unwrap();
    println!(
        "range query over the centre square: {} matches, {} objects visited, {} flood messages",
        report.matches.len(),
        report.visited,
        report.flood_messages
    );
}
