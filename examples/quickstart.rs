//! Quickstart: build a small VoroNet overlay through the backend-agnostic
//! API, publish objects, route queries (single and batched) and inspect
//! one object's view.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use voronet::prelude::*;

fn main() {
    // An overlay provisioned for up to 10 000 objects, one long link each,
    // built on the synchronous engine.  Swapping in the message-driven
    // engine is `.engine(EngineKind::Async).build()` — same trait, same
    // program (see the `engines` example).
    let mut net = OverlayBuilder::new(10_000).seed(42).build_sync();

    // Publish 2 000 objects drawn uniformly from the attribute space.  In a
    // real deployment each object would be published by the physical node
    // hosting it; the coordinates are its two attribute values.
    let mut generator = PointGenerator::new(Distribution::Uniform, 7);
    let mut ids = Vec::new();
    while ids.len() < 2_000 {
        if let Ok(outcome) = net.insert(generator.next_point()) {
            ids.push(outcome.id);
        }
    }
    println!(
        "published {} objects (d_min = {:.5})",
        net.len(),
        net.config().dmin()
    );

    // Greedy routing between two random objects.
    let route = net.route_between(ids[17], ids[1_900]).unwrap();
    println!("route {} -> {}: {} hops", ids[17], ids[1_900], route.hops);

    // Point query: which object is responsible for an arbitrary point of
    // the attribute space?
    let query = Point2::new(0.42, 0.66);
    let answer = net.route(ids[0], query).unwrap();
    println!(
        "query {query} answered by {} at {} after {} hops",
        answer.owner,
        net.coords(answer.owner).unwrap(),
        answer.hops
    );

    // The view an object maintains: Voronoi neighbours, close neighbours,
    // long links and back-long-range pointers (Section 3.1 of the paper).
    let view = net.snapshot(answer.owner).unwrap();
    println!(
        "owner's view: {} voronoi neighbours, {} close, {} long links, {} back links ({} entries total)",
        view.voronoi_neighbours.len(),
        view.close_neighbours.len(),
        view.long_links.len(),
        view.back_long_links.len(),
        view.size()
    );

    // Batched submission: the throughput form of the same operations.  One
    // call, one result per op, same semantics.
    let batch: Vec<Op> = (0..64)
        .map(|i| Op::RouteBetween {
            from: ids[i * 7 % ids.len()],
            to: ids[(i * 13 + 5) % ids.len()],
        })
        .chain((0..8).map(|_| Op::Insert {
            position: generator.next_point(),
        }))
        .collect();
    let results = net.apply_batch(&batch);
    let routed = results.iter().filter_map(OpResult::as_routed).count();
    let inserted = results.iter().filter_map(OpResult::as_inserted).count();
    println!(
        "batch of {}: {} routes + {} inserts completed, all ok = {}",
        batch.len(),
        routed,
        inserted,
        results.iter().all(OpResult::is_ok)
    );

    // Range query (the paper's motivating application): all objects with
    // attribute values in [0.4, 0.6] x [0.4, 0.6].
    let rect = Rect::new(Point2::new(0.4, 0.4), Point2::new(0.6, 0.6));
    let report = net
        .range(ids[3], voronet::workloads::RangeQuery { rect })
        .unwrap();
    println!(
        "range query over the centre square: {} matches, {} objects visited, {} flood messages",
        report.matches.len(),
        report.visited,
        report.flood_messages
    );

    // Aggregate engine counters through the same trait.
    let stats = net.stats();
    println!(
        "stats: population {}, {} protocol messages, {} routes completed (mean {:.2} hops)",
        stats.population, stats.messages, stats.routes_completed, stats.mean_route_hops
    );
}
