//! Range and radius queries over the attribute space — the application-level
//! search mechanisms the paper's perspectives section sketches.
//!
//! ```text
//! cargo run --release --example range_queries
//! ```

use voronet::prelude::*;
use voronet_core::experiments::build_overlay;
use voronet_workloads::{RadiusQuery, RangeQuery};

const OBJECTS: usize = 4_000;

fn main() {
    let cfg = VoroNetConfig::new(OBJECTS).with_seed(2024);
    let (mut net, ids) = build_overlay(Distribution::PowerLaw { alpha: 1.0 }, OBJECTS, cfg);
    println!(
        "overlay of {} objects (skewed, alpha = 1); issuing area queries from {}",
        net.len(),
        ids[0]
    );

    let mut qg = QueryGenerator::new(77);
    println!(
        "\n{:<44} {:>8} {:>9} {:>9} {:>10}",
        "query", "matches", "visited", "flood msg", "route hops"
    );

    for extent in [0.02, 0.05, 0.1, 0.2, 0.4] {
        let q: RangeQuery = qg.range_query(extent);
        let report = range_query(&mut net, ids[0], q).unwrap();
        println!(
            "{:<44} {:>8} {:>9} {:>9} {:>10}",
            format!(
                "rect [{:.2},{:.2}]x[{:.2},{:.2}]",
                q.rect.min.x, q.rect.max.x, q.rect.min.y, q.rect.max.y
            ),
            report.matches.len(),
            report.visited,
            report.flood_messages,
            report.routing_hops
        );
    }

    for radius in [0.01, 0.05, 0.1, 0.25] {
        let q = RadiusQuery {
            center: Point2::new(0.3, 0.3),
            radius,
        };
        let report = radius_query(&mut net, ids[1], q).unwrap();
        println!(
            "{:<44} {:>8} {:>9} {:>9} {:>10}",
            format!("disk centre (0.30,0.30) radius {radius:.2}"),
            report.matches.len(),
            report.visited,
            report.flood_messages,
            report.routing_hops
        );
    }

    println!(
        "\nThe flood footprint (objects visited) tracks the number of Voronoi\n\
         cells intersecting the queried area, not the overlay size: small\n\
         areas are answered by a handful of objects."
    );
}
