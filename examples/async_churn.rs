//! Scripted churn on the asynchronous per-node runtime.
//!
//! Builds a 1,000-object overlay, then runs the same interleaved workload of
//! joins, departures, routes and area queries three times: on an ideal
//! network, under heavy-tailed latency with 10% message loss, and with an
//! additional partition window.  Prints the resulting traffic, route and
//! delivery statistics side by side — the experiment the synchronous fast
//! path cannot express.
//!
//! Run with: `cargo run --release --example async_churn`

use voronet::prelude::*;
use voronet_core::runtime::{run_scenario, RoutingMode, ScenarioReport};
use voronet_core::VoroNetConfig;
use voronet_sim::{LatencyModel, MessageKind, NetworkModel, PartitionWindow, Scenario, ScenarioOp};
use voronet_workloads::Distribution;

fn scenario(seed: u64) -> Scenario {
    let mut warm = PointGenerator::new(Distribution::Uniform, seed ^ 0x57A7);
    let mut joins = PointGenerator::new(Distribution::Uniform, seed ^ 0x10AD);
    let mut qg = QueryGenerator::new(seed ^ 0xA3EA);
    let rects: Vec<_> = (0..16).map(|_| qg.range_query(0.12).rect).collect();
    Scenario::builder("async-churn-1k", seed)
        .warmup(warm.take_points(1_000))
        .churn(0, 2_400, 400, 0.4, 0.2, move || joins.next_point())
        .every(60, 140, 16, |i| ScenarioOp::AreaQuery {
            rect: rects[i % rects.len()],
        })
        .every(30, 110, 20, |_| ScenarioOp::Ping)
        .build()
}

fn print_report(label: &str, r: &ScenarioReport) {
    let c = &r.counters;
    let d = &r.delivery;
    println!("── {label} ──────────────────────────────────────────");
    println!(
        "  population {:>5}   quiesced at t={:<8} ops skipped {}",
        r.population, r.end_time, c.ops_skipped
    );
    println!(
        "  joins      {:>5} requested  {:>5} completed  {:>3} failed",
        c.joins_requested, c.joins_completed, c.joins_failed
    );
    println!(
        "  leaves     {:>5}            pings {:>3} → pongs {:>3}",
        c.leaves, c.pings, c.pongs
    );
    println!(
        "  routes     {:>5} started    {:>5} completed  ({:.1}% lost in the network)",
        c.routes_started,
        c.routes_completed,
        100.0 * (c.routes_started - c.routes_completed) as f64 / c.routes_started.max(1) as f64
    );
    if r.routes.count() > 0 {
        println!(
            "  hops       mean {:.2}  p50 {}  p99 {}  max {}",
            r.routes.mean(),
            r.routes.quantile(0.5).unwrap(),
            r.routes.quantile(0.99).unwrap(),
            r.routes.max().unwrap()
        );
    }
    println!(
        "  area qs    {:>5} completed  {:>5} objects matched",
        c.area_queries_completed, c.area_query_matches
    );
    println!(
        "  messages   {:>7} sent  {:>7} delivered  {:>5} lost  {:>5} partitioned  {:>5} dead",
        d.sent, d.delivered, d.dropped_loss, d.dropped_partition, d.dead_letters
    );
    println!(
        "  traffic    route {:>6}  voronoi {:>6}  departure {:>5}  answers {:>5}",
        r.traffic.count(MessageKind::RouteForward),
        r.traffic.count(MessageKind::VoronoiUpdate),
        r.traffic.count(MessageKind::Departure),
        r.traffic.count(MessageKind::QueryAnswer),
    );
    if let Some((node, count)) = r.traffic.max_sender() {
        let name = if voronet_core::runtime::is_joiner(node) {
            "a joiner's bootstrap request".to_string()
        } else {
            format!("o{node}")
        };
        println!(
            "             busiest sender {name} with {count} messages (mean {:.1}/sender)",
            r.traffic.mean_per_sender()
        );
    }
}

fn main() {
    let seed = 2006;
    let cfg = VoroNetConfig::new(2_000).with_seed(seed);
    let script = scenario(seed);
    println!(
        "scenario `{}`: {} warmup objects, {} scripted operations\n",
        script.name,
        script.warmup.len(),
        script.len()
    );

    let ideal = run_scenario(cfg, &script, NetworkModel::ideal(), RoutingMode::Greedy);
    print_report("ideal network (1 unit/hop, no loss)", &ideal);

    let latency = LatencyModel::Skewed {
        min: 1,
        max: 60,
        alpha: 1.2,
    };
    let lossy = run_scenario(
        cfg,
        &script,
        NetworkModel::new(seed, latency).with_loss(0.10),
        RoutingMode::Greedy,
    );
    print_report("heavy-tailed latency + 10% loss", &lossy);

    let partitioned = run_scenario(
        cfg,
        &script,
        NetworkModel::new(seed, latency)
            .with_loss(0.10)
            .with_partition(PartitionWindow {
                start: 600,
                end: 1_200,
                groups: 2,
            }),
        RoutingMode::Greedy,
    );
    print_report("… plus a 2-way partition for t∈[600,1200)", &partitioned);

    println!("\nDeterminism: re-running the lossy scenario with the same seed …");
    let again = run_scenario(
        cfg,
        &script,
        NetworkModel::new(seed, latency).with_loss(0.10),
        RoutingMode::Greedy,
    );
    assert_eq!(
        lossy, again,
        "same seed must reproduce the identical report"
    );
    println!("… identical report reproduced ✓");
}
