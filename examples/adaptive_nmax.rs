//! Dynamic re-provisioning of `N_max` — the paper's perspective on lifting
//! the static capacity limit.
//!
//! The overlay below is deliberately under-provisioned (capacity 500) and
//! then filled with 3 000 objects.  A background adaptation policy detects
//! the overflow, multiplies `N_max`, shrinks `d_min`, prunes the
//! close-neighbour sets and refreshes the long-range links of the objects
//! whose neighbourhood had become too dense.
//!
//! ```text
//! cargo run --release --example adaptive_nmax
//! ```

use voronet::prelude::*;
use voronet_core::dynamic::{adapt_nmax, needs_adaptation, AdaptationPolicy, RefreshStrategy};
use voronet_core::DminRule;
use voronet_core::VoroNetConfig;

fn mean_close(net: &VoroNet) -> f64 {
    let ids: Vec<ObjectId> = net.ids().collect();
    if ids.is_empty() {
        return 0.0;
    }
    ids.iter()
        .map(|&id| net.close_neighbours(id).unwrap().len() as f64)
        .sum::<f64>()
        / ids.len() as f64
}

fn main() {
    // Under-provisioned overlay with the "analysis" d_min so the pressure on
    // close neighbourhoods is visible.
    let config = VoroNetConfig::new(500)
        .with_seed(31)
        .with_dmin_rule(DminRule::Analysis);
    let mut net = VoroNet::new(config);
    let mut gen = PointGenerator::new(Distribution::PowerLaw { alpha: 1.0 }, 8);
    let mut inserted = 0usize;
    while inserted < 3_000 {
        if net.insert(gen.next_point()).is_ok() {
            inserted += 1;
        }
    }
    println!(
        "before adaptation: {} objects in an overlay provisioned for {}, d_min = {:.5}, mean |cn| = {:.2}",
        net.len(),
        net.config().nmax,
        net.dmin(),
        mean_close(&net)
    );

    let policy = AdaptationPolicy {
        trigger_fraction: 1.0,
        growth_factor: 8,
        strategy: RefreshStrategy::DenseOnly {
            max_close_neighbours: 4,
        },
    };
    assert!(needs_adaptation(&net, &policy));
    let report = adapt_nmax(&mut net, &policy)
        .expect("live objects")
        .expect("policy triggered");
    println!(
        "adaptation: N_max {} -> {}, {} close pairs pruned, {} objects refreshed their long links ({} routing hops)",
        report.old_nmax,
        report.new_nmax,
        report.pruned_pairs,
        report.refreshed_objects,
        report.refresh_hops
    );
    println!(
        "after adaptation: d_min = {:.5}, mean |cn| = {:.2}",
        net.dmin(),
        mean_close(&net)
    );

    net.check_invariants(false)
        .expect("invariants hold after adaptation");

    // Routing is still exact.
    let ids: Vec<ObjectId> = net.ids().collect();
    let mut qg = QueryGenerator::new(4);
    let mut hops = 0u64;
    let trials = 500;
    for _ in 0..trials {
        let target = qg.point();
        let from = ids[qg.object_index(ids.len())];
        let report = net.route_to_point(from, target).unwrap();
        assert_eq!(Some(report.owner), net.owner_of(target));
        hops += report.hops as u64;
    }
    println!(
        "routing after adaptation: mean {:.2} hops over {trials} random point queries",
        hops as f64 / trials as f64
    );
}
