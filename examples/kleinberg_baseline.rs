//! VoroNet versus the Kleinberg grid it generalises.
//!
//! Kleinberg's model obtains `O(log² n)` greedy routing on a regular grid;
//! VoroNet obtains the same bound for *any* object distribution.  This
//! example routes over both structures at equal population and reports the
//! mean hop counts, plus the grid's sensitivity to the clustering exponent
//! `s` (navigability is lost away from `s = 2`).
//!
//! ```text
//! cargo run --release --example kleinberg_baseline
//! ```

use voronet::prelude::*;
use voronet_core::experiments::{build_overlay, mean_route_length};
use voronet_smallworld::{KleinbergConfig, KleinbergGrid};

fn main() {
    let side: u32 = 64; // 4 096 vertices
    let population = (side * side) as usize;
    println!("population: {population} objects / grid vertices\n");

    // --- Kleinberg grid: exponent sweep -------------------------------
    println!("Kleinberg grid, 1 long link, greedy routing (500 pairs):");
    println!("{:>6} {:>12}", "s", "mean hops");
    for s in [0.0, 1.0, 2.0, 3.0, 4.0] {
        let grid = KleinbergGrid::build(
            KleinbergConfig {
                side,
                long_links: 1,
                exponent: s,
            },
            17,
        );
        println!("{:>6.1} {:>12.2}", s, grid.mean_route_length(500, 3));
    }

    // --- VoroNet at the same population --------------------------------
    println!("\nVoroNet, 1 long link, greedy routing (500 pairs):");
    println!("{:>22} {:>12}", "distribution", "mean hops");
    for dist in [Distribution::Uniform, Distribution::PowerLaw { alpha: 5.0 }] {
        let cfg = VoroNetConfig::new(population).with_seed(5);
        let (mut net, ids) = build_overlay(dist, population, cfg);
        let hops = mean_route_length(&mut net, &ids, 500, 9);
        println!("{:>22} {:>12.2}", dist.label(), hops);
    }

    println!(
        "\nThe grid model only routes well on a regular lattice at s = 2;\n\
         VoroNet keeps comparable hop counts for arbitrary (even heavily\n\
         skewed) object placements — the generalisation the paper proves."
    );
}
