//! One workload, every engine: the same batched program runs unchanged on
//! the synchronous fast path and on the message-driven asynchronous
//! runtime — including a lossy network where operations can genuinely
//! fail.
//!
//! ```text
//! cargo run --release --example engines
//! ```

use voronet::prelude::*;
use voronet::sim::{LatencyModel, NetworkModel};
use voronet_api::resolve_workload;

const NMAX: usize = 2_000;
const WARMUP: usize = 600;
const BATCH: usize = 400;

fn run(label: &str, mut net: Box<dyn Overlay>) {
    // Warm the overlay up through the trait: plain inserts.
    let mut points = PointGenerator::new(Distribution::Uniform, 0x57A7);
    let warmup: Vec<Op> = (0..WARMUP)
        .map(|_| Op::Insert {
            position: points.next_point(),
        })
        .collect();
    let inserted = net
        .apply_batch(&warmup)
        .iter()
        .filter(|r| r.is_ok())
        .count();

    // A read-heavy op script from the workload layer, bound to this
    // engine's population at submission time.
    let mut gen = OpBatchGenerator::new(Distribution::Uniform, 0x10AD, OpMix::read_heavy());
    let script = gen.batch(net.len(), BATCH);
    let ops = resolve_workload(net.as_ref(), &script);
    let results = net.apply_batch(&ops);

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let lost = results
        .iter()
        .filter(|r| {
            matches!(
                r.err().map(VoronetError::kind),
                Some(ErrorKind::OperationLost)
            )
        })
        .count();
    let routed: Vec<&voronet_api::RouteOutcome> =
        results.iter().filter_map(OpResult::as_routed).collect();
    let mean_hops = if routed.is_empty() {
        0.0
    } else {
        routed.iter().map(|r| f64::from(r.hops)).sum::<f64>() / routed.len() as f64
    };
    let stats = net.stats();

    println!("── {label} ─────────────────────────────────────");
    println!(
        "  warmup     {inserted}/{WARMUP} inserts ok, population {}",
        stats.population
    );
    println!(
        "  batch      {}/{} ops ok ({} lost to the network)",
        ok,
        results.len(),
        lost
    );
    println!(
        "  routes     {} completed in this batch, mean {:.2} hops",
        routed.len(),
        mean_hops
    );
    println!(
        "  engine     {} messages total, {} routes completed overall",
        stats.messages, stats.routes_completed
    );
    net.verify_invariants()
        .expect("overlay invariants hold on every engine");
}

fn main() {
    println!("the same {BATCH}-op read-heavy batch, submitted through `Box<dyn Overlay>`\n");

    let builder = OverlayBuilder::new(NMAX).seed(2006);

    run("sync engine", builder.clone().build());
    run(
        "async engine (ideal network)",
        builder.clone().engine(EngineKind::Async).build(),
    );
    run(
        "async engine (heavy-tailed latency, 20% loss)",
        builder
            .engine(EngineKind::Async)
            .network(
                NetworkModel::new(
                    2006,
                    LatencyModel::Skewed {
                        min: 1,
                        max: 40,
                        alpha: 1.3,
                    },
                )
                .with_loss(0.20),
            )
            .build(),
    );

    println!("\nNo engine type appears in `run` — that is the point.");
}
