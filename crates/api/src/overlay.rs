//! The backend-agnostic [`Overlay`] trait.

use crate::ops::{
    InsertOutcome, Op, OpResult, OverlayStats, QueryOutcome, RemoveOutcome, RouteOutcome,
};
use voronet_core::{ErrorKind, ObjectId, ObjectView, SnapshotStats, VoroNetConfig, VoronetError};
use voronet_geom::Point2;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// One VoroNet overlay, whichever engine executes it.
///
/// The trait captures the protocol surface of the paper — publish
/// ([`Overlay::insert`]), withdraw ([`Overlay::remove`]), greedy routing
/// ([`Overlay::route`]), area queries ([`Overlay::range`],
/// [`Overlay::radius`]) and view inspection ([`Overlay::snapshot`]) — plus
/// the batched submission form ([`Overlay::apply_batch`]) that
/// throughput-oriented callers use.  Every error is a [`VoronetError`];
/// engine-specific failure modes (an operation lost to a lossy network)
/// map onto its kinds instead of inventing new types.
///
/// The trait is dyn-compatible: workloads, benches and tests hold a
/// `Box<dyn Overlay>` and never name an engine.  Implementations exist for
/// the synchronous [`SyncEngine`](crate::SyncEngine) and the message-driven
/// [`AsyncEngine`](crate::AsyncEngine); any future engine (sharded,
/// multi-threaded, remote) plugs in by implementing this trait.
pub trait Overlay {
    /// Short engine identifier ("sync", "async", …) for reports and test
    /// labels.
    fn engine_name(&self) -> &'static str;

    /// The overlay configuration.
    fn config(&self) -> &VoroNetConfig;

    /// Number of live objects.
    fn len(&self) -> usize;

    /// True when the overlay holds no object.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `id` is a live object.
    fn contains(&self, id: ObjectId) -> bool;

    /// Coordinates of a live object.
    fn coords(&self, id: ObjectId) -> Option<Point2>;

    /// The `index`-th live object in the engine's dense sampling order
    /// (`index < len()`) — O(1) uniform sampling without materialising the
    /// id list.
    fn id_at(&self, index: usize) -> Option<ObjectId>;

    /// All live object ids, in dense sampling order.
    fn ids(&self) -> Vec<ObjectId> {
        (0..self.len()).filter_map(|i| self.id_at(i)).collect()
    }

    /// Publishes a new object at `position`.
    fn insert(&mut self, position: Point2) -> Result<InsertOutcome, VoronetError>;

    /// Gracefully removes a live object.
    fn remove(&mut self, id: ObjectId) -> Result<RemoveOutcome, VoronetError>;

    /// Greedy-routes from `from` towards an arbitrary target point,
    /// returning the owner of the target's Voronoi region.
    fn route(&mut self, from: ObjectId, target: Point2) -> Result<RouteOutcome, VoronetError>;

    /// Greedy-routes between two live objects.
    fn route_between(
        &mut self,
        from: ObjectId,
        to: ObjectId,
    ) -> Result<RouteOutcome, VoronetError> {
        let target = self
            .coords(to)
            .ok_or_else(|| VoronetError::new(ErrorKind::UnknownObject(to)))?;
        self.route(from, target)
    }

    /// Executes a rectangular range query issued by `from`.
    fn range(&mut self, from: ObjectId, query: RangeQuery) -> Result<QueryOutcome, VoronetError>;

    /// Executes a radius (disk) query issued by `from`.
    fn radius(&mut self, from: ObjectId, query: RadiusQuery) -> Result<QueryOutcome, VoronetError>;

    /// The complete view a live object maintains (Section 3.1 of the
    /// paper), as an owned snapshot.
    fn snapshot(&self, id: ObjectId) -> Result<ObjectView, VoronetError>;

    /// Aggregate engine counters.
    fn stats(&self) -> OverlayStats;

    /// Snapshot-maintenance economics: how the engine kept its frozen
    /// read views current (reused / delta-patched / rebuilt).  These
    /// describe the execution strategy, not the protocol, so they live
    /// outside [`Overlay::stats`] — engines with different view policies
    /// still agree on protocol counters.  Engines without frozen views
    /// report the all-zero default.
    fn snapshot_stats(&self) -> SnapshotStats {
        SnapshotStats::default()
    }

    /// Verifies the engine's structural invariants (used by tests and
    /// debugging; engines may run the non-exhaustive variant).
    fn verify_invariants(&self) -> Result<(), VoronetError>;

    /// Applies one operation.
    fn apply(&mut self, op: &Op) -> OpResult {
        match *op {
            Op::Insert { position } => match self.insert(position) {
                Ok(r) => OpResult::Inserted(r),
                Err(e) => OpResult::Failed(e),
            },
            Op::Remove { id } => match self.remove(id) {
                Ok(r) => OpResult::Removed(r),
                Err(e) => OpResult::Failed(e),
            },
            Op::Route { from, target } => match self.route(from, target) {
                Ok(r) => OpResult::Routed(r),
                Err(e) => OpResult::Failed(e),
            },
            Op::RouteBetween { from, to } => match self.route_between(from, to) {
                Ok(r) => OpResult::Routed(r),
                Err(e) => OpResult::Failed(e),
            },
            Op::Range { from, query } => match self.range(from, query) {
                Ok(r) => OpResult::Queried(r),
                Err(e) => OpResult::Failed(e),
            },
            Op::Radius { from, query } => match self.radius(from, query) {
                Ok(r) => OpResult::Queried(r),
                Err(e) => OpResult::Failed(e),
            },
            Op::Snapshot { id } => match self.snapshot(id) {
                Ok(v) => OpResult::Snapshotted(Box::new(v)),
                Err(e) => OpResult::Failed(e),
            },
            // Service semantics live in the service layer
            // (`voronet-services`), which wraps an engine and intercepts
            // these before they ever reach a bare engine.
            Op::Service(_) => OpResult::Failed(VoronetError::new(ErrorKind::Unsupported)),
        }
    }

    /// Applies a batch of operations, returning one result per operation at
    /// the same index.  The default implementation applies them in order;
    /// engines override it to amortise work across the batch (the
    /// asynchronous engine lets a run of consecutive routes share one
    /// quiescence round).
    fn apply_batch(&mut self, ops: &[Op]) -> Vec<OpResult> {
        ops.iter().map(|op| self.apply(op)).collect()
    }
}
