//! Textual serialization of [`Op`] batches, for replayable test artefacts.
//!
//! The differential testkit (`voronet-testkit`) persists failing op
//! sequences as reproducer files; this module provides the op-level layer
//! of that format: one operation per line, space-separated fields, floats
//! printed with Rust's shortest round-trip representation so a parsed
//! batch is bit-identical to the encoded one.
//!
//! ```
//! use voronet_api::replay;
//! use voronet_api::Op;
//! use voronet_core::ObjectId;
//! use voronet_geom::Point2;
//!
//! let batch = vec![
//!     Op::Insert { position: Point2::new(0.25, 0.75) },
//!     Op::RouteBetween { from: ObjectId(0), to: ObjectId(1) },
//! ];
//! let text = replay::encode_batch(&batch);
//! assert_eq!(replay::parse_batch(&text).unwrap(), batch);
//! ```

use crate::ops::{Op, ServiceOp};
use voronet_core::ObjectId;
use voronet_geom::{Point2, Rect};
use voronet_workloads::{RadiusQuery, RangeQuery};

/// A syntax or arity error while parsing an encoded op batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ReplayParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReplayParseError {}

/// Encodes one operation as a single line (no trailing newline).
pub fn encode_op(op: &Op) -> String {
    match *op {
        Op::Insert { position } => format!("insert {} {}", position.x, position.y),
        Op::Remove { id } => format!("remove {}", id.0),
        Op::Route { from, target } => format!("route {} {} {}", from.0, target.x, target.y),
        Op::RouteBetween { from, to } => format!("route_between {} {}", from.0, to.0),
        Op::Range { from, query } => format!(
            "range {} {} {} {} {}",
            from.0, query.rect.min.x, query.rect.min.y, query.rect.max.x, query.rect.max.y
        ),
        Op::Radius { from, query } => format!(
            "radius {} {} {} {}",
            from.0, query.center.x, query.center.y, query.radius
        ),
        Op::Snapshot { id } => format!("snapshot {}", id.0),
        Op::Service(service) => match service {
            ServiceOp::Subscribe { id, region } => format!(
                "subscribe {} {} {} {} {}",
                id.0, region.min.x, region.min.y, region.max.x, region.max.y
            ),
            ServiceOp::Unsubscribe { id } => format!("unsubscribe {}", id.0),
            ServiceOp::Publish {
                from,
                region,
                payload,
            } => format!(
                "publish {} {} {} {} {} {payload}",
                from.0, region.min.x, region.min.y, region.max.x, region.max.y
            ),
            ServiceOp::KvPut { from, key, value } => format!("kv_put {} {key} {value}", from.0),
            ServiceOp::KvGet { from, key } => format!("kv_get {} {key}", from.0),
            ServiceOp::KvDelete { from, key } => format!("kv_delete {} {key}", from.0),
        },
    }
}

/// Encodes a batch, one op per line.  Empty batches encode to the empty
/// string.
pub fn encode_batch(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&encode_op(op));
        out.push('\n');
    }
    out
}

fn err(line: usize, message: impl Into<String>) -> ReplayParseError {
    ReplayParseError {
        line,
        message: message.into(),
    }
}

struct Fields<'a> {
    line: usize,
    verb: &'a str,
    rest: std::str::SplitWhitespace<'a>,
}

impl<'a> Fields<'a> {
    fn u64(&mut self) -> Result<u64, ReplayParseError> {
        let tok = self
            .rest
            .next()
            .ok_or_else(|| err(self.line, format!("{}: missing integer field", self.verb)))?;
        tok.parse().map_err(|e| {
            err(
                self.line,
                format!("{}: bad integer {tok:?}: {e}", self.verb),
            )
        })
    }

    fn f64(&mut self) -> Result<f64, ReplayParseError> {
        let tok = self
            .rest
            .next()
            .ok_or_else(|| err(self.line, format!("{}: missing float field", self.verb)))?;
        tok.parse()
            .map_err(|e| err(self.line, format!("{}: bad float {tok:?}: {e}", self.verb)))
    }

    fn point(&mut self) -> Result<Point2, ReplayParseError> {
        Ok(Point2::new(self.f64()?, self.f64()?))
    }

    fn finish(mut self) -> Result<(), ReplayParseError> {
        match self.rest.next() {
            Some(extra) => Err(err(
                self.line,
                format!("{}: unexpected trailing field {extra:?}", self.verb),
            )),
            None => Ok(()),
        }
    }
}

/// Parses one encoded operation line (as produced by [`encode_op`]).
/// `line` is the 1-based line number used in error messages.
pub fn parse_op(text: &str, line: usize) -> Result<Op, ReplayParseError> {
    let mut rest = text.split_whitespace();
    let verb = rest
        .next()
        .ok_or_else(|| err(line, "empty op line".to_string()))?;
    let mut f = Fields { line, verb, rest };
    let op = match verb {
        "insert" => Op::Insert {
            position: f.point()?,
        },
        "remove" => Op::Remove {
            id: ObjectId(f.u64()?),
        },
        "route" => Op::Route {
            from: ObjectId(f.u64()?),
            target: f.point()?,
        },
        "route_between" => Op::RouteBetween {
            from: ObjectId(f.u64()?),
            to: ObjectId(f.u64()?),
        },
        "range" => Op::Range {
            from: ObjectId(f.u64()?),
            query: RangeQuery {
                rect: Rect::new(f.point()?, f.point()?),
            },
        },
        "radius" => Op::Radius {
            from: ObjectId(f.u64()?),
            query: RadiusQuery {
                center: f.point()?,
                radius: f.f64()?,
            },
        },
        "snapshot" => Op::Snapshot {
            id: ObjectId(f.u64()?),
        },
        "subscribe" => Op::Service(ServiceOp::Subscribe {
            id: ObjectId(f.u64()?),
            region: Rect::new(f.point()?, f.point()?),
        }),
        "unsubscribe" => Op::Service(ServiceOp::Unsubscribe {
            id: ObjectId(f.u64()?),
        }),
        "publish" => Op::Service(ServiceOp::Publish {
            from: ObjectId(f.u64()?),
            region: Rect::new(f.point()?, f.point()?),
            payload: f.u64()?,
        }),
        "kv_put" => Op::Service(ServiceOp::KvPut {
            from: ObjectId(f.u64()?),
            key: f.u64()?,
            value: f.u64()?,
        }),
        "kv_get" => Op::Service(ServiceOp::KvGet {
            from: ObjectId(f.u64()?),
            key: f.u64()?,
        }),
        "kv_delete" => Op::Service(ServiceOp::KvDelete {
            from: ObjectId(f.u64()?),
            key: f.u64()?,
        }),
        other => return Err(err(line, format!("unknown op verb {other:?}"))),
    };
    f.finish()?;
    Ok(op)
}

/// Parses a whole batch: one op per line, blank lines and `#` comments
/// ignored.
pub fn parse_batch(text: &str) -> Result<Vec<Op>, ReplayParseError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        ops.push(parse_op(line, i + 1)?);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Vec<Op> {
        vec![
            Op::Insert {
                position: Point2::new(0.123456789012345, 1.0 / 3.0),
            },
            Op::Remove { id: ObjectId(42) },
            Op::Route {
                from: ObjectId(7),
                target: Point2::new(1e-12, 0.999999999999),
            },
            Op::RouteBetween {
                from: ObjectId(0),
                to: ObjectId(u64::MAX),
            },
            Op::Range {
                from: ObjectId(3),
                query: RangeQuery {
                    rect: Rect::new(Point2::new(0.1, 0.2), Point2::new(0.30000000000000004, 0.4)),
                },
            },
            Op::Radius {
                from: ObjectId(9),
                query: RadiusQuery {
                    center: Point2::new(0.5, 0.5),
                    radius: 0.05,
                },
            },
            Op::Snapshot { id: ObjectId(11) },
            Op::Service(ServiceOp::Subscribe {
                id: ObjectId(4),
                region: Rect::new(Point2::new(0.25, 0.25), Point2::new(0.75, 0.8)),
            }),
            Op::Service(ServiceOp::Unsubscribe { id: ObjectId(4) }),
            Op::Service(ServiceOp::Publish {
                from: ObjectId(2),
                region: Rect::new(Point2::new(0.1, 0.1), Point2::new(0.2, 0.30000000000000004)),
                payload: u64::MAX,
            }),
            Op::Service(ServiceOp::KvPut {
                from: ObjectId(1),
                key: 0xDEAD_BEEF,
                value: 17,
            }),
            Op::Service(ServiceOp::KvGet {
                from: ObjectId(1),
                key: 0xDEAD_BEEF,
            }),
            Op::Service(ServiceOp::KvDelete {
                from: ObjectId(0),
                key: 0,
            }),
        ]
    }

    #[test]
    fn batches_round_trip_bit_exactly() {
        let batch = sample_batch();
        let text = encode_batch(&batch);
        assert_eq!(parse_batch(&text).unwrap(), batch);
        // Re-encoding the parsed batch is idempotent.
        assert_eq!(encode_batch(&parse_batch(&text).unwrap()), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# reproducer header\n\ninsert 0.5 0.5\n  # indented comment\nremove 0\n";
        let ops = parse_batch(text).unwrap();
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[1], Op::Remove { id: ObjectId(0) }));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_batch("insert 0.5 0.5\nroute nope 0.1 0.2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad integer"), "{e}");

        let e = parse_batch("warp 1 2\n").unwrap_err();
        assert!(e.message.contains("unknown op verb"), "{e}");

        let e = parse_batch("remove 1 2\n").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");

        let e = parse_batch("radius 1 0.5 0.5\n").unwrap_err();
        assert!(e.message.contains("missing float"), "{e}");
    }
}
