//! The asynchronous engine: [`Overlay`] implemented as a driver over the
//! message-driven [`AsyncOverlay`] runtime.

use crate::ops::{
    InsertOutcome, Op, OpResult, OverlayStats, QueryOutcome, RemoveOutcome, RouteOutcome,
};
use crate::overlay::Overlay;
use voronet_core::runtime::{AsyncOverlay, OpToken, RoutingMode};
use voronet_core::{ErrorKind, ObjectId, ObjectView, VoroNetConfig, VoronetError};
use voronet_geom::Point2;
use voronet_sim::NetworkModel;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// The message-driven VoroNet engine: every operation is injected into the
/// per-node asynchronous runtime and the scenario clock is stepped until
/// the operation's protocol messages quiesce.
///
/// Under the ideal network the results are identical to the synchronous
/// engine (asserted by `tests/api_conformance.rs`); under a lossy
/// [`NetworkModel`] operations can genuinely fail with
/// [`ErrorKind::OperationLost`] — the failure mode a real deployment would
/// see, surfaced through the same error taxonomy.
///
/// [`Overlay::apply_batch`] pipelines consecutive route operations: the
/// whole run is injected first and the runtime quiesces once, so all the
/// routes are in flight concurrently and the batch completes in roughly
/// the slowest route's end-to-end simulated latency instead of the sum of
/// every route's latency chain — the protocol-time throughput lever the
/// `batched_ops` bench quantifies.  (On the zero-latency ideal network
/// there is nothing to pipeline and batching is host-cost-neutral.)
///
/// A tracked route or query completes for its issuer only when the answer
/// message survives the trip back to the origin; joins complete when
/// `AddVoronoiRegion` executes at the region owner (the join protocol has
/// no answer leg — membership itself is the outcome).
pub struct AsyncEngine {
    overlay: AsyncOverlay,
}

impl AsyncEngine {
    /// Creates an empty asynchronous engine.  `config.seed` drives both the
    /// overlay's stochastic choices and the runner's workload choices.
    pub fn new(config: VoroNetConfig, network: NetworkModel) -> Self {
        AsyncEngine {
            overlay: AsyncOverlay::new(config, network, config.seed),
        }
    }

    /// Selects the routing mode for subsequent routes.
    pub fn with_routing_mode(mut self, mode: RoutingMode) -> Self {
        self.overlay = self.overlay.with_routing_mode(mode);
        self
    }

    /// Wraps an existing runtime overlay.
    pub fn from_overlay(overlay: AsyncOverlay) -> Self {
        AsyncEngine { overlay }
    }

    /// Read access to the underlying runtime overlay.
    pub fn overlay(&self) -> &AsyncOverlay {
        &self.overlay
    }

    /// Mutable access to the underlying runtime overlay (engine-specific
    /// operations: scripted scenarios, replica inspection).
    pub fn overlay_mut(&mut self) -> &mut AsyncOverlay {
        &mut self.overlay
    }

    /// Unwraps the engine back into the runtime overlay.
    pub fn into_overlay(self) -> AsyncOverlay {
        self.overlay
    }

    fn collect_route(&mut self, token: OpToken) -> Result<RouteOutcome, VoronetError> {
        match self.overlay.take_route_result(token) {
            Some((owner, hops)) => Ok(RouteOutcome { owner, hops }),
            None => Err(VoronetError::with_context(
                ErrorKind::OperationLost,
                "route messages lost before completion",
            )),
        }
    }
}

impl Overlay for AsyncEngine {
    fn engine_name(&self) -> &'static str {
        "async"
    }

    fn config(&self) -> &VoroNetConfig {
        self.overlay.net().config()
    }

    fn len(&self) -> usize {
        self.overlay.net().len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.overlay.net().contains(id)
    }

    fn coords(&self, id: ObjectId) -> Option<Point2> {
        self.overlay.net().coords(id)
    }

    fn id_at(&self, index: usize) -> Option<ObjectId> {
        self.overlay.net().id_at(index)
    }

    fn insert(&mut self, position: Point2) -> Result<InsertOutcome, VoronetError> {
        let token = self.overlay.request_join(position);
        self.overlay.run_to_quiescence();
        match self.overlay.take_join_result(token) {
            Some(Ok(id)) => Ok(InsertOutcome { id }),
            Some(Err(e)) => Err(e.into()),
            None => Err(VoronetError::with_context(
                ErrorKind::OperationLost,
                "join request lost before reaching the region owner",
            )),
        }
    }

    fn remove(&mut self, id: ObjectId) -> Result<RemoveOutcome, VoronetError> {
        self.overlay.request_leave(id)?;
        self.overlay.run_to_quiescence();
        Ok(RemoveOutcome { id })
    }

    fn route(&mut self, from: ObjectId, target: Point2) -> Result<RouteOutcome, VoronetError> {
        let token = self.overlay.start_query_route(from, target)?;
        self.overlay.run_to_quiescence();
        self.collect_route(token)
    }

    fn range(&mut self, from: ObjectId, query: RangeQuery) -> Result<QueryOutcome, VoronetError> {
        let token = self.overlay.start_area_query(from, query.rect)?;
        self.overlay.run_to_quiescence();
        match self.overlay.take_area_result(token) {
            Some(report) => Ok(report.into()),
            None => Err(VoronetError::with_context(
                ErrorKind::OperationLost,
                "range query messages lost before completion",
            )),
        }
    }

    fn radius(&mut self, from: ObjectId, query: RadiusQuery) -> Result<QueryOutcome, VoronetError> {
        let token = self.overlay.start_radius_query(from, query)?;
        self.overlay.run_to_quiescence();
        match self.overlay.take_area_result(token) {
            Some(report) => Ok(report.into()),
            None => Err(VoronetError::with_context(
                ErrorKind::OperationLost,
                "radius query messages lost before completion",
            )),
        }
    }

    fn snapshot(&self, id: ObjectId) -> Result<ObjectView, VoronetError> {
        Ok(self.overlay.net().view(id)?)
    }

    fn stats(&self) -> OverlayStats {
        let routes = self.overlay.routes();
        OverlayStats {
            population: self.overlay.net().len(),
            messages: self.overlay.traffic().total(),
            routes_completed: self.overlay.counters().routes_completed,
            mean_route_hops: if routes.count() == 0 {
                0.0
            } else {
                routes.mean()
            },
        }
    }

    fn verify_invariants(&self) -> Result<(), VoronetError> {
        self.overlay.net().check_invariants(false)
    }

    fn apply_batch(&mut self, ops: &[Op]) -> Vec<OpResult> {
        let mut results = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            let is_route = |op: &Op| matches!(op, Op::Route { .. } | Op::RouteBetween { .. });
            if !is_route(&ops[i]) {
                results.push(self.apply(&ops[i]));
                i += 1;
                continue;
            }
            // A maximal run of consecutive routes shares one quiescence
            // round: all are injected first, then the runtime drains.
            // Routes never mutate overlay structure, so pipelining them
            // preserves per-route results exactly.
            let mut pending: Vec<Result<OpToken, VoronetError>> = Vec::new();
            while i < ops.len() && is_route(&ops[i]) {
                let token = match ops[i] {
                    Op::Route { from, target } => self.overlay.start_query_route(from, target),
                    Op::RouteBetween { from, to } => match self.coords(to) {
                        Some(target) => self.overlay.start_query_route(from, target),
                        None => Err(VoronetError::new(ErrorKind::UnknownObject(to))),
                    },
                    _ => unreachable!("guarded by is_route"),
                };
                pending.push(token);
                i += 1;
            }
            self.overlay.run_to_quiescence();
            for token in pending {
                results.push(match token {
                    Ok(token) => match self.collect_route(token) {
                        Ok(r) => OpResult::Routed(r),
                        Err(e) => OpResult::Failed(e),
                    },
                    Err(e) => OpResult::Failed(e),
                });
            }
        }
        results
    }
}
