//! # voronet-api
//!
//! The backend-agnostic overlay API of the VoroNet reproduction: one
//! stable client surface over every protocol engine.
//!
//! The paper defines a single protocol — join, leave, greedy/long-link
//! routing, range queries — but the workspace grew two execution engines
//! for it: the synchronous [`VoroNet`](voronet_core::VoroNet) fast path
//! and the message-driven [`AsyncOverlay`](voronet_core::runtime)
//! runtime.  This crate makes them interchangeable:
//!
//! * [`Overlay`] — the engine-agnostic trait (insert / remove / route /
//!   query / snapshot / stats), dyn-compatible so callers hold a
//!   `Box<dyn Overlay>`;
//! * [`Op`] / [`OpResult`] — typed batched operations:
//!   [`Overlay::apply_batch`] is the throughput lever (buffer reuse on the
//!   sync engine, shared quiescence rounds for route runs on the async
//!   one);
//! * [`OverlayBuilder`] — fluent construction: provisioned population,
//!   seed, long-link count, `d_min` rule, network model, engine selection;
//! * [`VoronetError`] — the unified error taxonomy (re-exported from
//!   `voronet-core`), `From`-convertible from the legacy
//!   [`JoinError`](voronet_core::JoinError) /
//!   [`OverlayError`](voronet_core::OverlayError);
//! * [`resolve_workload`] — binds the index-named batch scripts of
//!   `voronet-workloads` to a concrete engine.
//!
//! ```
//! use voronet_api::{Op, Overlay, OverlayBuilder};
//! use voronet_geom::Point2;
//!
//! let mut net = OverlayBuilder::new(100).seed(1).build_sync();
//! let a = net.insert(Point2::new(0.2, 0.2)).unwrap().id;
//! let b = net.insert(Point2::new(0.9, 0.7)).unwrap().id;
//!
//! // Single-operation form …
//! assert_eq!(net.route_between(a, b).unwrap().owner, b);
//!
//! // … and the batched form every engine accepts.
//! let results = net.apply_batch(&[
//!     Op::Insert { position: Point2::new(0.4, 0.6) },
//!     Op::RouteBetween { from: b, to: a },
//! ]);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

#![warn(missing_docs)]

pub mod async_engine;
pub mod builder;
pub mod ops;
pub mod overlay;
pub mod replay;
pub mod sync_engine;
pub mod workload;

pub use async_engine::AsyncEngine;
pub use builder::{EngineKind, OverlayBuilder};
pub use ops::{
    DeleteOutcome, GetOutcome, InsertOutcome, Op, OpResult, OverlayStats, PublishOutcome,
    PutOutcome, QueryOutcome, RemoveOutcome, RouteOutcome, ServiceOp, ServiceResult,
    SubscribeOutcome, UnsubscribeOutcome,
};
pub use overlay::Overlay;
pub use sync_engine::{SyncEngine, ViewMaintenance};
pub use workload::resolve_workload;

// The error taxonomy lives in `voronet-core` (the overlay itself reports
// through it); re-exported here because it is part of the API surface.
pub use voronet_core::{ErrorKind, VoronetError};
