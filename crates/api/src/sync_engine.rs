//! The synchronous engine: [`Overlay`] implemented directly over
//! [`VoroNet`].

use crate::ops::{InsertOutcome, OverlayStats, QueryOutcome, RemoveOutcome, RouteOutcome};
use crate::overlay::Overlay;
use voronet_core::queries::{radius_query, range_query};
use voronet_core::{ObjectId, ObjectView, VoroNet, VoroNetConfig, VoronetError};
use voronet_geom::Point2;
use voronet_sim::RouteStats;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// The synchronous VoroNet engine: every operation executes to completion
/// inside one address space — the fast path used to reproduce the paper's
/// figures.
///
/// Routing goes through the allocation-free
/// [`VoroNet::route_to_point_into`] with a path buffer owned by the engine,
/// so a batch of routes performs no heap allocation after warm-up.
pub struct SyncEngine {
    net: VoroNet,
    routes: RouteStats,
    path_buf: Vec<ObjectId>,
}

impl SyncEngine {
    /// Creates an empty synchronous engine.
    pub fn new(config: VoroNetConfig) -> Self {
        SyncEngine {
            net: VoroNet::new(config),
            routes: RouteStats::new(),
            path_buf: Vec::new(),
        }
    }

    /// Wraps an already-populated overlay.
    pub fn from_net(net: VoroNet) -> Self {
        SyncEngine {
            net,
            routes: RouteStats::new(),
            path_buf: Vec::new(),
        }
    }

    /// Read access to the underlying overlay.
    pub fn net(&self) -> &VoroNet {
        &self.net
    }

    /// Mutable access to the underlying overlay (engine-specific
    /// operations: dynamic `N_max`, invariant checks, experiments).
    pub fn net_mut(&mut self) -> &mut VoroNet {
        &mut self.net
    }

    /// Unwraps the engine back into the overlay.
    pub fn into_net(self) -> VoroNet {
        self.net
    }
}

impl Overlay for SyncEngine {
    fn engine_name(&self) -> &'static str {
        "sync"
    }

    fn config(&self) -> &VoroNetConfig {
        self.net.config()
    }

    fn len(&self) -> usize {
        self.net.len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.net.contains(id)
    }

    fn coords(&self, id: ObjectId) -> Option<Point2> {
        self.net.coords(id)
    }

    fn id_at(&self, index: usize) -> Option<ObjectId> {
        self.net.id_at(index)
    }

    fn insert(&mut self, position: Point2) -> Result<InsertOutcome, VoronetError> {
        let report = self.net.insert(position)?;
        Ok(InsertOutcome { id: report.id })
    }

    fn remove(&mut self, id: ObjectId) -> Result<RemoveOutcome, VoronetError> {
        self.net.remove(id)?;
        Ok(RemoveOutcome { id })
    }

    fn route(&mut self, from: ObjectId, target: Point2) -> Result<RouteOutcome, VoronetError> {
        let (owner, hops) = self
            .net
            .route_to_point_into(from, target, &mut self.path_buf)?;
        self.routes.record(hops);
        Ok(RouteOutcome { owner, hops })
    }

    fn range(&mut self, from: ObjectId, query: RangeQuery) -> Result<QueryOutcome, VoronetError> {
        Ok(range_query(&mut self.net, from, query)?.into())
    }

    fn radius(&mut self, from: ObjectId, query: RadiusQuery) -> Result<QueryOutcome, VoronetError> {
        Ok(radius_query(&mut self.net, from, query)?.into())
    }

    fn snapshot(&self, id: ObjectId) -> Result<ObjectView, VoronetError> {
        Ok(self.net.view(id)?)
    }

    fn stats(&self) -> OverlayStats {
        OverlayStats {
            population: self.net.len(),
            messages: self.net.traffic().total(),
            routes_completed: self.routes.count() as u64,
            mean_route_hops: if self.routes.count() == 0 {
                0.0
            } else {
                self.routes.mean()
            },
        }
    }

    fn verify_invariants(&self) -> Result<(), VoronetError> {
        self.net.check_invariants(false)
    }
}
