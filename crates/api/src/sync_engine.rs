//! The synchronous engine: [`Overlay`] implemented directly over
//! [`VoroNet`], with a multi-threaded executor for read-only batch runs.
//!
//! # The parallel read path
//!
//! [`SyncEngine::apply_batch`] splits a batch into maximal runs of
//! read-only operations ([`Op::is_read_only`]) between write barriers
//! (inserts/removes).  Read runs execute over a [`FrozenView`] — an
//! immutable SoA/CSR snapshot of the routing topology — large ones fanned
//! out across `std::thread::scope` workers.  Each worker computes its
//! contiguous chunk of operations into a private [`RouteScratch`],
//! accumulating the message accounting as a [`TrafficAccumulator`]; the
//! main thread then merges results and accounting **in op order**, so
//! owners, hop counts, query matches, global traffic stats and per-node
//! sent counters are bit-identical at any worker count — including one,
//! and including the pre-parallel sequential path.
//!
//! # Epoch-based view maintenance
//!
//! The engine keeps a [`ViewGenerations`] pair (left-right/RCU style)
//! alive across runs *and* across `apply_batch` calls instead of freezing
//! per run.  At each read barrier the stale back generation is brought
//! forward — delta-patched through the overlay's change log in
//! O(affected neighbourhoods), or rebuilt when the log no longer covers
//! it — and flipped to the front; when no write happened since the last
//! run the front is reused for free (the epoch check is one integer
//! compare).  Under mixed read/write traffic this keeps the ~5× frozen
//! read path without paying an O(n) freeze at every write barrier;
//! [`ViewMaintenance::RebuildPerBarrier`] restores the old behaviour as a
//! benchmark baseline.  Either way results are bit-identical — a patched
//! view equals a fresh freeze, and both equal the live walk.

use crate::ops::{
    InsertOutcome, Op, OpResult, OverlayStats, QueryOutcome, RemoveOutcome, RouteOutcome,
};
use crate::overlay::Overlay;
use voronet_core::queries::{radius_query, radius_query_in, range_query, range_query_in};
use voronet_core::snapshot::{
    FrozenView, RouteScratch, SnapshotStats, TrafficAccumulator, ViewGenerations, ViewRefresh,
};
use voronet_core::{ObjectId, ObjectView, VoroNet, VoroNetConfig, VoronetError};
use voronet_geom::Point2;
use voronet_sim::RouteStats;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// Read-only runs shorter than this execute single-threaded (thread
/// fan-out has per-spawn overhead a handful of ops cannot amortise).
const FROZEN_MIN_RUN: usize = 32;

/// Freezing the topology costs O(population) (≈ 0.25 µs/node), while each
/// frozen route saves a few µs over the sequential path — so the *first*
/// freeze only pays for itself once enough reads have been seen relative
/// to the overlay.  `population / 16` sits about 2× above the measured
/// break-even on a 10k-node overlay.  Once the generations exist, keeping
/// them current is O(affected neighbourhoods) per barrier, so every later
/// read run uses them regardless of its length.
fn frozen_run_threshold(population: usize) -> usize {
    FROZEN_MIN_RUN.max(population / 16)
}

/// How [`SyncEngine`] keeps its frozen view generations current at read
/// barriers (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViewMaintenance {
    /// Delta-patch the stale generation through the overlay's change log
    /// (full rebuild only when the log window no longer covers it).
    #[default]
    Incremental,
    /// Rebuild a stale generation from scratch at every barrier — the
    /// pre-epoch behaviour, kept as the benchmark baseline.
    RebuildPerBarrier,
}

/// The synchronous VoroNet engine: every operation executes to completion
/// inside one address space — the fast path used to reproduce the paper's
/// figures.
///
/// Single operations route through the allocation-free scratch-buffer walk;
/// batches additionally get the frozen-snapshot parallel read path (see the
/// [module docs](self)).  The worker count defaults to the machine's
/// available parallelism and can be pinned with
/// [`SyncEngine::with_threads`] / [`SyncEngine::set_threads`]; results are
/// bit-identical whatever the setting.
pub struct SyncEngine {
    net: VoroNet,
    routes: RouteStats,
    scratch: RouteScratch,
    threads: usize,
    /// Frozen view generations, created lazily at the first read run that
    /// justifies a freeze and retained across batches from then on.
    views: Option<ViewGenerations>,
    /// Read-only ops seen so far while `views` is still unset — lets many
    /// short read runs (the mixed-workload shape) eventually justify the
    /// first freeze even though no single run crosses the threshold.
    reads_seen: usize,
    maintenance: ViewMaintenance,
}

impl SyncEngine {
    /// Creates an empty synchronous engine.
    pub fn new(config: VoroNetConfig) -> Self {
        Self::from_net(VoroNet::new(config))
    }

    /// Wraps an already-populated overlay.
    pub fn from_net(net: VoroNet) -> Self {
        SyncEngine {
            net,
            routes: RouteStats::new(),
            scratch: RouteScratch::new(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            views: None,
            reads_seen: 0,
            maintenance: ViewMaintenance::default(),
        }
    }

    /// Sets the frozen-view maintenance policy (builder form).  Results
    /// are bit-identical under every policy; only the snapshot economics
    /// ([`SyncEngine::snapshot_stats`]) differ.
    pub fn with_view_maintenance(mut self, maintenance: ViewMaintenance) -> Self {
        self.set_view_maintenance(maintenance);
        self
    }

    /// Sets the frozen-view maintenance policy.
    pub fn set_view_maintenance(&mut self, maintenance: ViewMaintenance) {
        self.maintenance = maintenance;
    }

    /// The frozen-view maintenance policy in use.
    pub fn view_maintenance(&self) -> ViewMaintenance {
        self.maintenance
    }

    /// Sets the number of worker threads used for read-only batch runs
    /// (builder form).  `1` forces single-threaded execution; results are
    /// identical either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Sets the number of worker threads used for read-only batch runs.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Read access to the underlying overlay.
    pub fn net(&self) -> &VoroNet {
        &self.net
    }

    /// Mutable access to the underlying overlay (engine-specific
    /// operations: dynamic `N_max`, invariant checks, experiments).
    pub fn net_mut(&mut self) -> &mut VoroNet {
        &mut self.net
    }

    /// Unwraps the engine back into the overlay.
    pub fn into_net(self) -> VoroNet {
        self.net
    }

    /// Executes one read-only operation against a frozen snapshot (routes)
    /// or the shared overlay reference (floods, snapshots), computing into
    /// `scratch` and leaving the accounting in `scratch.delta`.
    fn exec_read(
        net: &VoroNet,
        view: &FrozenView,
        op: &Op,
        scratch: &mut RouteScratch,
    ) -> OpResult {
        match *op {
            Op::Route { from, target } => match view.route_to_point_in(from, target, scratch) {
                Ok((owner, hops)) => OpResult::Routed(RouteOutcome { owner, hops }),
                Err(e) => OpResult::Failed(e.into()),
            },
            Op::RouteBetween { from, to } => match view.route_between_in(from, to, scratch) {
                Ok((owner, hops)) => OpResult::Routed(RouteOutcome { owner, hops }),
                Err(e) => OpResult::Failed(e.into()),
            },
            Op::Range { from, query } => match range_query_in(net, from, query, scratch) {
                Ok(r) => OpResult::Queried(r.into()),
                Err(e) => OpResult::Failed(e.into()),
            },
            Op::Radius { from, query } => match radius_query_in(net, from, query, scratch) {
                Ok(r) => OpResult::Queried(r.into()),
                Err(e) => OpResult::Failed(e.into()),
            },
            Op::Snapshot { id } => match net.view(id) {
                Ok(v) => OpResult::Snapshotted(Box::new(v)),
                Err(e) => OpResult::Failed(e.into()),
            },
            Op::Insert { .. } | Op::Remove { .. } | Op::Service(_) => {
                unreachable!("read runs contain only read-only ops")
            }
        }
    }

    /// Executes one maximal read-only run over the current front
    /// [`FrozenView`] generation (created on first use, then kept current
    /// by epoch-keyed advance), fanning large runs across the configured
    /// worker threads, and appends the per-op results (in op order) to
    /// `results`.
    fn apply_read_run(&mut self, run: &[Op], results: &mut Vec<OpResult>) {
        // Bring a generation up to the overlay's epoch and flip: free
        // when no write happened since the last run, O(affected
        // neighbourhoods) otherwise (O(n) under RebuildPerBarrier).
        let refresh = match &mut self.views {
            Some(views) => match self.maintenance {
                ViewMaintenance::Incremental => views.advance(&self.net),
                ViewMaintenance::RebuildPerBarrier => views.advance_rebuilding(&self.net),
            },
            None => {
                self.views = Some(ViewGenerations::new(&self.net));
                ViewRefresh::Rebuilt
            }
        };
        self.net.record_view_refresh(&refresh);
        let view = self
            .views
            .as_ref()
            .expect("views initialised above")
            .front();
        let start = results.len();
        let workers = if run.len() >= FROZEN_MIN_RUN {
            self.threads.min(run.len()).max(1)
        } else {
            1
        };
        if workers == 1 {
            let mut acc = TrafficAccumulator::new(view);
            for op in run {
                self.scratch.delta.clear();
                results.push(Self::exec_read(&self.net, view, op, &mut self.scratch));
                acc.absorb(view, &self.scratch.delta);
            }
            self.scratch.delta.clear();
            self.net.apply_accumulated_traffic(view, &acc);
        } else {
            let chunk = run.len().div_ceil(workers);
            let net = &self.net;
            let view_ref = view;
            // Contiguous chunks keep the op → worker mapping independent of
            // scheduling; joining in spawn order restores op order exactly.
            let outcomes: Vec<(Vec<OpResult>, TrafficAccumulator)> = std::thread::scope(|s| {
                let handles: Vec<_> = run
                    .chunks(chunk)
                    .map(|ops| {
                        s.spawn(move || {
                            let mut scratch = RouteScratch::new();
                            let mut acc = TrafficAccumulator::new(view_ref);
                            let mut out = Vec::with_capacity(ops.len());
                            for op in ops {
                                scratch.delta.clear();
                                out.push(Self::exec_read(net, view_ref, op, &mut scratch));
                                acc.absorb(view_ref, &scratch.delta);
                            }
                            (out, acc)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("read-run worker panicked"))
                    .collect()
            });
            let mut merged: Option<TrafficAccumulator> = None;
            for (out, acc) in outcomes {
                results.extend(out);
                match merged.as_mut() {
                    None => merged = Some(acc),
                    Some(m) => m.merge(&acc),
                }
            }
            if let Some(acc) = merged {
                self.net.apply_accumulated_traffic(view, &acc);
            }
        }
        // Route-stat recording happens here (in op order) because the
        // frozen path bypasses `Overlay::route`.
        for r in &results[start..] {
            if let OpResult::Routed(route) = r {
                self.routes.record(route.hops);
            }
        }
    }
}

impl Overlay for SyncEngine {
    fn engine_name(&self) -> &'static str {
        "sync"
    }

    fn config(&self) -> &VoroNetConfig {
        self.net.config()
    }

    fn len(&self) -> usize {
        self.net.len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.net.contains(id)
    }

    fn coords(&self, id: ObjectId) -> Option<Point2> {
        self.net.coords(id)
    }

    fn id_at(&self, index: usize) -> Option<ObjectId> {
        self.net.id_at(index)
    }

    fn insert(&mut self, position: Point2) -> Result<InsertOutcome, VoronetError> {
        let report = self.net.insert(position)?;
        Ok(InsertOutcome { id: report.id })
    }

    fn remove(&mut self, id: ObjectId) -> Result<RemoveOutcome, VoronetError> {
        self.net.remove(id)?;
        Ok(RemoveOutcome { id })
    }

    fn route(&mut self, from: ObjectId, target: Point2) -> Result<RouteOutcome, VoronetError> {
        let (owner, hops) = self
            .net
            .route_to_point_into(from, target, &mut self.scratch.path)?;
        self.routes.record(hops);
        Ok(RouteOutcome { owner, hops })
    }

    fn range(&mut self, from: ObjectId, query: RangeQuery) -> Result<QueryOutcome, VoronetError> {
        Ok(range_query(&mut self.net, from, query)?.into())
    }

    fn radius(&mut self, from: ObjectId, query: RadiusQuery) -> Result<QueryOutcome, VoronetError> {
        Ok(radius_query(&mut self.net, from, query)?.into())
    }

    fn snapshot(&self, id: ObjectId) -> Result<ObjectView, VoronetError> {
        Ok(self.net.view(id)?)
    }

    fn stats(&self) -> OverlayStats {
        OverlayStats {
            population: self.net.len(),
            messages: self.net.traffic().total(),
            routes_completed: self.routes.count() as u64,
            mean_route_hops: if self.routes.count() == 0 {
                0.0
            } else {
                self.routes.mean()
            },
        }
    }

    fn verify_invariants(&self) -> Result<(), VoronetError> {
        self.net.check_invariants(false)
    }

    /// Batched submission with the parallel read path: maximal read-only
    /// runs between write barriers execute over the retained
    /// [`FrozenView`] generations (epoch-keyed, delta-patched at each
    /// barrier), large runs fanned across the configured worker threads;
    /// write ops apply sequentially.  The first freeze happens once the
    /// cumulative read volume justifies it; from then on every read run —
    /// however short — uses the frozen path, since keeping a view current
    /// costs O(affected neighbourhoods), not O(n).  Results and traffic
    /// accounting are bit-identical to sequential per-op application at
    /// any thread count and under either maintenance policy.
    fn apply_batch(&mut self, ops: &[Op]) -> Vec<OpResult> {
        let mut results = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            if ops[i].is_read_only() {
                let mut j = i + 1;
                while j < ops.len() && ops[j].is_read_only() {
                    j += 1;
                }
                let run = &ops[i..j];
                self.reads_seen = self.reads_seen.saturating_add(run.len());
                if self.views.is_some() || self.reads_seen >= frozen_run_threshold(self.net.len()) {
                    self.apply_read_run(run, &mut results);
                } else {
                    for op in run {
                        results.push(self.apply(op));
                    }
                }
                i = j;
            } else {
                results.push(self.apply(&ops[i]));
                i += 1;
            }
        }
        results
    }

    fn snapshot_stats(&self) -> SnapshotStats {
        self.net.snapshot_stats()
    }
}
