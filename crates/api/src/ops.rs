//! Typed batched operations and their results.
//!
//! A batch is a slice of [`Op`]s handed to
//! [`Overlay::apply_batch`](crate::Overlay::apply_batch); every operation
//! produces exactly one [`OpResult`] at the same index, so submitters can
//! correlate without bookkeeping.  Batching is the throughput lever of the
//! API: engines amortise per-operation overhead (buffer reuse on the
//! synchronous engine, one quiescence round for a whole run of routes on
//! the asynchronous one) without changing operation semantics.

use voronet_core::queries::AreaQueryReport;
use voronet_core::{ObjectId, ObjectView, VoronetError};
use voronet_geom::{Point2, Rect};
use voronet_workloads::{RadiusQuery, RangeQuery};

/// Outcome of a successful insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Identifier assigned to the new object.
    pub id: ObjectId,
}

/// Outcome of a successful removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoveOutcome {
    /// The object that departed.
    pub id: ObjectId,
}

/// Outcome of a successful route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Object owning the Voronoi region of the target point.
    pub owner: ObjectId,
    /// Forwarding steps taken.
    pub hops: u32,
}

/// Outcome of a successful area (range or radius) query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Objects matching the query predicate, sorted by id.
    pub matches: Vec<ObjectId>,
    /// Objects visited by the flood phase (the query's load footprint).
    pub visited: usize,
    /// Hops of the initial greedy route towards the queried area.
    pub routing_hops: u32,
    /// Messages exchanged during the flood phase.
    pub flood_messages: u64,
}

impl From<AreaQueryReport> for QueryOutcome {
    fn from(r: AreaQueryReport) -> Self {
        QueryOutcome {
            matches: r.matches,
            visited: r.visited,
            routing_hops: r.routing_hops,
            flood_messages: r.flood_messages,
        }
    }
}

/// One geo-scoped service operation: region pub/sub or coordinate-keyed
/// KV, executed by the service layer (`voronet-services`) over any
/// engine.  Payloads are fixed-size tokens (`u64`), keeping the op
/// `Copy` like every other [`Op`] and trivially wire-encodable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceOp {
    /// Register (or replace) `id`'s interest in publishes whose region
    /// intersects `region`.
    Subscribe {
        /// The subscribing object.
        id: ObjectId,
        /// The spatial region of interest.
        region: Rect,
    },
    /// Drop `id`'s subscription.
    Unsubscribe {
        /// The unsubscribing object.
        id: ObjectId,
    },
    /// Publish `payload` to every subscriber resolvable inside `region`
    /// (delivery rides the area-flood machinery).
    Publish {
        /// The publishing object.
        from: ObjectId,
        /// The target region — the topic.
        region: Rect,
        /// Opaque payload token.
        payload: u64,
    },
    /// Store `value` under `key` at the owner of the key's coordinate.
    KvPut {
        /// The requesting object (route origin).
        from: ObjectId,
        /// The key; hashes deterministically to a coordinate.
        key: u64,
        /// The value token to store.
        value: u64,
    },
    /// Look `key` up at the owner of its coordinate.
    KvGet {
        /// The requesting object (route origin).
        from: ObjectId,
        /// The key to resolve.
        key: u64,
    },
    /// Delete `key` from the owner of its coordinate.
    KvDelete {
        /// The requesting object (route origin).
        from: ObjectId,
        /// The key to delete.
        key: u64,
    },
}

/// Outcome of a successful [`ServiceOp::Subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeOutcome {
    /// The subscriber.
    pub id: ObjectId,
    /// True when an earlier subscription of the same object was replaced.
    pub replaced: bool,
}

/// Outcome of a successful [`ServiceOp::Unsubscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsubscribeOutcome {
    /// The unsubscribing object.
    pub id: ObjectId,
    /// True when a subscription actually existed.
    pub existed: bool,
}

/// Outcome of a successful [`ServiceOp::Publish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Per-topic sequence number assigned to this publish.
    pub seq: u64,
    /// Subscribers the publish reached (sorted by id): interested in the
    /// region *and* resolvable by the area flood.
    pub delivered: Vec<ObjectId>,
    /// Interested subscribers the flood could not reach (sorted by id):
    /// their own coordinates lie outside the published region.
    pub missed: Vec<ObjectId>,
    /// Hops of the initial greedy route towards the region.
    pub routing_hops: u32,
    /// Objects visited by the resolution flood.
    pub visited: usize,
    /// Messages exchanged during the flood.
    pub flood_messages: u64,
}

/// Outcome of a successful [`ServiceOp::KvPut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// The object owning the key's Voronoi cell — the storing node.
    pub owner: ObjectId,
    /// The owner's Voronoi neighbours holding replicas (sorted by id).
    pub replicas: Vec<ObjectId>,
    /// True when an existing entry was overwritten.
    pub replaced: bool,
    /// Hops of the greedy route to the owner.
    pub hops: u32,
}

/// Outcome of a successful [`ServiceOp::KvGet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetOutcome {
    /// The object owning the key's Voronoi cell.
    pub owner: ObjectId,
    /// The stored value, `None` when the key is absent at the owner.
    pub value: Option<u64>,
    /// Hops of the greedy route to the owner.
    pub hops: u32,
}

/// Outcome of a successful [`ServiceOp::KvDelete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteOutcome {
    /// The object owning the key's Voronoi cell.
    pub owner: ObjectId,
    /// True when an entry existed and was removed.
    pub existed: bool,
    /// Hops of the greedy route to the owner.
    pub hops: u32,
}

/// The success payload of an [`Op::Service`], one variant per
/// [`ServiceOp`] family.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResult {
    /// A [`ServiceOp::Subscribe`] succeeded.
    Subscribed(SubscribeOutcome),
    /// A [`ServiceOp::Unsubscribe`] completed.
    Unsubscribed(UnsubscribeOutcome),
    /// A [`ServiceOp::Publish`] resolved its subscribers.
    Published(PublishOutcome),
    /// A [`ServiceOp::KvPut`] stored its entry.
    Put(PutOutcome),
    /// A [`ServiceOp::KvGet`] resolved (hit or miss).
    Got(GetOutcome),
    /// A [`ServiceOp::KvDelete`] completed.
    Deleted(DeleteOutcome),
}

/// Aggregate counters every engine exposes through
/// [`Overlay::stats`](crate::Overlay::stats).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayStats {
    /// Live objects.
    pub population: usize,
    /// Protocol messages recorded since construction.
    pub messages: u64,
    /// Routes completed through this engine.
    pub routes_completed: u64,
    /// Mean hop count of the completed routes (0.0 when none completed).
    pub mean_route_hops: f64,
}

/// One operation of a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Publish a new object.
    Insert {
        /// Attribute coordinates of the new object.
        position: Point2,
    },
    /// Gracefully remove an object.
    Remove {
        /// The departing object.
        id: ObjectId,
    },
    /// Greedy-route from an object towards an arbitrary target point.
    Route {
        /// Source object.
        from: ObjectId,
        /// Target point.
        target: Point2,
    },
    /// Greedy-route between two objects.
    RouteBetween {
        /// Source object.
        from: ObjectId,
        /// Destination object.
        to: ObjectId,
    },
    /// Rectangular range query.
    Range {
        /// Issuing object.
        from: ObjectId,
        /// The queried rectangle.
        query: RangeQuery,
    },
    /// Radius (disk) query.
    Radius {
        /// Issuing object.
        from: ObjectId,
        /// The queried disk.
        query: RadiusQuery,
    },
    /// Capture an object's view snapshot.
    Snapshot {
        /// The object whose view is captured.
        id: ObjectId,
    },
    /// A geo-scoped service operation (pub/sub or KV), executed by the
    /// service layer wrapped around the engine.
    Service(ServiceOp),
}

impl Op {
    /// True for operations that never mutate overlay structure (routes,
    /// area queries, snapshots).  Engines use this to split a batch into
    /// maximal read-only runs between write barriers: every op of a run
    /// sees the overlay state left by the last write, so a run can execute
    /// out of order — or in parallel — without changing any result.
    pub fn is_read_only(&self) -> bool {
        match self {
            Op::Route { .. }
            | Op::RouteBetween { .. }
            | Op::Range { .. }
            | Op::Radius { .. }
            | Op::Snapshot { .. } => true,
            // Service ops mutate service-layer state (sequence numbers,
            // KV entries, delivery accounting) even when the underlying
            // traversal is a read, so they order like writes.
            Op::Insert { .. } | Op::Remove { .. } | Op::Service(_) => false,
        }
    }
}

/// The result of one [`Op`], at the same batch index.
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    /// An [`Op::Insert`] succeeded.
    Inserted(InsertOutcome),
    /// An [`Op::Remove`] succeeded.
    Removed(RemoveOutcome),
    /// An [`Op::Route`] / [`Op::RouteBetween`] completed.
    Routed(RouteOutcome),
    /// An [`Op::Range`] / [`Op::Radius`] completed.
    Queried(QueryOutcome),
    /// An [`Op::Snapshot`] succeeded (boxed: views are large relative to
    /// the other outcomes).
    Snapshotted(Box<ObjectView>),
    /// An [`Op::Service`] succeeded.
    Service(ServiceResult),
    /// The operation failed.
    Failed(VoronetError),
}

impl OpResult {
    /// True when the operation succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(self, OpResult::Failed(_))
    }

    /// The error of a failed operation.
    pub fn err(&self) -> Option<&VoronetError> {
        match self {
            OpResult::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// The route outcome, when this is [`OpResult::Routed`].
    pub fn as_routed(&self) -> Option<&RouteOutcome> {
        match self {
            OpResult::Routed(r) => Some(r),
            _ => None,
        }
    }

    /// The insert outcome, when this is [`OpResult::Inserted`].
    pub fn as_inserted(&self) -> Option<&InsertOutcome> {
        match self {
            OpResult::Inserted(r) => Some(r),
            _ => None,
        }
    }

    /// The query outcome, when this is [`OpResult::Queried`].
    pub fn as_queried(&self) -> Option<&QueryOutcome> {
        match self {
            OpResult::Queried(r) => Some(r),
            _ => None,
        }
    }

    /// The service result, when this is [`OpResult::Service`].
    pub fn as_service(&self) -> Option<&ServiceResult> {
        match self {
            OpResult::Service(r) => Some(r),
            _ => None,
        }
    }
}
