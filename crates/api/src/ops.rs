//! Typed batched operations and their results.
//!
//! A batch is a slice of [`Op`]s handed to
//! [`Overlay::apply_batch`](crate::Overlay::apply_batch); every operation
//! produces exactly one [`OpResult`] at the same index, so submitters can
//! correlate without bookkeeping.  Batching is the throughput lever of the
//! API: engines amortise per-operation overhead (buffer reuse on the
//! synchronous engine, one quiescence round for a whole run of routes on
//! the asynchronous one) without changing operation semantics.

use voronet_core::queries::AreaQueryReport;
use voronet_core::{ObjectId, ObjectView, VoronetError};
use voronet_geom::Point2;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// Outcome of a successful insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Identifier assigned to the new object.
    pub id: ObjectId,
}

/// Outcome of a successful removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoveOutcome {
    /// The object that departed.
    pub id: ObjectId,
}

/// Outcome of a successful route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Object owning the Voronoi region of the target point.
    pub owner: ObjectId,
    /// Forwarding steps taken.
    pub hops: u32,
}

/// Outcome of a successful area (range or radius) query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Objects matching the query predicate, sorted by id.
    pub matches: Vec<ObjectId>,
    /// Objects visited by the flood phase (the query's load footprint).
    pub visited: usize,
    /// Hops of the initial greedy route towards the queried area.
    pub routing_hops: u32,
    /// Messages exchanged during the flood phase.
    pub flood_messages: u64,
}

impl From<AreaQueryReport> for QueryOutcome {
    fn from(r: AreaQueryReport) -> Self {
        QueryOutcome {
            matches: r.matches,
            visited: r.visited,
            routing_hops: r.routing_hops,
            flood_messages: r.flood_messages,
        }
    }
}

/// Aggregate counters every engine exposes through
/// [`Overlay::stats`](crate::Overlay::stats).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayStats {
    /// Live objects.
    pub population: usize,
    /// Protocol messages recorded since construction.
    pub messages: u64,
    /// Routes completed through this engine.
    pub routes_completed: u64,
    /// Mean hop count of the completed routes (0.0 when none completed).
    pub mean_route_hops: f64,
}

/// One operation of a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Publish a new object.
    Insert {
        /// Attribute coordinates of the new object.
        position: Point2,
    },
    /// Gracefully remove an object.
    Remove {
        /// The departing object.
        id: ObjectId,
    },
    /// Greedy-route from an object towards an arbitrary target point.
    Route {
        /// Source object.
        from: ObjectId,
        /// Target point.
        target: Point2,
    },
    /// Greedy-route between two objects.
    RouteBetween {
        /// Source object.
        from: ObjectId,
        /// Destination object.
        to: ObjectId,
    },
    /// Rectangular range query.
    Range {
        /// Issuing object.
        from: ObjectId,
        /// The queried rectangle.
        query: RangeQuery,
    },
    /// Radius (disk) query.
    Radius {
        /// Issuing object.
        from: ObjectId,
        /// The queried disk.
        query: RadiusQuery,
    },
    /// Capture an object's view snapshot.
    Snapshot {
        /// The object whose view is captured.
        id: ObjectId,
    },
}

impl Op {
    /// True for operations that never mutate overlay structure (routes,
    /// area queries, snapshots).  Engines use this to split a batch into
    /// maximal read-only runs between write barriers: every op of a run
    /// sees the overlay state left by the last write, so a run can execute
    /// out of order — or in parallel — without changing any result.
    pub fn is_read_only(&self) -> bool {
        match self {
            Op::Route { .. }
            | Op::RouteBetween { .. }
            | Op::Range { .. }
            | Op::Radius { .. }
            | Op::Snapshot { .. } => true,
            Op::Insert { .. } | Op::Remove { .. } => false,
        }
    }
}

/// The result of one [`Op`], at the same batch index.
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    /// An [`Op::Insert`] succeeded.
    Inserted(InsertOutcome),
    /// An [`Op::Remove`] succeeded.
    Removed(RemoveOutcome),
    /// An [`Op::Route`] / [`Op::RouteBetween`] completed.
    Routed(RouteOutcome),
    /// An [`Op::Range`] / [`Op::Radius`] completed.
    Queried(QueryOutcome),
    /// An [`Op::Snapshot`] succeeded (boxed: views are large relative to
    /// the other outcomes).
    Snapshotted(Box<ObjectView>),
    /// The operation failed.
    Failed(VoronetError),
}

impl OpResult {
    /// True when the operation succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(self, OpResult::Failed(_))
    }

    /// The error of a failed operation.
    pub fn err(&self) -> Option<&VoronetError> {
        match self {
            OpResult::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// The route outcome, when this is [`OpResult::Routed`].
    pub fn as_routed(&self) -> Option<&RouteOutcome> {
        match self {
            OpResult::Routed(r) => Some(r),
            _ => None,
        }
    }

    /// The insert outcome, when this is [`OpResult::Inserted`].
    pub fn as_inserted(&self) -> Option<&InsertOutcome> {
        match self {
            OpResult::Inserted(r) => Some(r),
            _ => None,
        }
    }

    /// The query outcome, when this is [`OpResult::Queried`].
    pub fn as_queried(&self) -> Option<&QueryOutcome> {
        match self {
            OpResult::Queried(r) => Some(r),
            _ => None,
        }
    }
}
