//! Resolution of backend-agnostic [`WorkloadOp`] scripts into typed
//! [`Op`] batches.
//!
//! `voronet-workloads` sits below the overlay layer, so its generated
//! scripts name participants by *dense population index* rather than by
//! object id.  [`resolve_workload`] binds a script to a concrete engine at
//! submission time: indices are resolved against a mirror of the engine's
//! dense sampling order that tracks the script's own removals with the
//! same swap-remove discipline the engines use.

use crate::ops::{Op, ServiceOp};
use crate::overlay::Overlay;
use voronet_core::ObjectId;
use voronet_workloads::WorkloadOp;

/// Resolves an index-named workload script into an [`Op`] batch against
/// the overlay's current population.
///
/// Removals update the resolution mirror with the engines' swap-remove
/// discipline, so later indices keep addressing live objects; objects
/// inserted *by the script itself* are unknown until the batch runs and
/// are therefore never picked as participants.  Participant-naming
/// operations are dropped (not resolved) while the mirror is empty —
/// `Insert` is the only operation an empty overlay can execute.
pub fn resolve_workload(overlay: &dyn Overlay, script: &[WorkloadOp]) -> Vec<Op> {
    let mut mirror: Vec<ObjectId> = overlay.ids();
    let mut ops = Vec::with_capacity(script.len());
    for op in script {
        match *op {
            WorkloadOp::Insert { position } => ops.push(Op::Insert { position }),
            WorkloadOp::Remove { index } => {
                if mirror.is_empty() {
                    continue;
                }
                let id = mirror.swap_remove(index % mirror.len());
                ops.push(Op::Remove { id });
            }
            WorkloadOp::Route { from, to } => {
                if mirror.is_empty() {
                    continue;
                }
                let from = mirror[from % mirror.len()];
                let to = mirror[to % mirror.len()];
                ops.push(Op::RouteBetween { from, to });
            }
            WorkloadOp::Range { from, query } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Range {
                    from: mirror[from % mirror.len()],
                    query,
                });
            }
            WorkloadOp::Radius { from, query } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Radius {
                    from: mirror[from % mirror.len()],
                    query,
                });
            }
            WorkloadOp::Snapshot { index } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Snapshot {
                    id: mirror[index % mirror.len()],
                });
            }
            WorkloadOp::Subscribe { index, region } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Service(ServiceOp::Subscribe {
                    id: mirror[index % mirror.len()],
                    region,
                }));
            }
            WorkloadOp::Unsubscribe { index } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Service(ServiceOp::Unsubscribe {
                    id: mirror[index % mirror.len()],
                }));
            }
            WorkloadOp::Publish {
                from,
                region,
                payload,
            } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Service(ServiceOp::Publish {
                    from: mirror[from % mirror.len()],
                    region,
                    payload,
                }));
            }
            WorkloadOp::KvPut { from, key, value } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Service(ServiceOp::KvPut {
                    from: mirror[from % mirror.len()],
                    key,
                    value,
                }));
            }
            WorkloadOp::KvGet { from, key } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Service(ServiceOp::KvGet {
                    from: mirror[from % mirror.len()],
                    key,
                }));
            }
            WorkloadOp::KvDelete { from, key } => {
                if mirror.is_empty() {
                    continue;
                }
                ops.push(Op::Service(ServiceOp::KvDelete {
                    from: mirror[from % mirror.len()],
                    key,
                }));
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OverlayBuilder;
    use crate::ops::OpResult;
    use voronet_geom::Point2;
    use voronet_workloads::{Distribution, OpBatchGenerator, OpMix};

    #[test]
    fn resolved_scripts_execute_cleanly_on_an_engine() {
        let mut engine = OverlayBuilder::new(500).seed(11).build_sync();
        for i in 0..60u32 {
            let x = f64::from(i % 8) / 8.0 + 0.05;
            let y = f64::from(i / 8) / 8.0 + 0.05;
            engine.insert(Point2::new(x, y)).unwrap();
        }
        let mut gen = OpBatchGenerator::new(Distribution::Uniform, 13, OpMix::read_heavy());
        let script = gen.batch(engine.len(), 120);
        let ops = resolve_workload(&engine, &script);
        assert!(!ops.is_empty());
        let results = engine.apply_batch(&ops);
        assert_eq!(results.len(), ops.len());
        for (op, result) in ops.iter().zip(&results) {
            assert!(
                result.is_ok(),
                "resolved op {op:?} failed: {:?}",
                result.err()
            );
        }
        assert!(results.iter().any(|r| matches!(r, OpResult::Routed(_))));
    }

    #[test]
    fn removals_keep_later_indices_live() {
        let mut engine = OverlayBuilder::new(200).seed(3).build_sync();
        for i in 0..20u32 {
            engine
                .insert(Point2::new(
                    0.05 + f64::from(i % 5) * 0.18,
                    0.05 + f64::from(i / 5) * 0.2,
                ))
                .unwrap();
        }
        // A script that removes half the population and then routes.
        let mut script: Vec<WorkloadOp> =
            (0..10).map(|_| WorkloadOp::Remove { index: 0 }).collect();
        script.extend((0..10).map(|i| WorkloadOp::Route { from: i, to: i + 3 }));
        let ops = resolve_workload(&engine, &script);
        assert_eq!(ops.len(), 20);
        let results = engine.apply_batch(&ops);
        assert!(results.iter().all(OpResult::is_ok), "{results:?}");
        assert_eq!(engine.len(), 10);
    }

    #[test]
    fn empty_mirror_drops_participant_ops() {
        let engine = OverlayBuilder::new(10).build_sync();
        let script = [
            WorkloadOp::Route { from: 0, to: 1 },
            WorkloadOp::Insert {
                position: Point2::new(0.5, 0.5),
            },
            WorkloadOp::Remove { index: 0 },
        ];
        let ops = resolve_workload(&engine, &script);
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], Op::Insert { .. }));
    }
}
