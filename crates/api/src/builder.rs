//! The fluent [`OverlayBuilder`]: one construction path for every engine.

use crate::async_engine::AsyncEngine;
use crate::overlay::Overlay;
use crate::sync_engine::SyncEngine;
use voronet_core::runtime::RoutingMode;
use voronet_core::{DminRule, VoroNetConfig};
use voronet_geom::Rect;
use voronet_sim::NetworkModel;

/// Which engine a built overlay runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The synchronous in-process engine ([`SyncEngine`]).
    #[default]
    Sync,
    /// The message-driven per-node runtime ([`AsyncEngine`]).
    Async,
}

/// Fluent construction of an overlay on any engine.
///
/// Collects the protocol parameters (provisioned population `N_max`, seed,
/// long-link count, `d_min` rule, attribute domain), the simulated network
/// conditions (used by the asynchronous engine) and the engine selection,
/// then builds a typed engine or a boxed [`Overlay`].
///
/// ```
/// use voronet_api::{EngineKind, Overlay, OverlayBuilder};
/// use voronet_geom::Point2;
///
/// let mut net = OverlayBuilder::new(1_000).seed(7).build_sync();
/// let a = net.insert(Point2::new(0.1, 0.2)).unwrap().id;
/// let b = net.insert(Point2::new(0.8, 0.9)).unwrap().id;
/// assert_eq!(net.route_between(a, b).unwrap().owner, b);
///
/// // The same construction path yields a boxed, engine-agnostic overlay.
/// let boxed: Box<dyn Overlay> = OverlayBuilder::new(1_000)
///     .seed(7)
///     .engine(EngineKind::Async)
///     .build();
/// assert!(boxed.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct OverlayBuilder {
    config: VoroNetConfig,
    network: NetworkModel,
    engine: EngineKind,
    routing_mode: RoutingMode,
    worker_threads: Option<usize>,
}

impl OverlayBuilder {
    /// Starts a builder for an overlay provisioned for up to `nmax`
    /// objects, with the paper's defaults (one long link, literal `d_min`
    /// rule, unit-square domain), an ideal network and the synchronous
    /// engine.
    pub fn new(nmax: usize) -> Self {
        OverlayBuilder {
            config: VoroNetConfig::new(nmax),
            network: NetworkModel::ideal(),
            engine: EngineKind::Sync,
            routing_mode: RoutingMode::default(),
            worker_threads: None,
        }
    }

    /// Starts a builder from an explicit configuration.
    pub fn from_config(config: VoroNetConfig) -> Self {
        OverlayBuilder {
            config,
            network: NetworkModel::ideal(),
            engine: EngineKind::Sync,
            routing_mode: RoutingMode::default(),
            worker_threads: None,
        }
    }

    /// Sets the seed of every stochastic choice the overlay makes.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.with_seed(seed);
        self
    }

    /// Sets the number of long-range links per object.
    pub fn long_links(mut self, k: usize) -> Self {
        self.config = self.config.with_long_links(k);
        self
    }

    /// Sets the `d_min` derivation rule.
    pub fn dmin_rule(mut self, rule: DminRule) -> Self {
        self.config = self.config.with_dmin_rule(rule);
        self
    }

    /// Sets the attribute-space domain.
    pub fn domain(mut self, domain: Rect) -> Self {
        self.config.domain = domain;
        self
    }

    /// Sets the simulated network conditions (latency, loss, partitions).
    /// Only the asynchronous engine routes messages through the network;
    /// the synchronous engine ignores it.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Selects the engine.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Shorthand for `engine(EngineKind::Async)`.
    pub fn asynchronous(self) -> Self {
        self.engine(EngineKind::Async)
    }

    /// Sets the routing mode (greedy or the paper's Algorithm 5) used by
    /// the asynchronous engine.
    pub fn routing_mode(mut self, mode: RoutingMode) -> Self {
        self.routing_mode = mode;
        self
    }

    /// Sets the number of worker threads the synchronous engine uses for
    /// read-only batch runs (default: the machine's available
    /// parallelism).  Results are bit-identical at any setting; `1` forces
    /// single-threaded execution.  The asynchronous engine ignores this.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads.max(1));
        self
    }

    /// The configuration the built overlay will use.
    pub fn config(&self) -> VoroNetConfig {
        self.config
    }

    /// Builds the synchronous engine, regardless of the selected
    /// [`EngineKind`].
    pub fn build_sync(&self) -> SyncEngine {
        let engine = SyncEngine::new(self.config);
        match self.worker_threads {
            Some(n) => engine.with_threads(n),
            None => engine,
        }
    }

    /// Builds the asynchronous engine, regardless of the selected
    /// [`EngineKind`].
    pub fn build_async(&self) -> AsyncEngine {
        AsyncEngine::new(self.config, self.network.clone()).with_routing_mode(self.routing_mode)
    }

    /// Builds the selected engine behind the backend-agnostic trait.
    pub fn build(&self) -> Box<dyn Overlay> {
        match self.engine {
            EngineKind::Sync => Box::new(self.build_sync()),
            EngineKind::Async => Box::new(self.build_async()),
        }
    }
}
