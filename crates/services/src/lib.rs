//! # voronet-services
//!
//! Geo-scoped services riding the VoroNet overlay: region pub/sub and a
//! coordinate-keyed KV store, layered over any [`Overlay`] engine.
//!
//! The paper's overlay gives every object a Voronoi cell in the
//! attribute space and makes three primitives cheap: greedy routing to
//! the cell owner of any point (Theorem 1), area floods over a
//! rectangle, and complete neighbourhood views.  This crate turns those
//! primitives into services:
//!
//! * **Region pub/sub** — an object subscribes to a rectangle of the
//!   attribute space; a publish into a region floods it with the same
//!   machinery as a range query and delivers to every subscriber whose
//!   region intersects and whose coordinates the flood reached.
//!   Per-topic sequence numbers (a topic *is* its rectangle, identified
//!   bit-exactly — [`topic_key`]) make re-deliveries detectable.
//! * **Coordinate-keyed KV** — a key hashes deterministically to a home
//!   coordinate ([`key_point`]); the live object owning that
//!   coordinate's Voronoi cell stores the entry, its Voronoi neighbours
//!   are the replica set, and churn hands ownership off so a `get`
//!   routed to the key point keeps finding the value.
//!
//! The layer is an engine wrapper, [`ServiceEngine`], implementing
//! [`Overlay`] itself: service ops execute purely through trait calls
//! (`route`, `range`, `snapshot`), so any two engines that agree on
//! protocol results agree bit-for-bit on service results — exactly the
//! property the differential testkit pins down.
//!
//! ```
//! use voronet_api::{Op, Overlay, OverlayBuilder, OpResult, ServiceOp, ServiceResult};
//! use voronet_geom::{Point2, Rect};
//! use voronet_services::ServiceEngine;
//!
//! let mut net = ServiceEngine::new(OverlayBuilder::new(64).seed(7).build_sync());
//! let a = net.insert(Point2::new(0.2, 0.2)).unwrap().id;
//! let b = net.insert(Point2::new(0.8, 0.8)).unwrap().id;
//!
//! // KV: the key's home coordinate decides placement, not the caller.
//! net.apply(&Op::Service(ServiceOp::KvPut { from: a, key: 42, value: 7 }));
//! let got = net.apply(&Op::Service(ServiceOp::KvGet { from: b, key: 42 }));
//! match got {
//!     OpResult::Service(ServiceResult::Got(g)) => assert_eq!(g.value, Some(7)),
//!     other => panic!("{other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod keys;
pub mod state;

pub use engine::ServiceEngine;
pub use keys::{key_point, topic_key};
pub use state::{KvEntry, ServiceState, ServiceStats};

// Service ops and results are part of the API surface; re-export for
// callers that only depend on this crate.
pub use voronet_api::{Overlay, ServiceOp, ServiceResult};
