//! The service layer's own state: subscriptions, topic sequence numbers
//! and the KV table.
//!
//! Everything is held in `BTreeMap`s so iteration order — and therefore
//! every derived quantity (delivery lists, handoff order) — is identical
//! across engines.  The state is `PartialEq` so the differential testkit
//! can require bit-for-bit agreement after every operation.

use std::collections::BTreeMap;
use voronet_core::ObjectId;
use voronet_geom::Rect;

/// One stored KV entry: the value plus the placement the service layer
/// believes is current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvEntry {
    /// The stored value token.
    pub value: u64,
    /// The live object currently owning the key's Voronoi cell.
    pub owner: ObjectId,
    /// The owner's Voronoi neighbours at the last placement refresh —
    /// the replica set that would serve the entry if the owner departed
    /// abruptly.
    pub replicas: Vec<ObjectId>,
}

/// Cumulative service-layer counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Publishes executed (successful region floods).
    pub publishes: u64,
    /// Payload deliveries to resolved subscribers.
    pub deliveries: u64,
    /// Re-deliveries suppressed by per-topic sequence numbers (only the
    /// distributed path retransmits, so this stays 0 in-process).
    pub duplicates: u64,
    /// Subscribers whose region intersected a publish but whose own
    /// coordinates fell outside the flooded rectangle — interest the
    /// region flood could not reach.
    pub misses: u64,
    /// KV store operations.
    pub kv_puts: u64,
    /// KV lookups.
    pub kv_gets: u64,
    /// KV lookups that found a value at the routed owner.
    pub kv_hits: u64,
    /// KV deletions.
    pub kv_deletes: u64,
    /// Ownership transfers triggered by churn (a closer object joined,
    /// or the owner departed).
    pub handoffs: u64,
}

/// The mutable state of one service layer instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceState {
    /// Standing subscriptions: subscriber → region of interest.  At most
    /// one subscription per object; re-subscribing replaces.
    pub subscriptions: BTreeMap<ObjectId, Rect>,
    /// Per-topic publish sequence numbers, keyed by the exact bit
    /// pattern of the topic rectangle.
    pub topic_seqs: BTreeMap<[u64; 4], u64>,
    /// Highest sequence number each subscriber has seen per topic —
    /// the duplicate-suppression ledger.
    pub seen: BTreeMap<(ObjectId, [u64; 4]), u64>,
    /// The KV table.
    pub kv: BTreeMap<u64, KvEntry>,
    /// Cumulative counters.
    pub stats: ServiceStats,
}

impl ServiceState {
    /// Drops every piece of state that references live objects.  Called
    /// when the overlay population reaches zero: with no objects there
    /// is no owner to hold an entry and no subscriber to deliver to.
    pub fn clear_membership_state(&mut self) {
        self.subscriptions.clear();
        self.seen.clear();
        self.kv.clear();
    }
}
