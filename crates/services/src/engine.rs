//! [`ServiceEngine`]: the service layer as an engine wrapper.
//!
//! `ServiceEngine<O>` wraps any [`Overlay`] engine and implements the
//! trait itself, so it drops into every call site that holds a
//! `Box<dyn Overlay>` — the builder, the testkit fleet, the node binary.
//! It intercepts three op families and forwards everything else:
//!
//! * [`Op::Service`] — executed here, entirely through `Overlay` trait
//!   calls (`route`, `range`, `snapshot`), so the results are
//!   bit-identical on every engine whose protocol results agree;
//! * [`Op::Insert`] / [`Op::Remove`] — forwarded, then followed by the
//!   churn hooks that keep KV ownership and replica sets correct;
//! * everything else — forwarded in maximal runs via the inner engine's
//!   `apply_batch`, preserving its batching tricks (the sync engine's
//!   parallel frozen read path, the async engine's shared quiescence
//!   rounds).

use crate::keys::{key_point, topic_key};
use crate::state::{KvEntry, ServiceState, ServiceStats};
use voronet_api::{
    DeleteOutcome, GetOutcome, InsertOutcome, Op, OpResult, Overlay, OverlayStats, PublishOutcome,
    PutOutcome, QueryOutcome, RemoveOutcome, RouteOutcome, ServiceOp, ServiceResult,
    SubscribeOutcome, UnsubscribeOutcome,
};
use voronet_core::{ErrorKind, ObjectId, ObjectView, SnapshotStats, VoroNetConfig, VoronetError};
use voronet_geom::Point2;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// A geo-scoped service layer wrapped around an overlay engine.
///
/// See the [module docs](self) for the interception contract and the
/// [crate docs](crate) for the service semantics.
#[derive(Debug)]
pub struct ServiceEngine<O: Overlay> {
    inner: O,
    state: ServiceState,
}

impl<O: Overlay> ServiceEngine<O> {
    /// Wraps an engine with an empty service layer.
    pub fn new(inner: O) -> Self {
        ServiceEngine {
            inner,
            state: ServiceState::default(),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The wrapped engine, mutably.  Bypassing the wrapper for churn
    /// (`insert`/`remove`) skips the ownership handoff hooks — use the
    /// wrapper's own methods unless that is exactly what a test wants.
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Unwraps the engine, discarding service state.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The service layer's current state (subscriptions, topic sequence
    /// numbers, KV table, counters).
    pub fn service_state(&self) -> &ServiceState {
        &self.state
    }

    /// The cumulative service counters.
    pub fn service_stats(&self) -> ServiceStats {
        self.state.stats
    }

    /// Executes one service operation against the wrapped engine.
    pub fn exec_service(&mut self, op: ServiceOp) -> OpResult {
        match op {
            ServiceOp::Subscribe { id, region } => {
                if !self.inner.contains(id) {
                    return OpResult::Failed(VoronetError::new(ErrorKind::UnknownObject(id)));
                }
                let replaced = self.state.subscriptions.insert(id, region).is_some();
                OpResult::Service(ServiceResult::Subscribed(SubscribeOutcome { id, replaced }))
            }
            ServiceOp::Unsubscribe { id } => {
                let existed = self.state.subscriptions.remove(&id).is_some();
                OpResult::Service(ServiceResult::Unsubscribed(UnsubscribeOutcome {
                    id,
                    existed,
                }))
            }
            ServiceOp::Publish {
                from,
                region,
                // The payload token matters on the wire path (it rides the
                // Deliver frames); in-process delivery is pure accounting.
                payload: _,
            } => {
                let flood = match self.inner.range(from, RangeQuery { rect: region }) {
                    Ok(q) => q,
                    Err(e) => return OpResult::Failed(e),
                };
                let topic = topic_key(&region);
                let seq = {
                    let s = self.state.topic_seqs.entry(topic).or_insert(0);
                    *s += 1;
                    *s
                };
                let mut delivered = Vec::new();
                let mut missed = Vec::new();
                for (&sub, sub_region) in &self.state.subscriptions {
                    if !sub_region.intersects(&region) {
                        continue;
                    }
                    // `matches` is sorted by id (QueryOutcome contract).
                    if flood.matches.binary_search(&sub).is_ok() {
                        delivered.push(sub);
                    } else {
                        missed.push(sub);
                    }
                }
                for &sub in &delivered {
                    let last = self.state.seen.entry((sub, topic)).or_insert(0);
                    if seq > *last {
                        *last = seq;
                        self.state.stats.deliveries += 1;
                    } else {
                        self.state.stats.duplicates += 1;
                    }
                }
                self.state.stats.publishes += 1;
                self.state.stats.misses += missed.len() as u64;
                OpResult::Service(ServiceResult::Published(PublishOutcome {
                    seq,
                    delivered,
                    missed,
                    routing_hops: flood.routing_hops,
                    visited: flood.visited,
                    flood_messages: flood.flood_messages,
                }))
            }
            ServiceOp::KvPut { from, key, value } => {
                let domain = self.inner.config().domain;
                let route = match self.inner.route(from, key_point(key, domain)) {
                    Ok(r) => r,
                    Err(e) => return OpResult::Failed(e),
                };
                let replicas = match self.replicas_of(route.owner) {
                    Ok(r) => r,
                    Err(e) => return OpResult::Failed(e),
                };
                let replaced = self
                    .state
                    .kv
                    .insert(
                        key,
                        KvEntry {
                            value,
                            owner: route.owner,
                            replicas: replicas.clone(),
                        },
                    )
                    .is_some();
                self.state.stats.kv_puts += 1;
                OpResult::Service(ServiceResult::Put(PutOutcome {
                    owner: route.owner,
                    replicas,
                    replaced,
                    hops: route.hops,
                }))
            }
            ServiceOp::KvGet { from, key } => {
                let domain = self.inner.config().domain;
                let route = match self.inner.route(from, key_point(key, domain)) {
                    Ok(r) => r,
                    Err(e) => return OpResult::Failed(e),
                };
                // The lookup only succeeds when the stored placement and
                // the routed owner agree — a missed ownership handoff
                // surfaces as a lost value, not as silently stale data.
                let value = self
                    .state
                    .kv
                    .get(&key)
                    .and_then(|entry| (entry.owner == route.owner).then_some(entry.value));
                self.state.stats.kv_gets += 1;
                if value.is_some() {
                    self.state.stats.kv_hits += 1;
                }
                OpResult::Service(ServiceResult::Got(GetOutcome {
                    owner: route.owner,
                    value,
                    hops: route.hops,
                }))
            }
            ServiceOp::KvDelete { from, key } => {
                let domain = self.inner.config().domain;
                let route = match self.inner.route(from, key_point(key, domain)) {
                    Ok(r) => r,
                    Err(e) => return OpResult::Failed(e),
                };
                let existed = self.state.kv.remove(&key).is_some();
                self.state.stats.kv_deletes += 1;
                OpResult::Service(ServiceResult::Deleted(DeleteOutcome {
                    owner: route.owner,
                    existed,
                    hops: route.hops,
                }))
            }
        }
    }

    /// The replica set of `owner`: its Voronoi neighbours, sorted by id.
    fn replicas_of(&self, owner: ObjectId) -> Result<Vec<ObjectId>, VoronetError> {
        let mut replicas = self.inner.snapshot(owner)?.voronoi_neighbours;
        replicas.sort_unstable();
        Ok(replicas)
    }

    /// Churn hook after a successful insert: a new object may sit closer
    /// to a stored key's home coordinate than the current owner, in which
    /// case ownership hands off to it (the tessellation cell containing
    /// the key point now belongs to the newcomer).
    fn handoff_on_insert(&mut self, id: ObjectId, position: Point2) {
        let domain = self.inner.config().domain;
        let mut handoffs = 0u64;
        for (key, entry) in self.state.kv.iter_mut() {
            let kp = key_point(*key, domain);
            let Some(owner_pos) = self.inner.coords(entry.owner) else {
                continue;
            };
            // Lexicographic (distance², id) comparison: exact, and ties —
            // measure-zero with hashed key points — break deterministically.
            if (position.distance2(kp), id) < (owner_pos.distance2(kp), entry.owner) {
                entry.owner = id;
                handoffs += 1;
            }
        }
        self.state.stats.handoffs += handoffs;
        self.refresh_replicas();
    }

    /// Churn hook after a successful remove: entries owned by the
    /// departed object re-resolve to the nearest survivor, the departed
    /// object's subscription and delivery ledger are dropped, and an
    /// empty overlay clears all membership-bound state.
    fn handoff_on_remove(&mut self, id: ObjectId) {
        self.state.subscriptions.remove(&id);
        self.state.seen.retain(|(sub, _), _| *sub != id);
        if self.inner.is_empty() {
            self.state.clear_membership_state();
            return;
        }
        let domain = self.inner.config().domain;
        let live: Vec<(ObjectId, Point2)> = self
            .inner
            .ids()
            .into_iter()
            .filter_map(|oid| self.inner.coords(oid).map(|p| (oid, p)))
            .collect();
        let mut handoffs = 0u64;
        for (key, entry) in self.state.kv.iter_mut() {
            if entry.owner != id {
                continue;
            }
            let kp = key_point(*key, domain);
            let next = live
                .iter()
                .copied()
                .min_by(|&(a_id, a_pos), &(b_id, b_pos)| {
                    (a_pos.distance2(kp), a_id)
                        .partial_cmp(&(b_pos.distance2(kp), b_id))
                        .expect("distances are finite")
                });
            if let Some((next_id, _)) = next {
                entry.owner = next_id;
                handoffs += 1;
            }
        }
        self.state.stats.handoffs += handoffs;
        self.refresh_replicas();
    }

    /// Recomputes every entry's replica set from the current
    /// tessellation.  Any churn event can reshape Voronoi neighbourhoods
    /// well beyond the touched cell, so this runs after every
    /// insert/remove rather than trying to track the blast radius.
    fn refresh_replicas(&mut self) {
        for entry in self.state.kv.values_mut() {
            if let Ok(view) = self.inner.snapshot(entry.owner) {
                let mut replicas = view.voronoi_neighbours;
                replicas.sort_unstable();
                entry.replicas = replicas;
            }
        }
    }

    /// True for the op families the wrapper must see individually; the
    /// rest forward to the inner engine in maximal runs.
    fn intercepted(op: &Op) -> bool {
        matches!(op, Op::Insert { .. } | Op::Remove { .. } | Op::Service(_))
    }
}

impl<O: Overlay> Overlay for ServiceEngine<O> {
    fn engine_name(&self) -> &'static str {
        // The wrapper adds semantics, not an execution strategy; reports
        // keep attributing results to the engine that produced them.
        self.inner.engine_name()
    }

    fn config(&self) -> &VoroNetConfig {
        self.inner.config()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.inner.contains(id)
    }

    fn coords(&self, id: ObjectId) -> Option<Point2> {
        self.inner.coords(id)
    }

    fn id_at(&self, index: usize) -> Option<ObjectId> {
        self.inner.id_at(index)
    }

    fn ids(&self) -> Vec<ObjectId> {
        self.inner.ids()
    }

    fn insert(&mut self, position: Point2) -> Result<InsertOutcome, VoronetError> {
        let outcome = self.inner.insert(position)?;
        self.handoff_on_insert(outcome.id, position);
        Ok(outcome)
    }

    fn remove(&mut self, id: ObjectId) -> Result<RemoveOutcome, VoronetError> {
        let outcome = self.inner.remove(id)?;
        self.handoff_on_remove(id);
        Ok(outcome)
    }

    fn route(&mut self, from: ObjectId, target: Point2) -> Result<RouteOutcome, VoronetError> {
        self.inner.route(from, target)
    }

    fn route_between(
        &mut self,
        from: ObjectId,
        to: ObjectId,
    ) -> Result<RouteOutcome, VoronetError> {
        self.inner.route_between(from, to)
    }

    fn range(&mut self, from: ObjectId, query: RangeQuery) -> Result<QueryOutcome, VoronetError> {
        self.inner.range(from, query)
    }

    fn radius(&mut self, from: ObjectId, query: RadiusQuery) -> Result<QueryOutcome, VoronetError> {
        self.inner.radius(from, query)
    }

    fn snapshot(&self, id: ObjectId) -> Result<ObjectView, VoronetError> {
        self.inner.snapshot(id)
    }

    fn stats(&self) -> OverlayStats {
        self.inner.stats()
    }

    fn snapshot_stats(&self) -> SnapshotStats {
        self.inner.snapshot_stats()
    }

    fn verify_invariants(&self) -> Result<(), VoronetError> {
        self.inner.verify_invariants()?;
        // Service-layer invariant: every stored entry is owned by the
        // live object whose cell contains the key's home coordinate.
        let domain = self.inner.config().domain;
        for (key, entry) in &self.state.kv {
            let Some(owner_pos) = self.inner.coords(entry.owner) else {
                return Err(VoronetError::invariant(format!(
                    "kv entry {key} owned by dead object {:?}",
                    entry.owner
                )));
            };
            let kp = key_point(*key, domain);
            let d_owner = (owner_pos.distance2(kp), entry.owner);
            for index in 0..self.inner.len() {
                let Some(other) = self.inner.id_at(index) else {
                    continue;
                };
                let Some(other_pos) = self.inner.coords(other) else {
                    continue;
                };
                if (other_pos.distance2(kp), other) < d_owner {
                    return Err(VoronetError::invariant(format!(
                        "kv entry {key}: owner {:?} is not nearest to the key point \
                         ({:?} is closer — missed handoff)",
                        entry.owner, other
                    )));
                }
            }
        }
        Ok(())
    }

    fn apply(&mut self, op: &Op) -> OpResult {
        match *op {
            Op::Service(service) => self.exec_service(service),
            Op::Insert { position } => match self.insert(position) {
                Ok(r) => OpResult::Inserted(r),
                Err(e) => OpResult::Failed(e),
            },
            Op::Remove { id } => match self.remove(id) {
                Ok(r) => OpResult::Removed(r),
                Err(e) => OpResult::Failed(e),
            },
            _ => self.inner.apply(op),
        }
    }

    fn apply_batch(&mut self, ops: &[Op]) -> Vec<OpResult> {
        let mut results = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            if Self::intercepted(&ops[i]) {
                results.push(self.apply(&ops[i]));
                i += 1;
            } else {
                // Forward the maximal run of pure protocol ops so the
                // inner engine keeps its batch-level optimisations.
                let start = i;
                while i < ops.len() && !Self::intercepted(&ops[i]) {
                    i += 1;
                }
                results.extend(self.inner.apply_batch(&ops[start..i]));
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voronet_api::OverlayBuilder;

    fn grid_engine(side: u32) -> ServiceEngine<voronet_api::SyncEngine> {
        let mut net = ServiceEngine::new(OverlayBuilder::new(512).seed(9).build_sync());
        for i in 0..side * side {
            let x = (f64::from(i % side) + 0.5) / f64::from(side);
            let y = (f64::from(i / side) + 0.5) / f64::from(side);
            net.insert(Point2::new(x, y)).unwrap();
        }
        net
    }

    fn service(result: OpResult) -> ServiceResult {
        match result {
            OpResult::Service(s) => s,
            other => panic!("expected a service result, got {other:?}"),
        }
    }

    #[test]
    fn bare_engines_reject_service_ops() {
        let mut net = OverlayBuilder::new(16).seed(1).build_sync();
        let a = net.insert(Point2::new(0.5, 0.5)).unwrap().id;
        let r = net.apply(&Op::Service(ServiceOp::KvGet { from: a, key: 1 }));
        match r {
            OpResult::Failed(e) => assert!(matches!(e.kind(), ErrorKind::Unsupported)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subscribe_publish_delivers_to_intersecting_subscribers() {
        let mut net = grid_engine(6);
        let sub = net.inner().id_at(0).unwrap(); // at (0.083, 0.083)
        let far = net.inner().id_at(35).unwrap(); // at (0.917, 0.917)
        let publisher = net.inner().id_at(20).unwrap();

        let region = voronet_geom::Rect::new(Point2::new(0.0, 0.0), Point2::new(0.3, 0.3));
        let r = service(net.exec_service(ServiceOp::Subscribe { id: sub, region }));
        assert_eq!(
            r,
            ServiceResult::Subscribed(SubscribeOutcome {
                id: sub,
                replaced: false
            })
        );
        // Far subscriber's region does not intersect the publish region.
        net.exec_service(ServiceOp::Subscribe {
            id: far,
            region: voronet_geom::Rect::new(Point2::new(0.8, 0.8), Point2::new(1.0, 1.0)),
        });

        let publish = ServiceOp::Publish {
            from: publisher,
            region: voronet_geom::Rect::new(Point2::new(0.0, 0.0), Point2::new(0.25, 0.25)),
            payload: 99,
        };
        let ServiceResult::Published(p) = service(net.exec_service(publish)) else {
            panic!()
        };
        assert_eq!(p.seq, 1);
        assert_eq!(p.delivered, vec![sub]);
        assert!(p.missed.is_empty());
        assert!(p.visited > 0);

        // Same topic again: the sequence number advances.
        let ServiceResult::Published(p2) = service(net.exec_service(publish)) else {
            panic!()
        };
        assert_eq!(p2.seq, 2);

        let stats = net.service_stats();
        assert_eq!(stats.publishes, 2);
        assert_eq!(stats.deliveries, 2);
        assert_eq!(stats.duplicates, 0);

        // Re-subscribing replaces; unsubscribing twice reports absence.
        let r = service(net.exec_service(ServiceOp::Subscribe { id: sub, region }));
        assert_eq!(
            r,
            ServiceResult::Subscribed(SubscribeOutcome {
                id: sub,
                replaced: true
            })
        );
        let r = service(net.exec_service(ServiceOp::Unsubscribe { id: sub }));
        assert_eq!(
            r,
            ServiceResult::Unsubscribed(UnsubscribeOutcome {
                id: sub,
                existed: true
            })
        );
        let r = service(net.exec_service(ServiceOp::Unsubscribe { id: sub }));
        assert_eq!(
            r,
            ServiceResult::Unsubscribed(UnsubscribeOutcome {
                id: sub,
                existed: false
            })
        );
    }

    #[test]
    fn kv_round_trips_from_any_origin() {
        let mut net = grid_engine(5);
        let a = net.inner().id_at(0).unwrap();
        let b = net.inner().id_at(24).unwrap();

        let ServiceResult::Put(put) = service(net.exec_service(ServiceOp::KvPut {
            from: a,
            key: 7,
            value: 1234,
        })) else {
            panic!()
        };
        assert!(!put.replaced);

        // A get from the other corner routes to the same owner.
        let ServiceResult::Got(got) =
            service(net.exec_service(ServiceOp::KvGet { from: b, key: 7 }))
        else {
            panic!()
        };
        assert_eq!(got.owner, put.owner);
        assert_eq!(got.value, Some(1234));

        // Overwrite, then delete, then miss.
        let ServiceResult::Put(put2) = service(net.exec_service(ServiceOp::KvPut {
            from: b,
            key: 7,
            value: 5678,
        })) else {
            panic!()
        };
        assert!(put2.replaced);
        let ServiceResult::Deleted(del) =
            service(net.exec_service(ServiceOp::KvDelete { from: a, key: 7 }))
        else {
            panic!()
        };
        assert!(del.existed);
        let ServiceResult::Got(got) =
            service(net.exec_service(ServiceOp::KvGet { from: a, key: 7 }))
        else {
            panic!()
        };
        assert_eq!(got.value, None);

        let stats = net.service_stats();
        assert_eq!((stats.kv_puts, stats.kv_gets, stats.kv_deletes), (2, 2, 1));
        assert_eq!(stats.kv_hits, 1);
    }

    #[test]
    fn insert_near_key_point_hands_ownership_off() {
        let mut net = grid_engine(4);
        let a = net.inner().id_at(0).unwrap();
        let key = 3u64;
        let kp = key_point(key, net.config().domain);

        let ServiceResult::Put(put) = service(net.exec_service(ServiceOp::KvPut {
            from: a,
            key,
            value: 42,
        })) else {
            panic!()
        };

        // Insert a node exactly at the key point: it must take ownership.
        let newcomer = net.insert(kp).unwrap().id;
        assert_ne!(put.owner, newcomer);
        assert_eq!(net.service_state().kv[&key].owner, newcomer);
        assert!(net.service_stats().handoffs >= 1);
        net.verify_invariants().unwrap();

        // And the value is still reachable.
        let ServiceResult::Got(got) = service(net.exec_service(ServiceOp::KvGet { from: a, key }))
        else {
            panic!()
        };
        assert_eq!(got.owner, newcomer);
        assert_eq!(got.value, Some(42));
    }

    #[test]
    fn removing_the_owner_hands_ownership_to_the_nearest_survivor() {
        let mut net = grid_engine(4);
        let a = net.inner().id_at(0).unwrap();
        let key = 11u64;

        let ServiceResult::Put(put) = service(net.exec_service(ServiceOp::KvPut {
            from: a,
            key,
            value: 77,
        })) else {
            panic!()
        };

        net.remove(put.owner).unwrap();
        let new_owner = net.service_state().kv[&key].owner;
        assert_ne!(new_owner, put.owner);
        assert!(net.contains(new_owner));
        net.verify_invariants().unwrap();

        let origin = net.inner().id_at(0).unwrap();
        let ServiceResult::Got(got) =
            service(net.exec_service(ServiceOp::KvGet { from: origin, key }))
        else {
            panic!()
        };
        assert_eq!(got.owner, new_owner);
        assert_eq!(got.value, Some(77));
    }

    #[test]
    fn removing_a_subscriber_drops_its_subscription() {
        let mut net = grid_engine(3);
        let sub = net.inner().id_at(4).unwrap();
        net.exec_service(ServiceOp::Subscribe {
            id: sub,
            region: voronet_geom::Rect::UNIT,
        });
        assert!(net.service_state().subscriptions.contains_key(&sub));
        net.remove(sub).unwrap();
        assert!(net.service_state().subscriptions.is_empty());
    }

    #[test]
    fn batches_interleave_service_and_protocol_ops() {
        let mut net = grid_engine(4);
        let a = net.inner().id_at(0).unwrap();
        let b = net.inner().id_at(15).unwrap();
        let ops = vec![
            Op::RouteBetween { from: a, to: b },
            Op::Service(ServiceOp::KvPut {
                from: a,
                key: 5,
                value: 50,
            }),
            Op::RouteBetween { from: b, to: a },
            Op::Insert {
                position: Point2::new(0.51, 0.49),
            },
            Op::Service(ServiceOp::KvGet { from: b, key: 5 }),
        ];
        let results = net.apply_batch(&ops);
        assert_eq!(results.len(), ops.len());
        assert!(results.iter().all(OpResult::is_ok), "{results:?}");
        match &results[4] {
            OpResult::Service(ServiceResult::Got(g)) => assert_eq!(g.value, Some(50)),
            other => panic!("{other:?}"),
        }
    }
}
