//! Deterministic mappings from service identifiers to overlay geometry.
//!
//! Both services anchor their state in the attribute space: a KV key
//! hashes to a coordinate whose Voronoi cell owner stores the entry, and
//! a pub/sub topic *is* its region rectangle, identified by the exact
//! bit pattern of its corners.  Everything here is pure arithmetic — no
//! randomness, no state — so every engine, the naive oracle model and
//! the distributed driver all agree on the same placement.

use voronet_geom::{Point2, Rect};

/// The SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a KV key to its home coordinate inside `domain`.
///
/// The mapping is the whole placement scheme: the live object owning the
/// Voronoi cell of `key_point(key, domain)` stores the entry (greedy
/// routing towards the point terminates exactly there, Theorem 1 of the
/// paper).  Two independent SplitMix64 streams feed the two axes, and the
/// 53 high bits of each are scaled into the domain so the coordinate is
/// uniform and reproducible bit-for-bit everywhere.
pub fn key_point(key: u64, domain: Rect) -> Point2 {
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    let a = mix(key.wrapping_add(GAMMA));
    let b = mix(key.wrapping_add(GAMMA.wrapping_mul(2)));
    let ux = (a >> 11) as f64 / (1u64 << 53) as f64;
    let uy = (b >> 11) as f64 / (1u64 << 53) as f64;
    Point2::new(
        domain.min.x + ux * (domain.max.x - domain.min.x),
        domain.min.y + uy * (domain.max.y - domain.min.y),
    )
}

/// The identity of a pub/sub topic: the exact bit pattern of its region
/// rectangle.  Used to key per-topic sequence numbers; two publishes
/// target the same topic iff their rectangles are bit-identical.
pub fn topic_key(region: &Rect) -> [u64; 4] {
    [
        region.min.x.to_bits(),
        region.min.y.to_bits(),
        region.max.x.to_bits(),
        region.max.y.to_bits(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_points_are_deterministic_and_in_domain() {
        let domain = Rect::UNIT;
        for key in 0..1_000u64 {
            let p = key_point(key, domain);
            assert_eq!(p, key_point(key, domain));
            assert!(domain.contains(p), "key {key} -> {p:?} escapes the domain");
        }
        // Nearby keys land far apart (no visible structure).
        let a = key_point(1, domain);
        let b = key_point(2, domain);
        assert!(a.distance(b) > 1e-3, "{a:?} vs {b:?}");
    }

    #[test]
    fn key_points_scale_into_arbitrary_domains() {
        let domain = Rect::new(Point2::new(2.0, -1.0), Point2::new(6.0, 3.0));
        for key in 0..200u64 {
            assert!(domain.contains(key_point(key, domain)));
        }
        // Same key, different domain, same relative position.
        let unit = key_point(7, Rect::UNIT);
        let wide = key_point(7, domain);
        assert!((wide.x - (2.0 + unit.x * 4.0)).abs() < 1e-12);
        assert!((wide.y - (-1.0 + unit.y * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn topic_keys_identify_rectangles_exactly() {
        let r1 = Rect::new(Point2::new(0.1, 0.2), Point2::new(0.3, 0.4));
        let r2 = Rect::new(Point2::new(0.1, 0.2), Point2::new(0.3, 0.4));
        assert_eq!(topic_key(&r1), topic_key(&r2));
        let r3 = Rect::new(Point2::new(0.1, 0.2), Point2::new(0.3, 0.4000000001));
        assert_ne!(topic_key(&r1), topic_key(&r3));
    }
}
