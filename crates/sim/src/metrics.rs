//! Traffic and routing accounting.
//!
//! Every quantity reported by the paper's evaluation is a count collected
//! here: logical hops per greedy route (Figures 6–8) and per-operation
//! message counts (the O(1) maintenance-cost claims of Section 4.2).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a simulated node (the physical host of an object).
pub type NodeId = u64;

/// Category of protocol message, used to break traffic down per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MessageKind {
    /// Greedy-routing forwarding step (`Spawn(Route, …)` in the paper).
    RouteForward,
    /// Neighbourhood update during `AddVoronoiRegion`.
    VoronoiUpdate,
    /// Close-neighbour set exchange (Lemma 1 discovery).
    CloseNeighbourExchange,
    /// Long-range link establishment / delegation.
    LongLink,
    /// Departure notification from `RemoveVoronoiRegion`.
    Departure,
    /// Application-level query answer.
    QueryAnswer,
    /// Anything else (extensions, tests).
    Other,
}

/// Aggregated traffic counters for a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    per_kind: BTreeMap<MessageKind, u64>,
    per_node_sent: BTreeMap<NodeId, u64>,
    total: u64,
}

impl TrafficStats {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of the given kind sent by `from`.
    pub fn record(&mut self, from: NodeId, kind: MessageKind) {
        *self.per_kind.entry(kind).or_insert(0) += 1;
        *self.per_node_sent.entry(from).or_insert(0) += 1;
        self.total += 1;
    }

    /// Bulk-records `n` messages of one kind (the per-kind and total
    /// counters only).  Together with [`TrafficStats::add_sender`] this
    /// decomposes [`TrafficStats::record`] for batched appliers that
    /// aggregate per-kind and per-sender counts independently: `record(f,
    /// k)` ≡ `add_kind(k, 1); add_sender(f, 1)`.  No entry is created when
    /// `n == 0`, so bulk application leaves the maps identical to an
    /// equivalent sequence of `record` calls.
    pub fn add_kind(&mut self, kind: MessageKind, n: u64) {
        if n == 0 {
            return;
        }
        *self.per_kind.entry(kind).or_insert(0) += n;
        self.total += n;
    }

    /// Bulk-records `n` messages sent by one node (the per-sender counter
    /// only); see [`TrafficStats::add_kind`].
    pub fn add_sender(&mut self, node: NodeId, n: u64) {
        if n == 0 {
            return;
        }
        *self.per_node_sent.entry(node).or_insert(0) += n;
    }

    /// Total number of messages recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of messages of a given kind.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.per_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Number of messages sent by a given node.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.per_node_sent.get(&node).copied().unwrap_or(0)
    }

    /// The most loaded sender and its message count, if any traffic exists.
    pub fn max_sender(&self) -> Option<(NodeId, u64)> {
        self.per_node_sent
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&n, &c)| (n, c))
    }

    /// Mean messages per sender (0 when no traffic).
    pub fn mean_per_sender(&self) -> f64 {
        if self.per_node_sent.is_empty() {
            0.0
        } else {
            self.total as f64 / self.per_node_sent.len() as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (&k, &c) in &other.per_kind {
            *self.per_kind.entry(k).or_insert(0) += c;
        }
        for (&n, &c) in &other.per_node_sent {
            *self.per_node_sent.entry(n).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.per_kind.clear();
        self.per_node_sent.clear();
        self.total = 0;
    }
}

/// Transport-level health counters, shared by every `Transport`
/// implementation of `voronet-net` (the deterministic vnet simulator, UDP
/// and TCP) and surfaced in the `voronet-node` stats line.
///
/// Lossy-path tests assert on these counters instead of on silence: a
/// dropped frame, a dead-lettered delivery or a TCP reconnect always
/// leaves a trace here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Frames submitted for transmission.
    pub frames_sent: u64,
    /// Frames handed to the receiving endpoint.
    pub frames_delivered: u64,
    /// Frames dropped by iid loss (vnet) or a failed socket send.
    pub dropped_loss: u64,
    /// Frames dropped by an active partition window (vnet only).
    pub dropped_partition: u64,
    /// Frames that arrived for a departed / unknown destination.
    pub dead_letters: u64,
    /// Frames rejected because they exceeded the transport's frame budget.
    pub oversized: u64,
    /// Frames whose header failed to decode on arrival.
    pub decode_errors: u64,
    /// Connection re-establishment attempts (TCP only).
    pub reconnects: u64,
}

impl TransportStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames lost for any reason (loss, partition, oversize, dead
    /// letters): the quantity lossy-path tests bound from below.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss + self.dropped_partition + self.oversized + self.dead_letters
    }

    /// Merges another set of counters into this one (e.g. aggregating the
    /// per-host stats of a cluster).
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.frames_delivered += other.frames_delivered;
        self.dropped_loss += other.dropped_loss;
        self.dropped_partition += other.dropped_partition;
        self.dead_letters += other.dead_letters;
        self.oversized += other.oversized;
        self.decode_errors += other.decode_errors;
        self.reconnects += other.reconnects;
    }
}

impl fmt::Display for TransportStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} loss={} partition={} dead={} oversized={} decode_err={} \
             reconnects={}",
            self.frames_sent,
            self.frames_delivered,
            self.dropped_loss,
            self.dropped_partition,
            self.dead_letters,
            self.oversized,
            self.decode_errors,
            self.reconnects
        )
    }
}

/// Accumulator of per-route hop counts (the paper's central routing metric).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteStats {
    hops: Vec<u32>,
}

impl RouteStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the hop count of one completed route.
    pub fn record(&mut self, hops: u32) {
        self.hops.push(hops);
    }

    /// Number of routes recorded.
    pub fn count(&self) -> usize {
        self.hops.len()
    }

    /// Mean hop count (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.hops.is_empty() {
            0.0
        } else {
            self.hops.iter().map(|&h| h as f64).sum::<f64>() / self.hops.len() as f64
        }
    }

    /// Maximum hop count (`None` when empty).
    pub fn max(&self) -> Option<u32> {
        self.hops.iter().copied().max()
    }

    /// The `q`-quantile of hop counts (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.hops.is_empty() {
            return None;
        }
        let mut sorted = self.hops.clone();
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// All recorded hop counts (in recording order).
    pub fn samples(&self) -> &[u32] {
        &self.hops
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RouteStats) {
        self.hops.extend_from_slice(&other.hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counters() {
        let mut t = TrafficStats::new();
        t.record(1, MessageKind::RouteForward);
        t.record(1, MessageKind::RouteForward);
        t.record(2, MessageKind::LongLink);
        assert_eq!(t.total(), 3);
        assert_eq!(t.count(MessageKind::RouteForward), 2);
        assert_eq!(t.count(MessageKind::Departure), 0);
        assert_eq!(t.sent_by(1), 2);
        assert_eq!(t.sent_by(99), 0);
        assert_eq!(t.max_sender(), Some((1, 2)));
        assert!((t.mean_per_sender() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_merge_and_reset() {
        let mut a = TrafficStats::new();
        a.record(1, MessageKind::VoronoiUpdate);
        let mut b = TrafficStats::new();
        b.record(1, MessageKind::VoronoiUpdate);
        b.record(3, MessageKind::Departure);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(MessageKind::VoronoiUpdate), 2);
        assert_eq!(a.sent_by(1), 2);
        a.reset();
        assert_eq!(a.total(), 0);
        assert_eq!(a.max_sender(), None);
    }

    #[test]
    fn bulk_adds_decompose_record_exactly() {
        // `record(f, k)` must equal `add_kind(k, 1) + add_sender(f, 1)`,
        // including map *shape* (no zero-count entries), so batch appliers
        // replaying aggregated counts reproduce bit-identical stats.
        let mut inline = TrafficStats::new();
        inline.record(4, MessageKind::RouteForward);
        inline.record(4, MessageKind::RouteForward);
        inline.record(9, MessageKind::Other);

        let mut bulk = TrafficStats::new();
        bulk.add_kind(MessageKind::RouteForward, 2);
        bulk.add_kind(MessageKind::Other, 1);
        bulk.add_kind(MessageKind::Departure, 0); // must not create an entry
        bulk.add_sender(4, 2);
        bulk.add_sender(9, 1);
        bulk.add_sender(77, 0); // must not create an entry

        assert_eq!(inline, bulk);
        assert_eq!(bulk.total(), 3);
        assert_eq!(bulk.sent_by(77), 0);
    }

    #[test]
    fn route_stats_quantiles() {
        let mut r = RouteStats::new();
        for h in 1..=100u32 {
            r.record(h);
        }
        assert_eq!(r.count(), 100);
        assert!((r.mean() - 50.5).abs() < 1e-12);
        assert_eq!(r.max(), Some(100));
        assert_eq!(r.quantile(0.0), Some(1));
        assert_eq!(r.quantile(1.0), Some(100));
        assert_eq!(r.quantile(0.5), Some(51));
    }

    #[test]
    fn route_stats_empty_and_merge() {
        let r = RouteStats::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.max(), None);
        assert_eq!(r.quantile(0.5), None);
        let mut a = RouteStats::new();
        a.record(3);
        let mut b = RouteStats::new();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.samples(), &[3, 5]);
    }
}
