//! Pluggable network conditions for the per-node runtime.
//!
//! The paper's evaluation assumes an ideal message-passing substrate (every
//! message arrives, in one logical hop).  Real deployments of an object
//! overlay see none of that: latency varies per link, messages are lost, and
//! the network occasionally partitions.  A [`NetworkModel`] decides, for
//! every message the runtime sends, whether it is delivered and after which
//! delay — deterministically for a given seed and send order, so that every
//! scenario run is bit-for-bit reproducible.

use crate::event::SimTime;
use crate::metrics::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-message latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many units (`Fixed(1)` is the
    /// paper's idealised "one hop = one unit" timing).
    Fixed(SimTime),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum delay (inclusive).
        min: SimTime,
        /// Maximum delay (inclusive).
        max: SimTime,
    },
    /// Heavy-tailed (truncated Pareto) delays: most messages close to `min`,
    /// a Zipf-like tail of stragglers up to `max`.  `alpha` is the tail
    /// exponent — smaller values mean a heavier tail.
    Skewed {
        /// Typical (minimum) delay.
        min: SimTime,
        /// Truncation point of the tail.
        max: SimTime,
        /// Pareto tail exponent (must be positive; the paper-style Zipf
        /// skew of α ∈ {1, 2, 5} maps directly onto this parameter).
        alpha: f64,
    },
}

impl LatencyModel {
    fn sample(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    min
                } else {
                    rng.random_range(min..=max)
                }
            }
            LatencyModel::Skewed { min, max, alpha } => {
                if max <= min {
                    return min;
                }
                let u: f64 = rng.random::<f64>().max(1e-12);
                // Pareto with scale 1: factor >= 1, heavy upper tail.
                let factor = u.powf(-1.0 / alpha.max(1e-6));
                let span = (max - min) as f64;
                let extra = ((factor - 1.0).min(span)).round() as SimTime;
                min + extra.min(max - min)
            }
        }
    }
}

/// A time window during which the network is split into `groups` disjoint
/// components (node `n` belongs to component `n % groups`); messages
/// crossing components are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First instant (inclusive) of the partition.
    pub start: SimTime,
    /// Last instant (exclusive) of the partition.
    pub end: SimTime,
    /// Number of components the network splits into (≥ 2 to have any
    /// effect).
    pub groups: u64,
}

impl PartitionWindow {
    fn severs(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        self.groups >= 2
            && now >= self.start
            && now < self.end
            && from % self.groups != to % self.groups
    }
}

/// Outcome of submitting one message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message will arrive `delay` units after it was sent.
    Deliver {
        /// Network transit time.
        delay: SimTime,
    },
    /// The message is lost to random (iid) loss.
    DroppedLoss,
    /// The message is lost to an active partition window.
    DroppedPartition,
}

/// Deterministic, seeded model of the network between simulated nodes:
/// latency distribution, iid loss and scheduled partition windows.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    latency: LatencyModel,
    /// Scheduled latency regime changes, sorted by activation time: from
    /// each entry's instant (inclusive) onwards, its model replaces the
    /// previous one.
    latency_shifts: Vec<(SimTime, LatencyModel)>,
    loss_probability: f64,
    partitions: Vec<PartitionWindow>,
    rng: StdRng,
}

impl NetworkModel {
    /// A perfect network: every message arrives after exactly one time unit
    /// (the paper's "one hop = one unit" logical timing), nothing is lost.
    pub fn ideal() -> Self {
        NetworkModel::new(0, LatencyModel::Fixed(1))
    }

    /// Creates a model with the given latency distribution, no loss and no
    /// partitions.
    pub fn new(seed: u64, latency: LatencyModel) -> Self {
        NetworkModel {
            latency,
            latency_shifts: Vec::new(),
            loss_probability: 0.0,
            partitions: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x6E65_745F_6D6F_6465),
        }
    }

    /// Schedules a latency-regime shift: from `at` (inclusive) onwards,
    /// messages are delayed by `latency` instead of the previously active
    /// model.  Multiple shifts compose into a piecewise schedule; the
    /// latest shift at or before the submission instant wins.  Scenario
    /// generators use this to model a network whose conditions degrade or
    /// recover mid-run.
    pub fn with_latency_shift(mut self, at: SimTime, latency: LatencyModel) -> Self {
        self.latency_shifts.push((at, latency));
        self.latency_shifts.sort_by_key(|&(t, _)| t);
        self
    }

    /// The latency model in effect at instant `now`.
    pub fn latency_at(&self, now: SimTime) -> LatencyModel {
        self.latency_shifts
            .iter()
            .rev()
            .find(|&&(t, _)| t <= now)
            .map(|&(_, m)| m)
            .unwrap_or(self.latency)
    }

    /// Sets the iid per-message loss probability (clamped to `[0, 1)`).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p.clamp(0.0, 0.999_999);
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// True when the model can drop messages (loss or partitions).
    pub fn is_lossy(&self) -> bool {
        self.loss_probability > 0.0 || !self.partitions.is_empty()
    }

    /// Decides the fate of a message from `from` to `to` submitted at `now`.
    ///
    /// Consumes randomness in submission order, which the runtime keeps
    /// deterministic.
    pub fn delivery(&mut self, from: NodeId, to: NodeId, now: SimTime) -> Delivery {
        if self.partitions.iter().any(|w| w.severs(from, to, now)) {
            return Delivery::DroppedPartition;
        }
        // Draw the latency before the loss coin so that the number of RNG
        // draws per submission is constant — losing a message must not shift
        // the latency stream of subsequent messages in confusing ways.
        let delay = self.latency_at(now).sample(&mut self.rng);
        if self.loss_probability > 0.0 && self.rng.random_bool(self.loss_probability) {
            return Delivery::DroppedLoss;
        }
        Delivery::Deliver { delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliveries(model: &mut NetworkModel, n: usize) -> Vec<Delivery> {
        (0..n as u64).map(|i| model.delivery(i, i + 1, 0)).collect()
    }

    #[test]
    fn ideal_network_delivers_everything_in_one_unit() {
        let mut m = NetworkModel::ideal();
        for d in deliveries(&mut m, 100) {
            assert_eq!(d, Delivery::Deliver { delay: 1 });
        }
        assert!(!m.is_lossy());
    }

    #[test]
    fn same_seed_same_decisions() {
        let make = || NetworkModel::new(7, LatencyModel::Uniform { min: 1, max: 9 }).with_loss(0.3);
        let (mut a, mut b) = (make(), make());
        assert_eq!(deliveries(&mut a, 500), deliveries(&mut b, 500));
        let mut c = NetworkModel::new(8, LatencyModel::Uniform { min: 1, max: 9 }).with_loss(0.3);
        assert_ne!(deliveries(&mut a, 500), deliveries(&mut c, 500));
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let mut m = NetworkModel::new(3, LatencyModel::Uniform { min: 2, max: 5 });
        for d in deliveries(&mut m, 1000) {
            match d {
                Delivery::Deliver { delay } => assert!((2..=5).contains(&delay)),
                other => panic!("loss-free model dropped: {other:?}"),
            }
        }
    }

    #[test]
    fn skewed_latency_is_heavy_tailed_but_bounded() {
        let mut m = NetworkModel::new(
            5,
            LatencyModel::Skewed {
                min: 1,
                max: 100,
                alpha: 1.0,
            },
        );
        let mut below_10 = 0usize;
        let mut max_seen = 0;
        let n = 2000;
        for d in deliveries(&mut m, n) {
            let Delivery::Deliver { delay } = d else {
                panic!("loss-free model dropped")
            };
            assert!((1..=100).contains(&delay));
            if delay < 10 {
                below_10 += 1;
            }
            max_seen = max_seen.max(delay);
        }
        assert!(
            below_10 as f64 > 0.7 * n as f64,
            "most messages should be fast, got {below_10}/{n}"
        );
        assert!(max_seen > 20, "the tail should reach far, got {max_seen}");
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut m = NetworkModel::new(11, LatencyModel::Fixed(1)).with_loss(0.25);
        assert!(m.is_lossy());
        let n = 10_000;
        let lost = deliveries(&mut m, n)
            .into_iter()
            .filter(|d| *d == Delivery::DroppedLoss)
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate} far from 0.25");
    }

    #[test]
    fn latency_shifts_take_effect_at_their_instant() {
        let mut m = NetworkModel::new(0, LatencyModel::Fixed(1))
            .with_latency_shift(50, LatencyModel::Fixed(7))
            .with_latency_shift(100, LatencyModel::Fixed(2));
        assert_eq!(m.latency_at(0), LatencyModel::Fixed(1));
        assert_eq!(m.latency_at(49), LatencyModel::Fixed(1));
        assert_eq!(m.latency_at(50), LatencyModel::Fixed(7));
        assert_eq!(m.latency_at(99), LatencyModel::Fixed(7));
        assert_eq!(m.latency_at(100), LatencyModel::Fixed(2));
        assert_eq!(m.delivery(0, 1, 10), Delivery::Deliver { delay: 1 });
        assert_eq!(m.delivery(0, 1, 60), Delivery::Deliver { delay: 7 });
        assert_eq!(m.delivery(0, 1, 200), Delivery::Deliver { delay: 2 });
        // Shifts registered out of order still form a sorted schedule.
        let m = NetworkModel::new(0, LatencyModel::Fixed(1))
            .with_latency_shift(80, LatencyModel::Fixed(3))
            .with_latency_shift(20, LatencyModel::Fixed(9));
        assert_eq!(m.latency_at(30), LatencyModel::Fixed(9));
        assert_eq!(m.latency_at(90), LatencyModel::Fixed(3));
    }

    #[test]
    fn partitions_sever_cross_group_links_only_inside_the_window() {
        let mut m = NetworkModel::ideal().with_partition(PartitionWindow {
            start: 10,
            end: 20,
            groups: 2,
        });
        // Inside the window, cross-group drops, same-group passes.
        assert_eq!(m.delivery(0, 1, 15), Delivery::DroppedPartition);
        assert!(matches!(m.delivery(0, 2, 15), Delivery::Deliver { .. }));
        // Outside the window everything passes.
        assert!(matches!(m.delivery(0, 1, 9), Delivery::Deliver { .. }));
        assert!(matches!(m.delivery(0, 1, 20), Delivery::Deliver { .. }));
    }
}
