//! Per-node asynchronous message-passing runtime.
//!
//! The seed reproduction executes every protocol operation synchronously
//! inside one `VoroNet` value; this module supplies the missing layer for
//! evaluating the protocol *as a distributed system*: a set of independent
//! nodes exchanging typed messages through the deterministic [`EventQueue`],
//! each message subject to a pluggable [`NetworkModel`] (latency, loss,
//! partitions).
//!
//! The runtime is generic over the protocol: `M` is the message type carried
//! between nodes and `C` is the type of *control events* — scripted scenario
//! operations injected at absolute times, exempt from network conditions
//! (they model the experimenter's hand, not protocol traffic).  The overlay
//! layer (`voronet-core`) instantiates `M` with its protocol messages and
//! drives the loop; everything here is protocol-agnostic: node liveness,
//! message accounting, deterministic delivery.
//!
//! Determinism contract: for a fixed seed, scenario and protocol logic, two
//! runs deliver the exact same events in the exact same order — the
//! [`EventQueue`] breaks time ties by scheduling order and the
//! [`NetworkModel`] consumes randomness in submission order.

use crate::event::{EventQueue, SimTime};
use crate::metrics::{MessageKind, NodeId, TrafficStats};
use crate::network::{Delivery, NetworkModel};
use std::collections::HashSet;

/// A protocol message in flight (or delivered).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Accounting category of the message.
    pub kind: MessageKind,
    /// Protocol payload.
    pub payload: M,
}

#[derive(Clone)]
enum Item<M, C> {
    Message(Envelope<M>),
    Control(C),
}

/// One event handed to the protocol driver by [`Runtime::step`].
#[derive(Debug, PartialEq)]
pub enum Delivered<M, C> {
    /// A protocol message reached a live node.
    Message {
        /// Delivery time.
        at: SimTime,
        /// The message and its routing metadata.
        envelope: Envelope<M>,
    },
    /// A scripted control event fired.
    Control {
        /// Scheduled time.
        at: SimTime,
        /// The scenario operation (or other control payload).
        payload: C,
    },
}

/// Message-delivery counters of one runtime execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Messages submitted to the network.
    pub sent: u64,
    /// Messages that reached a live destination.
    pub delivered: u64,
    /// Messages dropped by iid loss.
    pub dropped_loss: u64,
    /// Messages dropped by a partition window.
    pub dropped_partition: u64,
    /// Messages that arrived at a node that had left or crashed.
    pub dead_letters: u64,
}

/// The asynchronous runtime: live-node registry, in-flight messages, network
/// model and traffic accounting.  Cloning snapshots the whole execution
/// state (clock, in-flight messages, RNG), so a warmed-up runtime can be
/// replayed from the same point many times.
#[derive(Clone)]
pub struct Runtime<M, C = ()> {
    queue: EventQueue<Item<M, C>>,
    network: NetworkModel,
    live: HashSet<NodeId>,
    traffic: TrafficStats,
    delivery: DeliveryStats,
}

impl<M, C> Runtime<M, C> {
    /// Creates a runtime with no nodes and the given network conditions.
    pub fn new(network: NetworkModel) -> Self {
        Runtime {
            queue: EventQueue::new(),
            network,
            live: HashSet::new(),
            traffic: TrafficStats::new(),
            delivery: DeliveryStats::default(),
        }
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Per-kind / per-sender traffic counters (protocol messages only;
    /// control events are not traffic).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Delivery counters.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.delivery
    }

    /// Number of live nodes.
    pub fn population(&self) -> usize {
        self.live.len()
    }

    /// True when `node` is currently live.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.live.contains(&node)
    }

    /// Registers `node` as live.  Returns false when it already was.
    pub fn spawn(&mut self, node: NodeId) -> bool {
        self.live.insert(node)
    }

    /// Marks `node` as departed: messages already in flight towards it
    /// become dead letters on arrival.  Returns false when it was not live.
    pub fn kill(&mut self, node: NodeId) -> bool {
        self.live.remove(&node)
    }

    /// Submits a protocol message to the network.  Returns `true` when the
    /// message was scheduled for delivery, `false` when the network dropped
    /// it (the loss is still recorded in the counters — and in the traffic
    /// stats: a lost message was still *sent*).
    pub fn send(&mut self, from: NodeId, to: NodeId, kind: MessageKind, payload: M) -> bool {
        self.delivery.sent += 1;
        self.traffic.record(from, kind);
        match self.network.delivery(from, to, self.queue.now()) {
            Delivery::Deliver { delay } => {
                self.queue.schedule(
                    delay,
                    Item::Message(Envelope {
                        from,
                        to,
                        kind,
                        payload,
                    }),
                );
                true
            }
            Delivery::DroppedLoss => {
                self.delivery.dropped_loss += 1;
                false
            }
            Delivery::DroppedPartition => {
                self.delivery.dropped_partition += 1;
                false
            }
        }
    }

    /// Records protocol messages that the driver executed outside the
    /// network (e.g. a purely local flood phase whose per-hop cost is
    /// counted but not individually simulated) into the traffic counters.
    pub fn record_traffic(&mut self, from: NodeId, kind: MessageKind) {
        self.traffic.record(from, kind);
    }

    /// Schedules a control event at an absolute time.  Control events bypass
    /// the network model entirely.
    pub fn schedule_control_at(&mut self, at: SimTime, payload: C) {
        self.queue.schedule_at(at, Item::Control(payload));
    }

    /// Delivers the next event: the earliest pending control event or
    /// message whose destination is still live.  Messages to departed nodes
    /// are counted as dead letters and skipped.  Returns `None` when the
    /// simulation has quiesced.
    pub fn step(&mut self) -> Option<Delivered<M, C>> {
        while let Some((at, item)) = self.queue.pop() {
            match item {
                Item::Control(payload) => return Some(Delivered::Control { at, payload }),
                Item::Message(envelope) => {
                    if self.live.contains(&envelope.to) {
                        self.delivery.delivered += 1;
                        return Some(Delivered::Message { at, envelope });
                    }
                    self.delivery.dead_letters += 1;
                }
            }
        }
        None
    }

    /// Number of pending events (messages in flight plus scheduled control
    /// events).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{LatencyModel, NetworkModel, PartitionWindow};

    type TestRuntime = Runtime<&'static str, &'static str>;

    fn runtime(network: NetworkModel) -> TestRuntime {
        let mut rt = Runtime::new(network);
        for n in 0..4 {
            rt.spawn(n);
        }
        rt
    }

    #[test]
    fn messages_deliver_in_latency_order() {
        let mut rt = runtime(NetworkModel::new(1, LatencyModel::Fixed(3)));
        rt.send(0, 1, MessageKind::Other, "first");
        rt.send(1, 2, MessageKind::Other, "second");
        let a = rt.step().unwrap();
        let b = rt.step().unwrap();
        assert!(rt.step().is_none());
        match (a, b) {
            (
                Delivered::Message {
                    at: t1,
                    envelope: e1,
                },
                Delivered::Message {
                    at: t2,
                    envelope: e2,
                },
            ) => {
                assert_eq!((t1, e1.payload), (3, "first"));
                assert_eq!((t2, e2.payload), (3, "second"));
            }
            other => panic!("unexpected events: {other:?}"),
        }
        assert_eq!(rt.delivery_stats().delivered, 2);
        assert_eq!(rt.traffic().total(), 2);
    }

    #[test]
    fn dead_nodes_turn_messages_into_dead_letters() {
        let mut rt = runtime(NetworkModel::ideal());
        rt.send(0, 3, MessageKind::Other, "doomed");
        rt.kill(3);
        assert!(rt.step().is_none());
        assert_eq!(rt.delivery_stats().dead_letters, 1);
        assert_eq!(rt.delivery_stats().delivered, 0);
    }

    #[test]
    fn control_events_bypass_the_network() {
        let lossy = NetworkModel::new(1, LatencyModel::Fixed(1)).with_loss(0.999_99);
        let mut rt = runtime(lossy);
        rt.schedule_control_at(5, "op");
        match rt.step() {
            Some(Delivered::Control { at, payload }) => {
                assert_eq!((at, payload), (5, "op"));
            }
            other => panic!("expected control event, got {other:?}"),
        }
        // Control events are not protocol traffic.
        assert_eq!(rt.traffic().total(), 0);
    }

    #[test]
    fn loss_and_partition_are_counted() {
        let mut rt = runtime(
            NetworkModel::new(2, LatencyModel::Fixed(1))
                .with_loss(0.5)
                .with_partition(PartitionWindow {
                    start: 0,
                    end: 1_000,
                    groups: 2,
                }),
        );
        for i in 0..200u64 {
            // Alternate same-component (0→2) and cross-component (0→1)
            // destinations so both loss and partition drops occur.
            let to = if i % 2 == 0 { 2 } else { 1 };
            rt.send(0, to, MessageKind::Other, "m");
        }
        let stats = rt.delivery_stats();
        assert_eq!(stats.sent, 200);
        assert!(stats.dropped_partition > 0, "{stats:?}");
        assert!(stats.dropped_loss > 0, "{stats:?}");
        // Sent messages are all accounted for somewhere.
        let mut delivered = 0;
        while rt.step().is_some() {
            delivered += 1;
        }
        let stats = rt.delivery_stats();
        assert_eq!(
            stats.dropped_loss + stats.dropped_partition + stats.delivered + stats.dead_letters,
            200
        );
        assert_eq!(stats.delivered, delivered);
    }

    #[test]
    fn spawn_and_kill_track_population() {
        let mut rt: TestRuntime = Runtime::new(NetworkModel::ideal());
        assert_eq!(rt.population(), 0);
        assert!(rt.spawn(9));
        assert!(!rt.spawn(9));
        assert!(rt.is_live(9));
        assert_eq!(rt.population(), 1);
        assert!(rt.kill(9));
        assert!(!rt.kill(9));
        assert_eq!(rt.population(), 0);
    }
}
