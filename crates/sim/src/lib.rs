//! # voronet-sim
//!
//! Message-level simulation substrate for the VoroNet evaluation.
//!
//! The original paper evaluates the protocol "by simulation" with an
//! unreleased ad-hoc simulator; every reported metric is a *logical* count
//! (greedy-routing hops, per-operation message counts, view sizes).  This
//! crate provides the equivalent substrate: a deterministic discrete-event
//! scheduler ([`EventQueue`]), node identifiers, and the accounting
//! structures ([`TrafficStats`], [`RouteStats`]) that the overlay layer
//! fills in while executing the protocol.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;

pub use event::{EventQueue, SimTime};
pub use metrics::{MessageKind, NodeId, RouteStats, TrafficStats};
