//! # voronet-sim
//!
//! Message-level simulation substrate for the VoroNet evaluation.
//!
//! The original paper evaluates the protocol "by simulation" with an
//! unreleased ad-hoc simulator; every reported metric is a *logical* count
//! (greedy-routing hops, per-operation message counts, view sizes).  This
//! crate provides the equivalent substrate and extends it into a real
//! per-node asynchronous runtime:
//!
//! * [`EventQueue`] — deterministic discrete-event scheduler with
//!   cancel/reschedule support;
//! * [`Runtime`] — per-node message-passing runtime: live-node registry,
//!   typed envelopes, control events, delivery accounting;
//! * [`NetworkModel`] — pluggable network conditions (fixed/uniform/
//!   heavy-tailed latency, iid loss, partition windows), deterministic per
//!   seed;
//! * [`Scenario`] / [`ScenarioBuilder`] — scripted workloads of interleaved
//!   joins, departures, routes and queries;
//! * [`TrafficStats`], [`RouteStats`] — the accounting structures the
//!   overlay layer fills in while executing the protocol.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod network;
pub mod runtime;
pub mod scenario;

pub use event::{EventHandle, EventQueue, SimTime};
pub use metrics::{MessageKind, NodeId, RouteStats, TrafficStats, TransportStats};
pub use network::{Delivery, LatencyModel, NetworkModel, PartitionWindow};
pub use runtime::{Delivered, DeliveryStats, Envelope, Runtime};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioOp};
