//! Deterministic discrete-event scheduler.
//!
//! The VoroNet evaluation is a logical-time simulation: what matters is the
//! order and count of protocol messages, not wall-clock latency.  The
//! scheduler delivers events in `(time, sequence)` order, which makes every
//! run bit-for-bit reproducible for a given seed and insertion order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Logical simulation time (abstract units; the overlay uses "one hop = one
/// unit" by default).
pub type SimTime = u64;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    time: SimTime,
    seq: u64,
}

/// A deterministic event queue: events scheduled at the same time are
/// delivered in scheduling order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<(Reverse<EventKey>, usize)>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    now: SimTime,
    seq: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current logical time (the delivery time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire `delay` units after the current time.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at an absolute time (clamped to the present so time
    /// never goes backwards).
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let key = EventKey {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.heap.push((Reverse(key), slot));
    }

    /// Pops the next event, advancing the clock to its delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (Reverse(key), slot) = self.heap.pop()?;
        self.now = key.time;
        self.delivered += 1;
        let ev = self.slots[slot].take().expect("scheduled slot holds an event");
        self.free.push(slot);
        Some((key.time, ev))
    }

    /// Runs the queue to exhaustion, calling `handler` for every event.  The
    /// handler may schedule further events through the queue it is given.
    pub fn run<F: FnMut(&mut Self, SimTime, E)>(&mut self, mut handler: F) {
        while let Some((t, e)) = self.pop() {
            handler(self, t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "c");
        q.schedule(1, "a");
        q.schedule(1, "b");
        q.schedule(0, "now");
        let mut order = Vec::new();
        while let Some((t, e)) = q.pop() {
            order.push((t, e));
        }
        assert_eq!(order, vec![(0, "now"), (1, "a"), (1, "b"), (5, "c")]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.delivered(), 4);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut q = EventQueue::new();
        q.schedule(1, 3u32);
        let mut fired = Vec::new();
        q.run(|q, _t, countdown| {
            fired.push(countdown);
            if countdown > 0 {
                q.schedule(2, countdown - 1);
            }
        });
        assert_eq!(fired, vec![3, 2, 1, 0]);
        assert_eq!(q.now(), 1 + 3 * 2);
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_at_never_goes_backwards() {
        let mut q = EventQueue::new();
        q.schedule(10, "late");
        assert_eq!(q.pop().unwrap().0, 10);
        q.schedule_at(3, "early");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "early");
        assert_eq!(t, 10, "events scheduled in the past fire immediately");
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100 {
            for i in 0..10 {
                q.schedule(i, round * 10 + i);
            }
            while q.pop().is_some() {}
        }
        // Internal storage stays bounded by the maximum number of
        // simultaneously pending events.
        assert!(q.slots.len() <= 10);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 0);
    }
}
