//! Deterministic discrete-event scheduler.
//!
//! The VoroNet evaluation is a logical-time simulation: what matters is the
//! order and count of protocol messages, not wall-clock latency.  The
//! scheduler delivers events in `(time, sequence)` order, which makes every
//! run bit-for-bit reproducible for a given seed and insertion order.
//!
//! Every scheduled event is identified by an [`EventHandle`]; a pending
//! event can be [cancelled](EventQueue::cancel) (timeouts that were met) or
//! [rescheduled](EventQueue::reschedule) (retries, keep-alives) without
//! perturbing the delivery order of unrelated events — cancellation uses
//! lazy deletion, so the heap order of the surviving events is untouched.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Logical simulation time (abstract units; the overlay uses "one hop = one
/// unit" by default).
pub type SimTime = u64;

/// Identifier of a scheduled (and not yet delivered) event.
///
/// Handles are unique across the lifetime of a queue: a handle is never
/// reused, so a stale handle simply fails to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    time: SimTime,
    seq: u64,
}

/// A deterministic event queue: events scheduled at the same time are
/// delivered in scheduling order.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<(Reverse<EventKey>, usize)>,
    slots: Vec<Option<E>>,
    /// Slot index of every pending (not delivered, not cancelled) event.
    by_handle: HashMap<u64, usize>,
    free: Vec<usize>,
    now: SimTime,
    seq: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            by_handle: HashMap::new(),
            free: Vec::new(),
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current logical time (the delivery time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.by_handle.len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.by_handle.is_empty()
    }

    /// Schedules `event` to fire `delay` units after the current time.
    pub fn schedule(&mut self, delay: SimTime, event: E) -> EventHandle {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Schedules `event` at an absolute time (clamped to the present so time
    /// never goes backwards).
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventHandle {
        let time = time.max(self.now);
        let key = EventKey {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.by_handle.insert(key.seq, slot);
        self.heap.push((Reverse(key), slot));
        EventHandle(key.seq)
    }

    /// Cancels a pending event, returning its payload.  Returns `None` when
    /// the event was already delivered, cancelled or rescheduled.
    ///
    /// Cancellation is lazy: the heap entry is skipped (and its slot
    /// recycled) when its delivery time comes, so cancelling never perturbs
    /// the relative order of the surviving events.  When tombstones come to
    /// outnumber the pending events (more than half the heap), the heap is
    /// compacted in one linear pass, bounding its size at twice the number
    /// of pending events — a cancel-heavy workload (timeouts that were met,
    /// retries that were superseded) can no longer grow it without bound.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let slot = self.by_handle.remove(&handle.0)?;
        // The slot stays reserved until the stale heap entry is popped;
        // freeing it now could hand it to a new event that the stale entry
        // would then deliver early.
        let event = self.slots[slot].take();
        if self.heap.len() >= 32 && self.heap.len() > 2 * self.by_handle.len() {
            self.compact();
        }
        event
    }

    /// Drops every tombstoned heap entry, freeing its slot.  Survivor order
    /// is untouched: heap keys are unique `(time, seq)` pairs, so rebuilding
    /// the heap from the surviving entries reproduces the exact delivery
    /// order.
    fn compact(&mut self) {
        let mut live = Vec::with_capacity(self.by_handle.len());
        for (key, slot) in self.heap.drain() {
            if self.slots[slot].is_some() {
                live.push((key, slot));
            } else {
                self.free.push(slot);
            }
        }
        self.heap = BinaryHeap::from(live);
    }

    /// Cancels a pending event and schedules its payload again `delay` units
    /// after the current time, returning the new handle.  Returns `None`
    /// (and schedules nothing) when the event was no longer pending.
    pub fn reschedule(&mut self, handle: EventHandle, delay: SimTime) -> Option<EventHandle> {
        let event = self.cancel(handle)?;
        Some(self.schedule(delay, event))
    }

    /// Pops the next event, advancing the clock to its delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some((Reverse(key), slot)) = self.heap.pop() {
            match self.slots[slot].take() {
                Some(ev) => {
                    self.now = key.time;
                    self.delivered += 1;
                    self.by_handle.remove(&key.seq);
                    self.free.push(slot);
                    return Some((key.time, ev));
                }
                None => {
                    // Cancelled event: recycle the slot and keep looking.
                    self.free.push(slot);
                }
            }
        }
        None
    }

    /// Runs the queue to exhaustion, calling `handler` for every event.  The
    /// handler may schedule further events through the queue it is given.
    pub fn run<F: FnMut(&mut Self, SimTime, E)>(&mut self, mut handler: F) {
        while let Some((t, e)) = self.pop() {
            handler(self, t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "c");
        q.schedule(1, "a");
        q.schedule(1, "b");
        q.schedule(0, "now");
        let mut order = Vec::new();
        while let Some((t, e)) = q.pop() {
            order.push((t, e));
        }
        assert_eq!(order, vec![(0, "now"), (1, "a"), (1, "b"), (5, "c")]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.delivered(), 4);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut q = EventQueue::new();
        q.schedule(1, 3u32);
        let mut fired = Vec::new();
        q.run(|q, _t, countdown| {
            fired.push(countdown);
            if countdown > 0 {
                q.schedule(2, countdown - 1);
            }
        });
        assert_eq!(fired, vec![3, 2, 1, 0]);
        assert_eq!(q.now(), 1 + 3 * 2);
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_at_never_goes_backwards() {
        let mut q = EventQueue::new();
        q.schedule(10, "late");
        assert_eq!(q.pop().unwrap().0, 10);
        q.schedule_at(3, "early");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "early");
        assert_eq!(t, 10, "events scheduled in the past fire immediately");
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100 {
            for i in 0..10 {
                q.schedule(i, round * 10 + i);
            }
            while q.pop().is_some() {}
        }
        // Internal storage stays bounded by the maximum number of
        // simultaneously pending events.
        assert!(q.slots.len() <= 10);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 0);
    }

    // ------------------------------------------------------------------
    // Determinism
    // ------------------------------------------------------------------

    /// Replays one fixed but adversarial schedule (bursts of identical
    /// delivery times, interleaved pops) and returns the delivery order.
    fn replay() -> Vec<(SimTime, u64)> {
        let mut q = EventQueue::new();
        let mut order = Vec::new();
        let mut next_id = 0u64;
        // Mix scheduling and popping so that `now` advances mid-build.
        for wave in 0..5u64 {
            for i in 0..40u64 {
                let delay = (i * 7919 + wave) % 11; // many ties per wave
                q.schedule(delay, next_id);
                next_id += 1;
            }
            for _ in 0..15 {
                if let Some((t, e)) = q.pop() {
                    order.push((t, e));
                }
            }
        }
        while let Some((t, e)) = q.pop() {
            order.push((t, e));
        }
        order
    }

    #[test]
    fn identical_schedules_deliver_identically() {
        let a = replay();
        let b = replay();
        assert_eq!(a.len(), 200);
        assert_eq!(a, b, "same schedule must produce the same delivery order");
    }

    #[test]
    fn ties_at_equal_time_deliver_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule(42, i);
        }
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t, 42);
            seen.push(e);
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    // ------------------------------------------------------------------
    // Cancel / reschedule
    // ------------------------------------------------------------------

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q = EventQueue::new();
        let _a = q.schedule(1, "a");
        let b = q.schedule(2, "b");
        let _c = q.schedule(3, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.len(), 2);
        // Double-cancel is a no-op.
        assert_eq!(q.cancel(b), None);
        let delivered: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(delivered, vec!["a", "c"]);
        assert_eq!(q.delivered(), 2, "cancelled events are not delivered");
    }

    #[test]
    fn cancel_after_delivery_returns_none() {
        let mut q = EventQueue::new();
        let h = q.schedule(0, "x");
        assert_eq!(q.pop(), Some((0, "x")));
        assert_eq!(q.cancel(h), None);
    }

    #[test]
    fn cancel_does_not_perturb_order_of_survivors() {
        let build = |cancel_some: bool| {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for i in 0..50u64 {
                handles.push(q.schedule(i % 5, i));
            }
            if cancel_some {
                for (i, &h) in handles.iter().enumerate() {
                    if i % 3 == 0 {
                        assert!(q.cancel(h).is_some());
                    }
                }
            }
            let mut order = Vec::new();
            while let Some((t, e)) = q.pop() {
                order.push((t, e));
            }
            order
        };
        let with_cancels = build(true);
        let without: Vec<_> = build(false)
            .into_iter()
            .filter(|&(_, e)| e % 3 != 0)
            .collect();
        assert_eq!(
            with_cancels, without,
            "cancelling must be equivalent to the events never having fired"
        );
    }

    #[test]
    fn reschedule_moves_an_event_later() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, "a");
        q.schedule(2, "b");
        let a2 = q.reschedule(a, 5).expect("a is pending");
        // The original handle is dead, the new one is live.
        assert_eq!(q.cancel(a), None);
        let delivered: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(delivered, vec![(2, "b"), (5, "a")]);
        // After delivery the rescheduled handle is dead too.
        let mut q2: EventQueue<&str> = EventQueue::new();
        assert_eq!(q2.reschedule(a2, 1), None);
    }

    #[test]
    fn reschedule_ties_go_to_the_back_of_the_time_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(3, "a");
        q.schedule(3, "b");
        // Rescheduling "a" to the same delivery time demotes it behind "b"
        // (it becomes the youngest event of the slot) — deterministically.
        q.reschedule(a, 3).unwrap();
        let delivered: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(delivered, vec!["b", "a"]);
    }

    #[test]
    fn cancellation_tombstones_are_compacted() {
        // A cancel-heavy workload (schedule many, cancel almost all, never
        // pop) must not grow the heap without bound: tombstones are
        // compacted away once they exceed half the heap.
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for round in 0..100u64 {
            let handles: Vec<_> = (0..100u64)
                .map(|i| q.schedule(i % 7, round * 100 + i))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                if i == 0 {
                    keep.push(h);
                } else {
                    assert!(q.cancel(h).is_some());
                }
            }
        }
        assert_eq!(q.len(), 100, "one survivor per round");
        assert!(
            q.heap.len() <= 2 * q.len(),
            "heap must stay within 2x the pending events, got {} for {}",
            q.heap.len(),
            q.len()
        );
        assert!(
            q.slots.len() <= 2 * q.len() + 100,
            "cancelled slots must be recycled eagerly, got {}",
            q.slots.len()
        );
        // Compaction must not perturb delivery: survivors arrive in
        // (time, scheduling) order with their payloads intact.
        let delivered: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(delivered.len(), 100);
        let mut expected: Vec<(SimTime, u64)> = (0..100u64).map(|round| (0, round * 100)).collect();
        expected.sort_by_key(|&(t, payload)| (t, payload));
        assert_eq!(delivered, expected);
    }

    #[test]
    fn compaction_is_equivalent_to_events_never_having_fired() {
        // Scaled-up variant of `cancel_does_not_perturb_order_of_survivors`
        // that cancels enough events (80% of 500) to trigger compaction
        // several times over.
        let build = |cancel_some: bool| {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for i in 0..500u64 {
                handles.push(q.schedule(i % 11, i));
            }
            if cancel_some {
                for (i, &h) in handles.iter().enumerate() {
                    if i % 5 != 0 {
                        assert!(q.cancel(h).is_some());
                    }
                }
                assert!(
                    q.heap.len() <= 2 * q.len(),
                    "compaction must have bounded the heap ({} entries for {} pending)",
                    q.heap.len(),
                    q.len()
                );
            }
            let mut order = Vec::new();
            while let Some((t, e)) = q.pop() {
                order.push((t, e));
            }
            order
        };
        let with_cancels = build(true);
        let without: Vec<_> = build(false)
            .into_iter()
            .filter(|&(_, e)| e % 5 == 0)
            .collect();
        assert_eq!(
            with_cancels, without,
            "compacted cancellation must be equivalent to the events never having fired"
        );
    }

    #[test]
    fn slots_recycled_after_cancellations() {
        let mut q = EventQueue::new();
        for _ in 0..100 {
            let hs: Vec<_> = (0..10).map(|i| q.schedule(i, i)).collect();
            for h in hs {
                q.cancel(h);
            }
            assert!(q.pop().is_none());
            assert!(q.is_empty());
        }
        assert!(
            q.slots.len() <= 10,
            "cancelled slots must be recycled (got {})",
            q.slots.len()
        );
    }
}
