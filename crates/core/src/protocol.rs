//! Faithful, message-driven execution of the paper's routing framework
//! (Algorithm 5) on top of the discrete-event scheduler of `voronet-sim`.
//!
//! [`VoroNet::route_to_point`] uses the plain greedy walk, which is what the
//! evaluation figures measure.  The paper's algorithms (`AddObject`,
//! `SearchLongLink`, `HandlingQuery`) actually iterate a slightly different
//! loop: at every step the current object computes
//! `z = DistanceToRegion(Target)` — the point of its own region closest to
//! the target — and *stops forwarding* as soon as
//!
//! ```text
//! d(z, Target) ≤ ⅓ · d(Target, CurrentObject)   or   d(Target, CurrentObject) ≤ d_min
//! ```
//!
//! after which the remaining work (inserting the fictive object `z`, then the
//! target, and reading the owner off the local Voronoi diagram) is purely
//! local to the current object and its neighbourhood.  Lemma 4 of the paper
//! proves the stop condition makes that local resolution correct; Lemma 5
//! bounds the number of forwarding steps by `O(log² N_max)`.
//!
//! This module reproduces that exact loop — each forwarding step is a
//! `Spawn(Route, …)` message scheduled on an [`EventQueue`] — so the
//! stop-condition behaviour, the hop counts and the lemmas themselves can be
//! tested directly against the plain greedy walk.

use crate::object::ObjectId;
use crate::overlay::{OverlayError, VoroNet};
use voronet_geom::{distance_to_region, Point2};
use voronet_sim::{EventQueue, SimTime};

/// Why the Algorithm 5 forwarding loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `d(z, Target) ≤ ⅓ · d(Target, CurrentObject)`: the target is close to
    /// the current object's region boundary (Lemma 4 applies).
    RegionCondition,
    /// `d(Target, CurrentObject) ≤ d_min`: the target is within the close
    /// neighbourhood radius.
    CloseCondition,
    /// No routing neighbour improves the distance (the current object owns
    /// the target's region outright).
    LocalMinimum,
}

/// Outcome of an Algorithm 5 route.
#[derive(Debug, Clone)]
pub struct Algorithm5Report {
    /// Object at which the forwarding loop stopped.
    pub stopped_at: ObjectId,
    /// Why it stopped.
    pub stop_reason: StopReason,
    /// Forwarding steps (`Spawn(Route, …)` messages) taken before stopping.
    pub forwarding_hops: u32,
    /// Additional purely local steps needed to resolve the actual owner of
    /// the target from the stopping object (the fictive-object insertion of
    /// the paper resolves these without further routing).
    pub local_steps: u32,
    /// The owner of the target's region.
    pub owner: ObjectId,
    /// Logical completion time on the event queue (one unit per forwarding
    /// hop).
    pub completion_time: SimTime,
}

/// Runs the Algorithm 5 forwarding loop from `start` towards `target`,
/// driving one event per forwarding step through a fresh [`EventQueue`].
pub fn algorithm5_route(
    net: &VoroNet,
    start: ObjectId,
    target: Point2,
) -> Result<Algorithm5Report, OverlayError> {
    if !net.contains(start) {
        return Err(OverlayError::UnknownObject(start));
    }
    let dmin = net.dmin();

    struct Step {
        at: ObjectId,
    }

    let mut queue: EventQueue<Step> = EventQueue::new();
    queue.schedule(0, Step { at: start });

    let mut forwarding_hops = 0u32;
    let mut stopped_at = start;
    let mut stop_reason = StopReason::LocalMinimum;

    while let Some((_, step)) = queue.pop() {
        let cur = step.at;
        let cur_coords = net.coords(cur).expect("routed objects are live");
        let d_cur = cur_coords.distance(target);

        // DistanceToRegion(Target) at the current object.
        let vertex = net.vertex_of(cur).expect("live object has a vertex");
        let z = distance_to_region(net.triangulation(), vertex, target);
        let d_z = z.distance(target);

        if d_cur <= dmin {
            stopped_at = cur;
            stop_reason = StopReason::CloseCondition;
            break;
        }
        if d_z <= d_cur / 3.0 {
            stopped_at = cur;
            stop_reason = StopReason::RegionCondition;
            break;
        }

        // Greedyneighbour(Target): forward to the routing neighbour closest
        // to the target, iterating the borrowed view (no per-hop
        // allocation).
        let mut best = cur;
        let mut best_d = d_cur;
        for n in net.view_ref(cur)?.routing_neighbours() {
            if n == cur {
                continue;
            }
            let d = net.coords(n).expect("neighbours are live").distance(target);
            if d < best_d {
                best = n;
                best_d = d;
            }
        }
        if best == cur {
            stopped_at = cur;
            stop_reason = StopReason::LocalMinimum;
            break;
        }
        forwarding_hops += 1;
        queue.schedule(1, Step { at: best });
    }

    // Local resolution: from the stopping object, the owner of the target is
    // reached by walking the Delaunay graph (in the paper this is subsumed by
    // the AddVoronoiRegion calls at the stopping object and costs O(1)
    // messages to its neighbourhood).
    let (owner, local_steps) = resolve_owner_locally(net, stopped_at, target)?;

    Ok(Algorithm5Report {
        stopped_at,
        stop_reason,
        forwarding_hops,
        local_steps,
        owner,
        completion_time: queue.now(),
    })
}

fn resolve_owner_locally(
    net: &VoroNet,
    from: ObjectId,
    target: Point2,
) -> Result<(ObjectId, u32), OverlayError> {
    let mut cur = from;
    let mut cur_d = net
        .coords(cur)
        .ok_or(OverlayError::UnknownObject(cur))?
        .distance2(target);
    let mut steps = 0u32;
    loop {
        let mut best = cur;
        let mut best_d = cur_d;
        for n in net.view_ref(cur)?.voronoi_neighbours() {
            let d = net
                .coords(n)
                .expect("neighbours are live")
                .distance2(target);
            if d < best_d {
                best = n;
                best_d = d;
            }
        }
        if best == cur {
            return Ok((cur, steps));
        }
        cur = best;
        cur_d = best_d;
        steps += 1;
    }
}

/// Executable check of Lemma 4: when the forwarding loop stops because of
/// the region condition, the point `z = DistanceToRegion(Target)` of the
/// stopping object is at least as close to the target as every object, i.e.
/// `d(s, Target) ≥ d(z, Target)` for all objects `s` — which is exactly what
/// makes inserting the target from `z` (whose region then contains it)
/// correct.  Returns the number of objects violating the inequality
/// (0 when the lemma holds).
///
/// Note on the paper: the proof of Lemma 4 as printed concludes
/// `d(s, Target) ≥ 2·d(z, Target)`, but one of its intermediate steps uses
/// `d(CurrentObject, z) ≥ 3·d(z, Target)` where only a factor 2 follows from
/// the stop condition via the triangle inequality; the factor-2 conclusion
/// is therefore not implied (and is empirically false), while the factor-1
/// form checked here — which is all the correctness argument needs — holds.
/// EXPERIMENTS.md records this discrepancy.
pub fn lemma4_violations(net: &VoroNet, stopped_at: ObjectId, target: Point2) -> usize {
    let Some(vertex) = net.vertex_of(stopped_at) else {
        return 0;
    };
    let z = distance_to_region(net.triangulation(), vertex, target);
    let d_z = z.distance(target);
    let d_cur = net
        .coords(stopped_at)
        .map(|c| c.distance(target))
        .unwrap_or(f64::INFINITY);
    if d_z > d_cur / 3.0 {
        // The region condition did not hold here; the lemma says nothing.
        return 0;
    }
    net.ids()
        .filter(|&s| s != stopped_at)
        .filter(|&s| {
            let d_s = net.coords(s).expect("live").distance(target);
            d_s + 1e-9 < d_z
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VoroNetConfig;
    use crate::experiments::build_overlay;
    use voronet_workloads::{Distribution, QueryGenerator};

    fn build(n: usize, seed: u64) -> (VoroNet, Vec<ObjectId>) {
        let cfg = VoroNetConfig::new(n).with_seed(seed);
        build_overlay(Distribution::Uniform, n, cfg)
    }

    #[test]
    fn algorithm5_resolves_the_true_owner() {
        let (net, ids) = build(400, 3);
        let mut qg = QueryGenerator::new(5);
        for _ in 0..200 {
            let target = qg.point();
            let from = ids[qg.object_index(ids.len())];
            let expected = net.owner_of(target).unwrap();
            let report = algorithm5_route(&net, from, target).unwrap();
            assert_eq!(report.owner, expected);
            assert_eq!(report.completion_time, report.forwarding_hops as u64);
        }
    }

    #[test]
    fn algorithm5_stops_no_later_than_plain_greedy() {
        // The stop condition can only cut the forwarding phase short: its
        // hop count never exceeds the plain greedy walk that runs all the
        // way to the owner.
        let (mut net, ids) = build(500, 7);
        let mut qg = QueryGenerator::new(9);
        for _ in 0..100 {
            let target = qg.point();
            let from = ids[qg.object_index(ids.len())];
            let alg5 = algorithm5_route(&net, from, target).unwrap();
            let greedy = net.route_to_point(from, target).unwrap();
            assert!(
                alg5.forwarding_hops <= greedy.hops,
                "algorithm 5 forwarded {} times, plain greedy only {}",
                alg5.forwarding_hops,
                greedy.hops
            );
        }
    }

    #[test]
    fn lemma4_holds_at_every_stop() {
        let (net, ids) = build(300, 11);
        let mut qg = QueryGenerator::new(13);
        for _ in 0..200 {
            let target = qg.point();
            let from = ids[qg.object_index(ids.len())];
            let report = algorithm5_route(&net, from, target).unwrap();
            if report.stop_reason == StopReason::RegionCondition {
                assert_eq!(
                    lemma4_violations(&net, report.stopped_at, target),
                    0,
                    "Lemma 4 violated at {}",
                    report.stopped_at
                );
            }
        }
    }

    #[test]
    fn local_resolution_is_short() {
        // After the stop condition fires, the owner is at most a couple of
        // Delaunay hops away (the paper resolves it with O(1) local
        // messages).
        let (net, ids) = build(600, 17);
        let mut qg = QueryGenerator::new(19);
        let mut max_local = 0;
        for _ in 0..200 {
            let target = qg.point();
            let from = ids[qg.object_index(ids.len())];
            let report = algorithm5_route(&net, from, target).unwrap();
            max_local = max_local.max(report.local_steps);
        }
        assert!(
            max_local <= 4,
            "local resolution took {max_local} Delaunay hops, expected O(1)"
        );
    }

    #[test]
    fn unknown_start_is_rejected() {
        let (net, _) = build(20, 23);
        assert!(algorithm5_route(&net, ObjectId(9_999), Point2::new(0.5, 0.5)).is_err());
    }

    #[test]
    fn forwarding_hops_stay_polylogarithmic() {
        let (net, ids) = build(900, 29);
        let mut qg = QueryGenerator::new(31);
        let mut total = 0u64;
        let trials = 150;
        for _ in 0..trials {
            let target = qg.point();
            let from = ids[qg.object_index(ids.len())];
            total += algorithm5_route(&net, from, target)
                .unwrap()
                .forwarding_hops as u64;
        }
        let mean = total as f64 / trials as f64;
        // ln(900)^2 ≈ 46; the constant is small in practice.
        assert!(
            mean < 46.0,
            "mean forwarding hops {mean} too large for n=900"
        );
    }
}
