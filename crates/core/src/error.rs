//! The unified error taxonomy of the overlay API.
//!
//! Historically each operation family had its own error type:
//! [`JoinError`] for insertions, [`OverlayError`] for everything that
//! references an existing object, and `String` for invariant checks.  The
//! backend-agnostic `Overlay` trait (crate `voronet-api`) needs one taxonomy
//! covering every engine (including failure modes only the message-driven
//! runtime has, such as an operation lost to the network), so this module
//! defines [`VoronetError`] — a machine-matchable [`ErrorKind`] plus an
//! optional human-readable context string — and `From` conversions from the
//! legacy types, which remain in place so existing call sites keep
//! compiling.

use crate::object::ObjectId;
use crate::overlay::{JoinError, OverlayError};

/// Machine-matchable classification of an overlay failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The referenced object is not (or no longer) part of the overlay.
    UnknownObject(ObjectId),
    /// An object already occupies exactly the requested position.
    DuplicatePosition(ObjectId),
    /// The position lies outside the overlay's attribute domain.
    OutsideDomain,
    /// The position has a non-finite coordinate.
    NotFinite,
    /// The named bootstrap object does not exist.
    UnknownBootstrap(ObjectId),
    /// A message-driven operation never completed: its protocol messages
    /// were lost to the network (loss, partition, dead letters).
    OperationLost,
    /// A structural invariant of the overlay does not hold (the context
    /// carries the diagnostic).
    InvariantViolation,
    /// The engine does not implement the requested operation family
    /// (e.g. a service op applied to a bare engine without the service
    /// layer wrapped around it).
    Unsupported,
    /// The component that must serve this operation is unreachable: its
    /// host is suspected or declared dead and the retry budget is
    /// exhausted, so the operation fails fast instead of blocking.
    Unavailable,
    /// The operation completed, but through a degraded path (e.g. a KV
    /// read served by a replica because the owner is unreachable) and the
    /// result carries weaker guarantees than the healthy-path answer.
    Degraded,
}

/// The single error type of the overlay API: what went wrong
/// ([`ErrorKind`]) plus optional free-form context for diagnostics.
///
/// Constructed either directly or via `From` conversions from the legacy
/// per-family error types ([`JoinError`], [`OverlayError`]), which both map
/// losslessly onto [`ErrorKind`] variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoronetError {
    kind: ErrorKind,
    context: Option<String>,
}

impl VoronetError {
    /// Creates an error with no context.
    pub fn new(kind: ErrorKind) -> Self {
        VoronetError {
            kind,
            context: None,
        }
    }

    /// Creates an error carrying a context string.
    pub fn with_context(kind: ErrorKind, context: impl Into<String>) -> Self {
        VoronetError {
            kind,
            context: Some(context.into()),
        }
    }

    /// An [`ErrorKind::InvariantViolation`] carrying its diagnostic.
    pub fn invariant(detail: impl Into<String>) -> Self {
        VoronetError::with_context(ErrorKind::InvariantViolation, detail)
    }

    /// The failure classification.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// The context string, when one was attached.
    pub fn context(&self) -> Option<&str> {
        self.context.as_deref()
    }

    /// Returns `self` with `context` attached (replacing any existing one).
    pub fn context_str(mut self, context: impl Into<String>) -> Self {
        self.context = Some(context.into());
        self
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorKind::UnknownObject(o) => write!(f, "object {o} is not in the overlay"),
            ErrorKind::DuplicatePosition(o) => {
                write!(f, "an object ({o}) already occupies this position")
            }
            ErrorKind::OutsideDomain => write!(f, "position outside the attribute domain"),
            ErrorKind::NotFinite => write!(f, "position has a non-finite coordinate"),
            ErrorKind::UnknownBootstrap(o) => write!(f, "bootstrap object {o} is unknown"),
            ErrorKind::OperationLost => {
                write!(
                    f,
                    "the operation's protocol messages were lost in the network"
                )
            }
            ErrorKind::InvariantViolation => write!(f, "overlay invariant violated"),
            ErrorKind::Unsupported => {
                write!(f, "the engine does not support this operation")
            }
            ErrorKind::Unavailable => {
                write!(f, "the serving host is unavailable (suspected or dead)")
            }
            ErrorKind::Degraded => {
                write!(f, "served through a degraded path with weaker guarantees")
            }
        }
    }
}

impl std::fmt::Display for VoronetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.context {
            Some(ctx) => write!(f, "{}: {ctx}", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

impl std::error::Error for VoronetError {}

impl From<OverlayError> for VoronetError {
    fn from(e: OverlayError) -> Self {
        match e {
            OverlayError::UnknownObject(o) => VoronetError::new(ErrorKind::UnknownObject(o)),
        }
    }
}

impl From<JoinError> for VoronetError {
    fn from(e: JoinError) -> Self {
        match e {
            JoinError::DuplicatePosition(o) => VoronetError::new(ErrorKind::DuplicatePosition(o)),
            JoinError::OutsideDomain => VoronetError::new(ErrorKind::OutsideDomain),
            JoinError::NotFinite => VoronetError::new(ErrorKind::NotFinite),
            JoinError::UnknownBootstrap(o) => VoronetError::new(ErrorKind::UnknownBootstrap(o)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_errors_convert_losslessly() {
        let e: VoronetError = OverlayError::UnknownObject(ObjectId(4)).into();
        assert_eq!(e.kind(), &ErrorKind::UnknownObject(ObjectId(4)));
        assert!(e.context().is_none());

        let e: VoronetError = JoinError::DuplicatePosition(ObjectId(7)).into();
        assert_eq!(e.kind(), &ErrorKind::DuplicatePosition(ObjectId(7)));
        let e: VoronetError = JoinError::OutsideDomain.into();
        assert_eq!(e.kind(), &ErrorKind::OutsideDomain);
        let e: VoronetError = JoinError::NotFinite.into();
        assert_eq!(e.kind(), &ErrorKind::NotFinite);
        let e: VoronetError = JoinError::UnknownBootstrap(ObjectId(9)).into();
        assert_eq!(e.kind(), &ErrorKind::UnknownBootstrap(ObjectId(9)));
    }

    #[test]
    fn display_includes_context() {
        let e = VoronetError::invariant("close relation o1 ↔ o2 is not symmetric");
        assert_eq!(e.kind(), &ErrorKind::InvariantViolation);
        let text = e.to_string();
        assert!(text.contains("invariant violated"));
        assert!(text.contains("not symmetric"));
        let bare = VoronetError::new(ErrorKind::OutsideDomain);
        assert_eq!(bare.to_string(), "position outside the attribute domain");
    }

    #[test]
    fn fault_taxonomy_variants_render() {
        let e = VoronetError::with_context(ErrorKind::Unavailable, "host 3 dead");
        assert!(e.to_string().contains("unavailable"));
        assert!(e.to_string().contains("host 3 dead"));
        let e = VoronetError::new(ErrorKind::Degraded);
        assert!(e.to_string().contains("degraded"));
    }

    #[test]
    fn question_mark_conversion_compiles() {
        fn inner(fail: bool) -> Result<(), VoronetError> {
            if fail {
                Err(OverlayError::UnknownObject(ObjectId(1)))?;
            }
            Ok(())
        }
        assert!(inner(false).is_ok());
        assert!(matches!(
            inner(true).unwrap_err().kind(),
            ErrorKind::UnknownObject(_)
        ));
    }
}
