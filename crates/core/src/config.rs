//! Overlay configuration.

use serde::{Deserialize, Serialize};
use voronet_geom::Rect;

/// Configuration of a VoroNet overlay.
///
/// The only mandatory parameter of the paper's protocol is `N_max`, the
/// maximum number of objects for which poly-logarithmic routing is
/// guaranteed: it fixes the close-neighbour radius `d_min` and the support
/// of the long-link length distribution (Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoroNetConfig {
    /// Maximum number of objects the overlay is provisioned for (`N_max`).
    pub nmax: usize,
    /// Number of long-range links per object (the paper uses 1 by default
    /// and sweeps 1..=10 in Figure 8).
    pub long_links: usize,
    /// Attribute-space domain (the unit square in the paper).
    pub domain: Rect,
    /// Seed for every stochastic choice made by the overlay (long-link
    /// targets, bootstrap objects); two overlays built with the same seed
    /// and the same operation sequence are identical.
    pub seed: u64,
    /// How `d_min` is derived from `N_max` (see [`DminRule`]).
    pub dmin_rule: DminRule,
}

/// Choice of the close-neighbour radius `d_min`.
///
/// The paper defines `d_min = 1/(π·N_max)` (Section 4.1) but then argues the
/// expected close-neighbour count with `π·d_min²·N_max`, which would require
/// `d_min = 1/√(π·N_max)`.  Both readings are implemented.  The literal value
/// is the default: it keeps `|cn(o)|` bounded even under the extreme
/// attribute skew of the α = 5 workload (where the square-root variant makes
/// every object in the dense corner a close neighbour of every other,
/// i.e. Θ(N²) state), and the overlay's correctness never depends on `d_min`
/// being large — greedy routing terminates through the Voronoi links alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DminRule {
    /// `d_min = 1 / (π · N_max)` — the value as printed in the paper
    /// (Section 4.1).  Default.
    PaperLiteral,
    /// `d_min = 1 / sqrt(π · N_max)` — the value the paper's expected-count
    /// computation (`π·d_min²·N_max = 1`) implicitly uses.  Gives ≈1 close
    /// neighbour under a uniform distribution but grows quadratically under
    /// heavy skew; exposed for the ablation discussed in DESIGN.md.
    Analysis,
}

impl VoroNetConfig {
    /// Creates a configuration over the unit square with one long link and
    /// the paper's `d_min = 1/(π·N_max)` rule.
    pub fn new(nmax: usize) -> Self {
        VoroNetConfig {
            nmax: nmax.max(1),
            long_links: 1,
            domain: Rect::UNIT,
            seed: 0xC0FFEE,
            dmin_rule: DminRule::PaperLiteral,
        }
    }

    /// Sets the number of long-range links per object.
    pub fn with_long_links(mut self, k: usize) -> Self {
        self.long_links = k;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the `d_min` derivation rule.
    pub fn with_dmin_rule(mut self, rule: DminRule) -> Self {
        self.dmin_rule = rule;
        self
    }

    /// The close-neighbour radius `d_min` for this configuration.
    pub fn dmin(&self) -> f64 {
        let n = self.nmax.max(1) as f64;
        match self.dmin_rule {
            DminRule::Analysis => 1.0 / (std::f64::consts::PI * n).sqrt(),
            DminRule::PaperLiteral => 1.0 / (std::f64::consts::PI * n),
        }
    }

    /// Upper bound of the long-link radius distribution: the domain
    /// diagonal (√2 for the unit square, as in Algorithm 3).
    pub fn max_link_radius(&self) -> f64 {
        self.domain.diagonal()
    }
}

impl Default for VoroNetConfig {
    fn default() -> Self {
        VoroNetConfig::new(300_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmin_analysis_rule_matches_unit_density() {
        let cfg = VoroNetConfig::new(10_000).with_dmin_rule(DminRule::Analysis);
        let d = cfg.dmin();
        // Expected number of neighbours in a disk of radius d_min at density
        // N_max per unit square is π d² N_max = 1.
        let expected = std::f64::consts::PI * d * d * 10_000.0;
        assert!((expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dmin_default_is_the_paper_literal_value() {
        let cfg = VoroNetConfig::new(10_000);
        assert_eq!(cfg.dmin_rule, DminRule::PaperLiteral);
        assert!((cfg.dmin() - 1.0 / (std::f64::consts::PI * 10_000.0)).abs() < 1e-18);
        let analysis = cfg.with_dmin_rule(DminRule::Analysis);
        assert!(cfg.dmin() < analysis.dmin() / 10.0);
    }

    #[test]
    fn builder_methods() {
        let cfg = VoroNetConfig::new(500).with_long_links(6).with_seed(9);
        assert_eq!(cfg.nmax, 500);
        assert_eq!(cfg.long_links, 6);
        assert_eq!(cfg.seed, 9);
        assert!((cfg.max_link_radius() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_nmax_is_clamped() {
        let cfg = VoroNetConfig::new(0);
        assert_eq!(cfg.nmax, 1);
        assert!(cfg.dmin().is_finite());
    }

    #[test]
    fn default_matches_paper_scale() {
        let cfg = VoroNetConfig::default();
        assert_eq!(cfg.nmax, 300_000);
        assert_eq!(cfg.long_links, 1);
    }
}
