//! Dynamic re-provisioning of `N_max` (the paper's second "perspective").
//!
//! VoroNet's routing bound and close-neighbour radius are expressed in terms
//! of `N_max`, the maximum number of objects the overlay was provisioned
//! for.  The paper sketches how to lift this static limit: a background
//! process estimates the current population and, when a threshold is
//! reached, increases `N_max` by a constant factor; objects then refresh
//! their long-range links for the new `d_min` — either all of them
//! (expensive during bootstrap) or only those whose close neighbourhood has
//! become too dense.
//!
//! This module implements both strategies on top of
//! [`VoroNet::set_nmax`], [`VoroNet::prune_close_neighbours`] and
//! [`VoroNet::refresh_long_links`].  The population "estimator" is the exact
//! object count — a gossip-based estimator would plug in at the same place
//! and only changes *when* adaptation triggers, not what it does.

use crate::object::ObjectId;
use crate::overlay::{OverlayError, VoroNet};

/// Which objects refresh their long-range links after `N_max` grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshStrategy {
    /// Every object redraws its long links (the paper's first, heavyweight
    /// option).
    Full,
    /// Only objects whose close neighbourhood exceeds the given size redraw
    /// their links (the paper's refined option: "update only the objects
    /// whose neighbourhood is too dense").
    DenseOnly {
        /// Close-neighbourhood size above which an object refreshes.
        max_close_neighbours: usize,
    },
}

/// Policy driving [`adapt_nmax`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptationPolicy {
    /// Population fraction of `N_max` at which adaptation triggers
    /// (the paper suggests "a threshold"; 1.0 means "when full").
    pub trigger_fraction: f64,
    /// Multiplicative head-room added to `N_max` when adapting.
    pub growth_factor: usize,
    /// Who refreshes their long links afterwards.
    pub strategy: RefreshStrategy,
}

impl Default for AdaptationPolicy {
    fn default() -> Self {
        AdaptationPolicy {
            trigger_fraction: 1.0,
            growth_factor: 4,
            strategy: RefreshStrategy::DenseOnly {
                max_close_neighbours: 8,
            },
        }
    }
}

/// Outcome of one adaptation round.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationReport {
    /// `N_max` before adaptation.
    pub old_nmax: usize,
    /// `N_max` after adaptation.
    pub new_nmax: usize,
    /// Close-neighbour pairs dropped by the `d_min` shrink.
    pub pruned_pairs: usize,
    /// Objects that redrew their long-range links.
    pub refreshed_objects: usize,
    /// Routing hops spent re-establishing links.
    pub refresh_hops: u64,
}

/// Current population estimate used to decide whether to adapt.  Stands in
/// for the paper's background estimation process.
pub fn estimate_population(net: &VoroNet) -> usize {
    net.len()
}

/// Returns `true` when the policy says the overlay should be re-provisioned.
pub fn needs_adaptation(net: &VoroNet, policy: &AdaptationPolicy) -> bool {
    let nmax = net.config().nmax as f64;
    estimate_population(net) as f64 >= policy.trigger_fraction * nmax
}

/// Performs one adaptation round if the policy triggers: grows `N_max`,
/// prunes close neighbourhoods to the new `d_min` and refreshes long-range
/// links according to the strategy.  Returns `None` when no adaptation was
/// needed.
pub fn adapt_nmax(
    net: &mut VoroNet,
    policy: &AdaptationPolicy,
) -> Result<Option<AdaptationReport>, OverlayError> {
    if !needs_adaptation(net, policy) {
        return Ok(None);
    }
    let old_nmax = net.config().nmax;
    let new_nmax = old_nmax.saturating_mul(policy.growth_factor.max(2));
    net.set_nmax(new_nmax);
    let pruned_pairs = net.prune_close_neighbours();

    let to_refresh: Vec<ObjectId> = match policy.strategy {
        RefreshStrategy::Full => net.ids().collect(),
        RefreshStrategy::DenseOnly {
            max_close_neighbours,
        } => net
            .ids()
            .collect::<Vec<_>>()
            .into_iter()
            .filter(|&id| {
                net.close_neighbours(id)
                    .map(|c| c.len() > max_close_neighbours)
                    .unwrap_or(false)
            })
            .collect(),
    };
    let mut refresh_hops = 0u64;
    for &id in &to_refresh {
        refresh_hops += net.refresh_long_links(id)? as u64;
    }
    Ok(Some(AdaptationReport {
        old_nmax,
        new_nmax,
        pruned_pairs,
        refreshed_objects: to_refresh.len(),
        refresh_hops,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DminRule, VoroNetConfig};
    use crate::experiments::build_overlay;
    use voronet_workloads::Distribution;

    #[test]
    fn no_adaptation_below_threshold() {
        let cfg = VoroNetConfig::new(1_000).with_seed(1);
        let (mut net, _) = build_overlay(Distribution::Uniform, 100, cfg);
        let report = adapt_nmax(&mut net, &AdaptationPolicy::default()).unwrap();
        assert!(report.is_none());
        assert_eq!(net.config().nmax, 1_000);
    }

    #[test]
    fn adaptation_grows_nmax_and_keeps_invariants() {
        // Deliberately under-provision: 300 objects in an overlay sized for
        // 60, with the large (analysis) d_min so that close sets are fat and
        // pruning actually has work to do.
        let cfg = VoroNetConfig::new(60)
            .with_seed(3)
            .with_dmin_rule(DminRule::Analysis);
        let (mut net, ids) = build_overlay(Distribution::Uniform, 300, cfg);
        let fat_close: usize = ids
            .iter()
            .map(|&id| net.close_neighbours(id).unwrap().len())
            .sum();
        assert!(
            fat_close > 0,
            "under-provisioned overlay should have close pairs"
        );

        let policy = AdaptationPolicy {
            trigger_fraction: 1.0,
            growth_factor: 8,
            strategy: RefreshStrategy::Full,
        };
        assert!(needs_adaptation(&net, &policy));
        let report = adapt_nmax(&mut net, &policy).unwrap().unwrap();
        assert_eq!(report.old_nmax, 60);
        assert_eq!(report.new_nmax, 480);
        assert_eq!(report.refreshed_objects, 300);
        assert_eq!(net.config().nmax, 480);

        // After adaptation every invariant (close sets exact for the *new*
        // d_min, long links owned, back links mirrored) must hold.
        net.check_invariants(true).unwrap();

        let thin_close: usize = ids
            .iter()
            .map(|&id| net.close_neighbours(id).unwrap().len())
            .sum();
        assert!(
            thin_close <= fat_close,
            "pruning must not grow close sets ({fat_close} -> {thin_close})"
        );
    }

    #[test]
    fn dense_only_strategy_refreshes_fewer_objects() {
        let cfg = VoroNetConfig::new(100)
            .with_seed(5)
            .with_dmin_rule(DminRule::Analysis);
        let (mut net_full, _) = build_overlay(Distribution::Uniform, 200, cfg);
        let (mut net_dense, _) = build_overlay(Distribution::Uniform, 200, cfg);

        let full = adapt_nmax(
            &mut net_full,
            &AdaptationPolicy {
                strategy: RefreshStrategy::Full,
                ..AdaptationPolicy::default()
            },
        )
        .unwrap()
        .unwrap();
        let dense = adapt_nmax(
            &mut net_dense,
            &AdaptationPolicy {
                strategy: RefreshStrategy::DenseOnly {
                    max_close_neighbours: 2,
                },
                ..AdaptationPolicy::default()
            },
        )
        .unwrap()
        .unwrap();
        assert_eq!(full.refreshed_objects, 200);
        assert!(dense.refreshed_objects < full.refreshed_objects);
        net_full.check_invariants(true).unwrap();
        net_dense.check_invariants(true).unwrap();
    }

    #[test]
    fn routing_still_exact_after_adaptation() {
        let cfg = VoroNetConfig::new(80).with_seed(7);
        let (mut net, ids) = build_overlay(Distribution::PowerLaw { alpha: 2.0 }, 250, cfg);
        adapt_nmax(&mut net, &AdaptationPolicy::default())
            .unwrap()
            .unwrap();
        let mut qg = voronet_workloads::QueryGenerator::new(9);
        for _ in 0..100 {
            let target = qg.point();
            let from = ids[qg.object_index(ids.len())];
            let expected = net.owner_of(target).unwrap();
            assert_eq!(net.route_to_point(from, target).unwrap().owner, expected);
        }
    }

    #[test]
    fn repeated_adaptation_is_idempotent_once_provisioned() {
        let cfg = VoroNetConfig::new(50).with_seed(11);
        let (mut net, _) = build_overlay(Distribution::Uniform, 120, cfg);
        let first = adapt_nmax(&mut net, &AdaptationPolicy::default()).unwrap();
        assert!(first.is_some());
        // 120 objects, nmax now 200: no further adaptation needed.
        let second = adapt_nmax(&mut net, &AdaptationPolicy::default()).unwrap();
        assert!(second.is_none());
    }
}
