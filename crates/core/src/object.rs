//! Object identifiers, per-object protocol state and view descriptions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use voronet_geom::{Point2, Triangulation, VertexId};

/// Stable application-level identifier of a published object.
///
/// Unlike triangulation vertex ids, object ids are never reused, so they can
/// safely be held across joins and departures (e.g. inside back-long-range
/// pointers or application state).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of a long-range link of an object (an object owns
/// `config.long_links` of them, indexed from 0).
pub type LinkIndex = usize;

/// One long-range link: the fixed target point chosen by `Choose-LRT` and
/// the object currently responsible for that point (`LRn`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongLink {
    /// The target point drawn by Algorithm 3 (may lie outside the domain).
    pub target: Point2,
    /// The object currently owning the target's Voronoi region.
    pub neighbour: ObjectId,
}

/// A back-long-range entry stored at the link's *target-side* object: who
/// points at us, through which of their links, and at which target point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackLink {
    /// The object holding the forward long-range link.
    pub source: ObjectId,
    /// Which of the source's long links this is.
    pub link: LinkIndex,
    /// The (immutable) target point of that link.
    pub target: Point2,
}

/// Borrowed, zero-copy view of an object's protocol state — the hot-path
/// counterpart of [`ObjectView`].
///
/// A `ViewRef` borrows straight out of the overlay's
/// [`crate::arena::NodeArena`] and the shared tessellation: the close
/// neighbours, long links and back links are references into the node's
/// slot, and the Voronoi neighbours are produced lazily by walking the
/// Delaunay fan.  Routing ([`crate::VoroNet::route_to_point`], the
/// Algorithm 5 loop) iterates a `ViewRef` and allocates nothing; build an
/// owned [`ObjectView`] (via [`ViewRef::to_view`]) only at a serialization
/// or runtime-message boundary.
#[derive(Debug, Clone, Copy)]
pub struct ViewRef<'a> {
    pub(crate) id: ObjectId,
    pub(crate) coords: Point2,
    pub(crate) vertex: VertexId,
    pub(crate) close: &'a BTreeSet<ObjectId>,
    pub(crate) long: &'a [LongLink],
    pub(crate) back_long: &'a [BackLink],
    pub(crate) tri: &'a Triangulation,
    pub(crate) vertex_obj: &'a [Option<ObjectId>],
}

impl<'a> ViewRef<'a> {
    /// The object described.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Its attribute coordinates.
    pub fn coords(&self) -> Point2 {
        self.coords
    }

    /// Voronoi neighbours `vn(o)`, derived lazily from the shared
    /// tessellation (no allocation).
    pub fn voronoi_neighbours(&self) -> impl Iterator<Item = ObjectId> + 'a {
        let vertex_obj = self.vertex_obj;
        self.tri
            .real_neighbors_iter(self.vertex)
            .filter_map(move |v| vertex_obj.get(v as usize).copied().flatten())
    }

    /// Close neighbours `cn(o)`.
    pub fn close_neighbours(&self) -> &'a BTreeSet<ObjectId> {
        self.close
    }

    /// Long-range links `LRn(o)`.
    pub fn long_links(&self) -> &'a [LongLink] {
        self.long
    }

    /// Back-long-range pointers `BLRn(o)`.
    pub fn back_long_links(&self) -> &'a [BackLink] {
        self.back_long
    }

    /// All neighbours usable for greedy routing: `vn ∪ cn ∪ LRn` (never
    /// `BLRn`), without allocation.  Unlike
    /// [`ObjectView::routing_neighbours`] the sequence is neither sorted nor
    /// deduplicated — greedy minimisation is insensitive to both.
    pub fn routing_neighbours(&self) -> impl Iterator<Item = ObjectId> + 'a {
        self.voronoi_neighbours()
            .chain(self.close.iter().copied())
            .chain(self.long.iter().map(|l| l.neighbour))
    }

    /// Total view size: the number of entries this object must store
    /// (the O(1) claim of Section 4.1).
    pub fn size(&self) -> usize {
        self.voronoi_neighbours().count()
            + self.close.len()
            + self.long.len()
            + self.back_long.len()
    }

    /// Materialises an owned [`ObjectView`] — the serialization / runtime
    /// message boundary.
    pub fn to_view(&self) -> ObjectView {
        ObjectView {
            id: self.id,
            coords: self.coords,
            voronoi_neighbours: self.voronoi_neighbours().collect(),
            close_neighbours: self.close.iter().copied().collect(),
            long_links: self.long.to_vec(),
            back_long_links: self.back_long.to_vec(),
        }
    }
}

/// Public, read-only description of an object's view — the data structure
/// the paper describes in Section 3.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectView {
    /// The object described.
    pub id: ObjectId,
    /// Its attribute coordinates.
    pub coords: Point2,
    /// Voronoi neighbours `vn(o)`.
    pub voronoi_neighbours: Vec<ObjectId>,
    /// Close neighbours `cn(o)` (objects within `d_min`).
    pub close_neighbours: Vec<ObjectId>,
    /// Long-range links (targets and current neighbours).
    pub long_links: Vec<LongLink>,
    /// Back-long-range pointers `BLRn(o)`.
    pub back_long_links: Vec<BackLink>,
}

impl ObjectView {
    /// Total view size: the number of entries this object must store
    /// (the O(1) claim of Section 4.1).
    pub fn size(&self) -> usize {
        self.voronoi_neighbours.len()
            + self.close_neighbours.len()
            + self.long_links.len()
            + self.back_long_links.len()
    }

    /// All neighbours usable for greedy routing: `vn ∪ cn ∪ LRn`
    /// (back-long-range pointers are explicitly *not* used for routing).
    pub fn routing_neighbours(&self) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self
            .voronoi_neighbours
            .iter()
            .chain(self.close_neighbours.iter())
            .copied()
            .collect();
        out.extend(self.long_links.iter().map(|l| l.neighbour));
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_display_and_ordering() {
        let a = ObjectId(3);
        let b = ObjectId(10);
        assert!(a < b);
        assert_eq!(a.to_string(), "o3");
    }

    #[test]
    fn view_size_and_routing_neighbours() {
        let view = ObjectView {
            id: ObjectId(1),
            coords: Point2::new(0.5, 0.5),
            voronoi_neighbours: vec![ObjectId(2), ObjectId(3)],
            close_neighbours: vec![ObjectId(3)],
            long_links: vec![LongLink {
                target: Point2::new(0.9, 0.9),
                neighbour: ObjectId(4),
            }],
            back_long_links: vec![BackLink {
                source: ObjectId(9),
                link: 0,
                target: Point2::new(0.5, 0.6),
            }],
        };
        assert_eq!(view.size(), 5);
        let routing = view.routing_neighbours();
        assert_eq!(routing, vec![ObjectId(2), ObjectId(3), ObjectId(4)]);
        assert!(
            !routing.contains(&ObjectId(9)),
            "back links must not be used for routing"
        );
    }
}
