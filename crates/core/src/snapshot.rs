//! Frozen, read-optimised snapshots of the routing state — the parallel
//! read path.
//!
//! The overlay's hot read operations (greedy routes, point queries, area
//! queries) never change routing state; the only side effect they have is
//! *message accounting*.  This module splits that accounting out so the
//! whole read path runs on `&self`:
//!
//! * [`TrafficDelta`] — the messages a read operation *would* send,
//!   recorded instead of applied.  A caller replays the delta onto the
//!   overlay afterwards ([`crate::VoroNet::apply_traffic`]) and ends up
//!   with bit-identical [`voronet_sim::TrafficStats`] and per-node sent
//!   counters.
//! * [`RouteScratch`] — the caller-owned buffers (path, delta, flood
//!   work-lists) every `_in`-suffixed read operation computes into, so a
//!   warmed-up scratch makes routes and point queries allocation-free.
//! * [`FrozenView`] — an immutable structure-of-arrays snapshot of the
//!   routing topology: coordinates in flat `xs`/`ys` arrays and the full
//!   routing adjacency (Voronoi + close + long neighbours) flattened into
//!   one CSR offset/index pair.  A greedy hop over a `FrozenView` is pure
//!   contiguous array reads — no hashing, no triangle-fan walking — and
//!   `FrozenView` is `Sync`, so one snapshot serves any number of threads.
//! * [`TrafficAccumulator`] — dense per-node aggregation of many
//!   [`TrafficDelta`]s, applied in one pass
//!   ([`crate::VoroNet::apply_accumulated_traffic`]) so batch executors do
//!   O(distinct senders) map updates instead of O(messages).
//!
//! A `FrozenView` is valid only for the overlay state it was built from:
//! any mutation (insert, remove, long-link refresh, `N_max` adaptation)
//! invalidates it, and callers must rebuild after every write barrier.
//! Routing over a `FrozenView` takes, hop for hop, exactly the decisions
//! of [`crate::VoroNet::route_to_point_into`]: the adjacency lists preserve
//! the live scan order (Voronoi fan order, then close neighbours, then
//! long links) and distances are compared with the same strict-`<` rule,
//! so owners, hop counts, paths and recorded messages are bit-identical.

use crate::arena::NodeArena;
use crate::object::ObjectId;
use crate::overlay::{OverlayError, VoroNet};
use voronet_geom::Point2;
use voronet_sim::{MessageKind, TrafficStats};

/// Every [`MessageKind`], in a fixed order used to index
/// [`TrafficAccumulator`]'s per-kind counters.
const KINDS: [MessageKind; 7] = [
    MessageKind::RouteForward,
    MessageKind::VoronoiUpdate,
    MessageKind::CloseNeighbourExchange,
    MessageKind::LongLink,
    MessageKind::Departure,
    MessageKind::QueryAnswer,
    MessageKind::Other,
];

fn kind_index(kind: MessageKind) -> usize {
    match kind {
        MessageKind::RouteForward => 0,
        MessageKind::VoronoiUpdate => 1,
        MessageKind::CloseNeighbourExchange => 2,
        MessageKind::LongLink => 3,
        MessageKind::Departure => 4,
        MessageKind::QueryAnswer => 5,
        MessageKind::Other => 6,
    }
}

/// The protocol messages a side-effect-free read operation would have
/// sent, in emission order.
///
/// Read operations (`route_to_point_in`, `handle_query_in`, the
/// `*_query_in` floods) append to the delta instead of touching the
/// overlay's counters; the caller replays it afterwards with
/// [`VoroNet::apply_traffic`].  Replaying produces exactly the counters
/// the pre-split `&mut self` operations produced inline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficDelta {
    events: Vec<(ObjectId, MessageKind)>,
}

impl TrafficDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `kind` sent by `from`.
    #[inline]
    pub fn push(&mut self, from: ObjectId, kind: MessageKind) {
        self.events.push((from, kind));
    }

    /// The recorded `(sender, kind)` events, in emission order.
    pub fn events(&self) -> &[(ObjectId, MessageKind)] {
        &self.events
    }

    /// Number of recorded messages.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Forgets all recorded events, keeping the buffer's capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Caller-owned working memory for the `&self` read path.
///
/// Holds the route path buffer, the pending [`TrafficDelta`] and the
/// work-lists of the area-query floods.  Reusing one scratch across calls
/// makes greedy routes and point queries allocation-free once the buffers
/// have warmed up (pinned by the counting-allocator test in
/// `tests/route_alloc.rs`).
///
/// The read operations **clear** `path` (it describes the last route) but
/// **append** to `delta`, so one scratch can accumulate the accounting of
/// a whole run of operations before a single
/// [`VoroNet::apply_traffic`] / [`VoroNet::apply_accumulated_traffic`]
/// call; clear the delta when the events have been applied.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    /// Objects traversed by the last route (source first, owner last).
    pub path: Vec<ObjectId>,
    /// Accounting of every read operation since the last clear.
    pub delta: TrafficDelta,
    pub(crate) visited: std::collections::HashSet<ObjectId>,
    pub(crate) frontier: Vec<ObjectId>,
    pub(crate) neighbours: Vec<ObjectId>,
}

impl RouteScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Immutable structure-of-arrays snapshot of the routing topology (see
/// the [module docs](self)).
///
/// Nodes are addressed by *dense index* — the overlay's dense sampling
/// order at freeze time — with O(1) translation from [`ObjectId`]s.
/// Coordinates live in flat `xs`/`ys` arrays and the complete greedy
/// neighbourhood of each node (Voronoi fan, close neighbours, long links,
/// in the live path's scan order) is one CSR slice of dense indices, so a
/// greedy hop reads two offset words and a handful of contiguous array
/// entries.
#[derive(Debug, Clone)]
pub struct FrozenView {
    /// Dense index → object id.
    ids: Vec<ObjectId>,
    /// Object id → dense index.
    id_to_dense: IdIndex,
    /// Dense index → x coordinate.
    xs: Vec<f64>,
    /// Dense index → y coordinate.
    ys: Vec<f64>,
    /// CSR offsets into `adj` (`len() + 1` entries).
    adj_off: Vec<u32>,
    /// Flattened routing adjacency, as dense indices.
    adj: Vec<u32>,
}

/// Object-id → dense-index translation.  Object ids are allocated
/// monotonically and never reused, so under sustained churn the raw id
/// range can grow far beyond the live population; a flat table indexed by
/// `id - min_live_id` is only used while that range stays within a small
/// factor of the population, with a hash map as the fallback so a freeze
/// never allocates more than O(population).
#[derive(Debug, Clone)]
enum IdIndex {
    /// `table[id.0 - base]` is the dense index (`u32::MAX` = dead).
    Flat { base: u64, table: Vec<u32> },
    /// Sparse fallback for id ranges much wider than the population.
    Map(std::collections::HashMap<ObjectId, u32>),
}

impl IdIndex {
    /// The id range may exceed the population by at most this factor
    /// before the flat table is abandoned for the hash map.
    const MAX_SPREAD: usize = 8;

    fn build(ids: &[ObjectId]) -> IdIndex {
        let Some(base) = ids.iter().map(|id| id.0).min() else {
            return IdIndex::Flat {
                base: 0,
                table: Vec::new(),
            };
        };
        let max = ids.iter().map(|id| id.0).max().expect("non-empty");
        let span = (max - base) as usize + 1;
        if span <= ids.len().saturating_mul(Self::MAX_SPREAD) + 64 {
            let mut table = vec![u32::MAX; span];
            for (dense, id) in ids.iter().enumerate() {
                table[(id.0 - base) as usize] = dense as u32;
            }
            IdIndex::Flat { base, table }
        } else {
            IdIndex::Map(
                ids.iter()
                    .enumerate()
                    .map(|(dense, &id)| (id, dense as u32))
                    .collect(),
            )
        }
    }

    #[inline]
    fn get(&self, id: ObjectId) -> Option<u32> {
        match self {
            IdIndex::Flat { base, table } => match id.0.checked_sub(*base) {
                Some(off) => match table.get(off as usize) {
                    Some(&d) if d != u32::MAX => Some(d),
                    _ => None,
                },
                None => None,
            },
            IdIndex::Map(map) => map.get(&id).copied(),
        }
    }
}

impl FrozenView {
    /// Freezes the routing state of `net`.  O(n + edges); the snapshot is
    /// immutable and `Sync`, and must be rebuilt after any overlay
    /// mutation.
    pub fn new(net: &VoroNet) -> Self {
        let n = net.len();
        let tri = net.triangulation();
        let arena = net.arena();
        let mut ids = Vec::with_capacity(n);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for id in net.ids() {
            let slot = arena.get(id).expect("dense order holds live nodes");
            ids.push(id);
            xs.push(slot.coords().x);
            ys.push(slot.coords().y);
        }
        let id_to_dense = IdIndex::build(&ids);

        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        adj_off.push(0u32);
        for &id in &ids {
            let slot = arena.get(id).expect("dense order holds live nodes");
            // Exactly the live walk's scan order: Voronoi fan first, then
            // close neighbours (BTreeSet order), then long links — with the
            // node itself skipped, as the live path's `n == cur` test does.
            for v in tri.real_neighbors_iter(slot.vertex()) {
                let o = net
                    .object_at_vertex(v)
                    .expect("real vertices always map to live objects");
                adj.push(id_to_dense.get(o).expect("neighbours are live"));
            }
            for n in slot
                .close()
                .iter()
                .copied()
                .chain(slot.long().iter().map(|l| l.neighbour))
            {
                if n != id {
                    adj.push(id_to_dense.get(n).expect("neighbours are live"));
                }
            }
            adj_off.push(adj.len() as u32);
        }
        FrozenView {
            ids,
            id_to_dense,
            xs,
            ys,
            adj_off,
            adj,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the snapshot holds no node.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dense index of an object (`None` for ids dead or unknown at freeze
    /// time).
    #[inline]
    pub fn dense_of(&self, id: ObjectId) -> Option<u32> {
        self.id_to_dense.get(id)
    }

    /// Object id at a dense index (`index < len()`).
    #[inline]
    pub fn id_at(&self, index: u32) -> ObjectId {
        self.ids[index as usize]
    }

    /// Coordinates of an object live at freeze time.
    pub fn coords_of(&self, id: ObjectId) -> Option<Point2> {
        let d = self.dense_of(id)? as usize;
        Some(Point2::new(self.xs[d], self.ys[d]))
    }

    /// The frozen routing neighbourhood of a dense index, as dense indices
    /// in scan order.
    pub fn neighbours_of(&self, index: u32) -> &[u32] {
        let s = self.adj_off[index as usize] as usize;
        let e = self.adj_off[index as usize + 1] as usize;
        &self.adj[s..e]
    }

    /// Greedy route from `from` towards `target` over the frozen topology
    /// — the decisions, path, hop count and recorded messages are
    /// bit-identical to [`VoroNet::route_to_point_in`] on the overlay the
    /// snapshot was frozen from.
    ///
    /// `scratch.path` is cleared and refilled; the accounting is appended
    /// to `scratch.delta`.  Allocation-free on warmed-up buffers.
    pub fn route_to_point_in(
        &self,
        from: ObjectId,
        target: Point2,
        scratch: &mut RouteScratch,
    ) -> Result<(ObjectId, u32), OverlayError> {
        scratch.path.clear();
        let Some(mut cur) = self.dense_of(from) else {
            return Err(OverlayError::UnknownObject(from));
        };
        scratch.path.push(from);
        let mut cur_d = Point2::new(self.xs[cur as usize], self.ys[cur as usize]).distance2(target);
        let mut hops = 0u32;
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for &nb in self.neighbours_of(cur) {
                let d = Point2::new(self.xs[nb as usize], self.ys[nb as usize]).distance2(target);
                if d < best_d {
                    best = nb;
                    best_d = d;
                }
            }
            if best == cur {
                break;
            }
            scratch
                .delta
                .push(self.ids[cur as usize], MessageKind::RouteForward);
            cur = best;
            cur_d = best_d;
            hops += 1;
            scratch.path.push(self.ids[cur as usize]);
        }
        Ok((self.ids[cur as usize], hops))
    }

    /// Greedy route between two objects live at freeze time; see
    /// [`FrozenView::route_to_point_in`].
    pub fn route_between_in(
        &self,
        from: ObjectId,
        to: ObjectId,
        scratch: &mut RouteScratch,
    ) -> Result<(ObjectId, u32), OverlayError> {
        let target = self.coords_of(to).ok_or(OverlayError::UnknownObject(to))?;
        let (owner, hops) = self.route_to_point_in(from, target, scratch)?;
        debug_assert_eq!(
            owner, to,
            "a route towards an existing object must terminate at that object"
        );
        Ok((owner, hops))
    }
}

/// Dense aggregation of many [`TrafficDelta`]s against one
/// [`FrozenView`], applied in a single pass with
/// [`VoroNet::apply_accumulated_traffic`].
///
/// Message accounting is two independent aggregations (per kind and per
/// sender — see [`TrafficStats::add_kind`] /
/// [`TrafficStats::add_sender`]), so the accumulator keeps a fixed
/// per-kind array plus a dense per-node count vector and applies
/// O(distinct senders) map updates instead of one map update per message.
/// Parallel batch executors give each worker its own accumulator and
/// merge them before applying.
#[derive(Debug, Clone)]
pub struct TrafficAccumulator {
    pub(crate) kind_counts: [u64; KINDS.len()],
    pub(crate) node_counts: Vec<u32>,
    pub(crate) touched: Vec<u32>,
}

impl TrafficAccumulator {
    /// Creates an accumulator sized for `view`.
    pub fn new(view: &FrozenView) -> Self {
        TrafficAccumulator {
            kind_counts: [0; KINDS.len()],
            node_counts: vec![0; view.len()],
            touched: Vec::new(),
        }
    }

    /// Folds a delta in.  Every sender must be a node of `view` (read
    /// operations only record live senders).
    pub fn absorb(&mut self, view: &FrozenView, delta: &TrafficDelta) {
        for &(id, kind) in delta.events() {
            self.kind_counts[kind_index(kind)] += 1;
            let dense = view
                .dense_of(id)
                .expect("read-path senders are live in the frozen view")
                as usize;
            if self.node_counts[dense] == 0 {
                self.touched.push(dense as u32);
            }
            self.node_counts[dense] += 1;
        }
    }

    /// Merges another accumulator (built against the same view) into this
    /// one.
    pub fn merge(&mut self, other: &TrafficAccumulator) {
        for (mine, theirs) in self.kind_counts.iter_mut().zip(other.kind_counts) {
            *mine += theirs;
        }
        for &dense in &other.touched {
            if self.node_counts[dense as usize] == 0 {
                self.touched.push(dense);
            }
            self.node_counts[dense as usize] += other.node_counts[dense as usize];
        }
    }

    /// Total messages accumulated.
    pub fn total(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    pub(crate) fn apply_to(
        &self,
        traffic: &mut TrafficStats,
        arena: &mut NodeArena,
        view: &FrozenView,
    ) {
        for (i, &n) in self.kind_counts.iter().enumerate() {
            traffic.add_kind(KINDS[i], n);
        }
        for &dense in &self.touched {
            let id = view.id_at(dense);
            let n = self.node_counts[dense as usize] as u64;
            traffic.add_sender(id.0, n);
            arena.bump_sent_by(id, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VoroNetConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn build(n: usize, seed: u64) -> (VoroNet, Vec<ObjectId>) {
        let mut net = VoroNet::new(VoroNetConfig::new(n).with_seed(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let mut ids = Vec::new();
        while ids.len() < n {
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            if let Ok(r) = net.insert(p) {
                ids.push(r.id);
            }
        }
        (net, ids)
    }

    #[test]
    fn frozen_view_is_sync_and_indexes_every_live_node() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<FrozenView>();
        assert_sync::<VoroNet>();

        let (net, ids) = build(200, 3);
        let view = FrozenView::new(&net);
        assert_eq!(view.len(), net.len());
        for &id in &ids {
            let dense = view.dense_of(id).expect("live node is indexed");
            assert_eq!(view.id_at(dense), id);
            assert_eq!(view.coords_of(id), net.coords(id));
            assert!(!view.neighbours_of(dense).is_empty());
        }
        assert_eq!(view.dense_of(ObjectId(u64::MAX)), None);
    }

    #[test]
    fn frozen_routes_match_the_live_walk_bit_for_bit() {
        let (mut net, ids) = build(400, 7);
        let view = FrozenView::new(&net);
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = RouteScratch::new();
        let mut live_path = Vec::new();
        for i in 0..300 {
            let from = ids[rng.random_range(0..ids.len())];
            let target = if i % 3 == 0 {
                net.coords(ids[rng.random_range(0..ids.len())]).unwrap()
            } else {
                Point2::new(rng.random::<f64>(), rng.random::<f64>())
            };
            scratch.delta.clear();
            let frozen = view.route_to_point_in(from, target, &mut scratch).unwrap();
            let events = scratch.delta.len();
            let live = net
                .route_to_point_into(from, target, &mut live_path)
                .unwrap();
            assert_eq!(frozen, live, "owner/hops must agree");
            assert_eq!(scratch.path, live_path, "paths must agree");
            assert_eq!(events as u32, frozen.1, "one RouteForward per hop");
        }
        // Unknown sources error identically.
        assert_eq!(
            view.route_to_point_in(ObjectId(u64::MAX), Point2::new(0.5, 0.5), &mut scratch),
            Err(OverlayError::UnknownObject(ObjectId(u64::MAX)))
        );
    }

    #[test]
    fn churned_overlays_freeze_in_bounded_memory_and_still_route_identically() {
        // Object ids are never reused, so sustained churn spreads the live
        // ids over a range far wider than the population; the id index must
        // fall back to the sparse map (never allocating O(max id)) and keep
        // routing bit-identical to the live walk.
        let (mut net, mut ids) = build(60, 23);
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..800 {
            // Keep the very first object alive to pin the id range open.
            let victim = 1 + rng.random_range(0..ids.len() - 1);
            net.remove(ids[victim]).unwrap();
            ids.swap_remove(victim);
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            if let Ok(r) = net.insert(p) {
                ids.push(r.id);
            }
        }
        let span = ids.iter().map(|i| i.0).max().unwrap() - ids.iter().map(|i| i.0).min().unwrap();
        assert!(
            span as usize > ids.len() * IdIndex::MAX_SPREAD + 64,
            "churn must spread the id range (span {span}, population {})",
            ids.len()
        );
        let view = FrozenView::new(&net);
        assert!(
            matches!(view.id_to_dense, IdIndex::Map(_)),
            "wide id ranges must use the sparse index"
        );
        let mut scratch = RouteScratch::new();
        let mut live_path = Vec::new();
        for i in 0..100 {
            let from = ids[(i * 7) % ids.len()];
            let to = ids[(i * 13 + 1) % ids.len()];
            let frozen = view.route_between_in(from, to, &mut scratch).unwrap();
            let target = net.coords(to).unwrap();
            let live = net
                .route_to_point_into(from, target, &mut live_path)
                .unwrap();
            assert_eq!(frozen, live);
            assert_eq!(scratch.path, live_path);
        }
        // An erroring route clears the stale path, like the live walk does.
        let _ = view.route_to_point_in(ObjectId(u64::MAX), Point2::new(0.1, 0.1), &mut scratch);
        assert!(
            scratch.path.is_empty(),
            "failed routes must not leave a stale path"
        );
    }

    #[test]
    fn deferred_deltas_replay_to_identical_traffic() {
        let (net, ids) = build(150, 11);
        let mut inline = net.clone();
        let mut deferred = net.clone();
        let mut rng = StdRng::seed_from_u64(13);
        let pairs: Vec<(ObjectId, ObjectId)> = (0..80)
            .map(|_| {
                (
                    ids[rng.random_range(0..ids.len())],
                    ids[rng.random_range(0..ids.len())],
                )
            })
            .collect();

        for &(a, b) in &pairs {
            let _ = inline.route_between(a, b).unwrap();
        }

        let mut scratch = RouteScratch::new();
        for &(a, b) in &pairs {
            deferred.route_between_in(a, b, &mut scratch).unwrap();
        }
        deferred.apply_traffic(&scratch.delta);

        assert_eq!(inline.traffic(), deferred.traffic());
        for &id in &ids {
            assert_eq!(inline.sent_by(id), deferred.sent_by(id));
        }
    }

    #[test]
    fn accumulated_application_matches_verbatim_replay() {
        let (net, ids) = build(150, 17);
        let view = FrozenView::new(&net);
        let mut verbatim = net.clone();
        let mut accumulated = net.clone();
        let mut rng = StdRng::seed_from_u64(19);

        let mut scratch_a = RouteScratch::new();
        let mut scratch_b = RouteScratch::new();
        let mut acc_a = TrafficAccumulator::new(&view);
        let mut acc_b = TrafficAccumulator::new(&view);
        for i in 0..120 {
            let from = ids[rng.random_range(0..ids.len())];
            let to = ids[rng.random_range(0..ids.len())];
            let (scratch, acc) = if i % 2 == 0 {
                (&mut scratch_a, &mut acc_a)
            } else {
                (&mut scratch_b, &mut acc_b)
            };
            scratch.delta.clear();
            view.route_between_in(from, to, scratch).unwrap();
            verbatim.apply_traffic(&scratch.delta);
            acc.absorb(&view, &scratch.delta);
        }
        acc_a.merge(&acc_b);
        accumulated.apply_accumulated_traffic(&view, &acc_a);

        assert_eq!(verbatim.traffic(), accumulated.traffic());
        assert_eq!(
            verbatim.traffic().total(),
            net.traffic().total() + acc_a.total()
        );
        for &id in &ids {
            assert_eq!(verbatim.sent_by(id), accumulated.sent_by(id));
        }
    }
}
