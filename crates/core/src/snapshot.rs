//! Frozen, read-optimised snapshots of the routing state — the parallel
//! read path.
//!
//! The overlay's hot read operations (greedy routes, point queries, area
//! queries) never change routing state; the only side effect they have is
//! *message accounting*.  This module splits that accounting out so the
//! whole read path runs on `&self`:
//!
//! * [`TrafficDelta`] — the messages a read operation *would* send,
//!   recorded instead of applied.  A caller replays the delta onto the
//!   overlay afterwards ([`crate::VoroNet::apply_traffic`]) and ends up
//!   with bit-identical [`voronet_sim::TrafficStats`] and per-node sent
//!   counters.
//! * [`RouteScratch`] — the caller-owned buffers (path, delta, flood
//!   work-lists) every `_in`-suffixed read operation computes into, so a
//!   warmed-up scratch makes routes and point queries allocation-free.
//! * [`FrozenView`] — an immutable structure-of-arrays snapshot of the
//!   routing topology: coordinates in flat `xs`/`ys` arrays and the full
//!   routing adjacency (Voronoi + close + long neighbours) flattened into
//!   one CSR offset/index pair.  A greedy hop over a `FrozenView` is pure
//!   contiguous array reads — no hashing, no triangle-fan walking — and
//!   `FrozenView` is `Sync`, so one snapshot serves any number of threads.
//! * [`TrafficAccumulator`] — dense per-node aggregation of many
//!   [`TrafficDelta`]s, applied in one pass
//!   ([`crate::VoroNet::apply_accumulated_traffic`]) so batch executors do
//!   O(distinct senders) map updates instead of O(messages).
//!
//! A `FrozenView` describes the overlay state at one **snapshot epoch**
//! ([`crate::VoroNet::snapshot_epoch`], bumped on every topology
//! mutation).  It does not have to be thrown away when the overlay moves
//! on: [`FrozenView::refresh`] replays the overlay's [`ChangeLog`] — the
//! per-mutation record of which Voronoi neighbourhoods an insert/remove
//! actually touched — and patches the SoA arrays and the CSR adjacency in
//! O(affected neighbourhoods) instead of rebuilding in O(n), falling back
//! to a full rebuild only when the log window no longer covers the view
//! or the touched set approaches the population.  A patched view is
//! **bit-identical** (ids, coordinates, adjacency in live scan order) to
//! a from-scratch [`VoroNet::freeze`] at the same epoch.
//! [`ViewGenerations`] wraps two views in a left-right/RCU-style scheme:
//! readers keep serving the stable front generation while the writer
//! patches the back one, flipping at the barrier, so readers never block.
//! Routing over a `FrozenView` takes, hop for hop, exactly the decisions
//! of [`crate::VoroNet::route_to_point_into`] on the overlay state of the
//! view's epoch: the adjacency lists preserve the live scan order
//! (Voronoi fan order, then close neighbours, then long links) and
//! distances are compared with the same strict-`<` rule, so owners, hop
//! counts, paths and recorded messages are bit-identical.

use crate::arena::{NodeArena, NodeSlot};
use crate::object::ObjectId;
use crate::overlay::{OverlayError, VoroNet};
use std::collections::VecDeque;
use voronet_geom::Point2;
use voronet_sim::{MessageKind, TrafficStats};

/// Every [`MessageKind`], in a fixed order used to index
/// [`TrafficAccumulator`]'s per-kind counters.
const KINDS: [MessageKind; 7] = [
    MessageKind::RouteForward,
    MessageKind::VoronoiUpdate,
    MessageKind::CloseNeighbourExchange,
    MessageKind::LongLink,
    MessageKind::Departure,
    MessageKind::QueryAnswer,
    MessageKind::Other,
];

fn kind_index(kind: MessageKind) -> usize {
    match kind {
        MessageKind::RouteForward => 0,
        MessageKind::VoronoiUpdate => 1,
        MessageKind::CloseNeighbourExchange => 2,
        MessageKind::LongLink => 3,
        MessageKind::Departure => 4,
        MessageKind::QueryAnswer => 5,
        MessageKind::Other => 6,
    }
}

/// The protocol messages a side-effect-free read operation would have
/// sent, in emission order.
///
/// Read operations (`route_to_point_in`, `handle_query_in`, the
/// `*_query_in` floods) append to the delta instead of touching the
/// overlay's counters; the caller replays it afterwards with
/// [`VoroNet::apply_traffic`].  Replaying produces exactly the counters
/// the pre-split `&mut self` operations produced inline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficDelta {
    events: Vec<(ObjectId, MessageKind)>,
}

impl TrafficDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `kind` sent by `from`.
    #[inline]
    pub fn push(&mut self, from: ObjectId, kind: MessageKind) {
        self.events.push((from, kind));
    }

    /// The recorded `(sender, kind)` events, in emission order.
    pub fn events(&self) -> &[(ObjectId, MessageKind)] {
        &self.events
    }

    /// Number of recorded messages.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Forgets all recorded events, keeping the buffer's capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Caller-owned working memory for the `&self` read path.
///
/// Holds the route path buffer, the pending [`TrafficDelta`] and the
/// work-lists of the area-query floods.  Reusing one scratch across calls
/// makes greedy routes and point queries allocation-free once the buffers
/// have warmed up (pinned by the counting-allocator test in
/// `tests/route_alloc.rs`).
///
/// The read operations **clear** `path` (it describes the last route) but
/// **append** to `delta`, so one scratch can accumulate the accounting of
/// a whole run of operations before a single
/// [`VoroNet::apply_traffic`] / [`VoroNet::apply_accumulated_traffic`]
/// call; clear the delta when the events have been applied.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    /// Objects traversed by the last route (source first, owner last).
    pub path: Vec<ObjectId>,
    /// Accounting of every read operation since the last clear.
    pub delta: TrafficDelta,
    pub(crate) visited: std::collections::HashSet<ObjectId>,
    pub(crate) frontier: Vec<ObjectId>,
    pub(crate) neighbours: Vec<ObjectId>,
}

impl RouteScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Structure-of-arrays snapshot of the routing topology at one snapshot
/// epoch (see the [module docs](self)).
///
/// Nodes are addressed by *dense index* — the overlay's dense sampling
/// order at the view's epoch — with O(1) translation from [`ObjectId`]s.
/// Coordinates live in flat `xs`/`ys` arrays and the complete greedy
/// neighbourhood of each node (Voronoi fan, close neighbours, long links,
/// in the live path's scan order) is one contiguous slice of dense
/// indices in a shared pool, so a greedy hop reads two offset words and a
/// handful of contiguous array entries.
///
/// The pool is CSR-shaped but patchable: each node carries an explicit
/// `(start, len)` row descriptor instead of sharing offsets with its
/// successor, so [`FrozenView::refresh`] can rewrite just the rows an
/// overlay mutation dirtied (appending when a row grows, tombstoning the
/// old footprint) and compact the pool once the garbage outweighs the
/// live entries.  Two views are [`PartialEq`]-equal when their ids,
/// coordinates and per-node adjacency rows agree — pool layout and epoch
/// are not observable.
#[derive(Debug, Clone)]
pub struct FrozenView {
    /// Snapshot epoch of the overlay state this view describes.
    epoch: u64,
    /// Dense index → object id.
    ids: Vec<ObjectId>,
    /// Object id → dense index.
    id_to_dense: IdIndex,
    /// Dense index → x coordinate.
    xs: Vec<f64>,
    /// Dense index → y coordinate.
    ys: Vec<f64>,
    /// Dense index → start of its adjacency row in `adj`.
    adj_start: Vec<u32>,
    /// Dense index → length of its adjacency row.
    adj_len: Vec<u32>,
    /// Pooled routing adjacency rows, as dense indices.
    adj: Vec<u32>,
    /// Tombstoned pool entries left behind by patched rows.
    dead: u32,
}

impl PartialEq for FrozenView {
    fn eq(&self, other: &Self) -> bool {
        self.ids == other.ids
            && self.xs == other.xs
            && self.ys == other.ys
            && (0..self.ids.len())
                .all(|d| self.neighbours_of(d as u32) == other.neighbours_of(d as u32))
    }
}

/// Object-id → dense-index translation.  Object ids are allocated
/// monotonically and never reused, so under sustained churn the raw id
/// range can grow far beyond the live population; a flat table indexed by
/// `id - min_live_id` is only used while that range stays within a small
/// factor of the population, with a hash map as the fallback so a freeze
/// never allocates more than O(population).
#[derive(Debug, Clone)]
enum IdIndex {
    /// `table[id.0 - base]` is the dense index (`u32::MAX` = dead).
    Flat { base: u64, table: Vec<u32> },
    /// Sparse fallback for id ranges much wider than the population.
    Map(std::collections::HashMap<ObjectId, u32>),
}

impl IdIndex {
    /// The id range may exceed the population by at most this factor
    /// before the flat table is abandoned for the hash map.
    const MAX_SPREAD: usize = 8;

    fn build(ids: &[ObjectId]) -> IdIndex {
        let Some(base) = ids.iter().map(|id| id.0).min() else {
            return IdIndex::Flat {
                base: 0,
                table: Vec::new(),
            };
        };
        let max = ids.iter().map(|id| id.0).max().expect("non-empty");
        let span = (max - base) as usize + 1;
        if span <= ids.len().saturating_mul(Self::MAX_SPREAD) + 64 {
            let mut table = vec![u32::MAX; span];
            for (dense, id) in ids.iter().enumerate() {
                table[(id.0 - base) as usize] = dense as u32;
            }
            IdIndex::Flat { base, table }
        } else {
            IdIndex::Map(
                ids.iter()
                    .enumerate()
                    .map(|(dense, &id)| (id, dense as u32))
                    .collect(),
            )
        }
    }

    #[inline]
    fn get(&self, id: ObjectId) -> Option<u32> {
        match self {
            IdIndex::Flat { base, table } => match id.0.checked_sub(*base) {
                Some(off) => match table.get(off as usize) {
                    Some(&d) if d != u32::MAX => Some(d),
                    _ => None,
                },
                None => None,
            },
            IdIndex::Map(map) => map.get(&id).copied(),
        }
    }

    /// Maps `id` to `dense`, growing the flat table as needed (object ids
    /// are monotonic, so new ids always extend the table's high end).
    fn set(&mut self, id: ObjectId, dense: u32) {
        match self {
            IdIndex::Flat { base, table } => {
                let Some(off) = id.0.checked_sub(*base) else {
                    // Ids below the base cannot appear for *new* inserts
                    // (ids are monotonic); fall back defensively anyway.
                    self.demote();
                    self.set(id, dense);
                    return;
                };
                let off = off as usize;
                if off >= table.len() {
                    table.resize(off + 1, u32::MAX);
                }
                table[off] = dense;
            }
            IdIndex::Map(map) => {
                map.insert(id, dense);
            }
        }
    }

    /// Unmaps `id`; it must be present.
    fn remove(&mut self, id: ObjectId) {
        match self {
            IdIndex::Flat { base, table } => {
                table[(id.0 - *base) as usize] = u32::MAX;
            }
            IdIndex::Map(map) => {
                map.remove(&id);
            }
        }
    }

    /// Converts a flat table to the sparse map.
    fn demote(&mut self) {
        if let IdIndex::Flat { base, table } = self {
            let map = table
                .iter()
                .enumerate()
                .filter(|(_, &d)| d != u32::MAX)
                .map(|(off, &d)| (ObjectId(*base + off as u64), d))
                .collect();
            *self = IdIndex::Map(map);
        }
    }

    /// Demotes the flat table once churn has spread the id range beyond
    /// the same bound `build` uses — a patched index never holds more
    /// memory than a freshly built one would accept.
    fn maybe_demote(&mut self, live: usize) {
        if let IdIndex::Flat { table, .. } = self {
            if table.len() > live.saturating_mul(Self::MAX_SPREAD) + 64 {
                self.demote();
            }
        }
    }
}

impl FrozenView {
    /// Freezes the routing state of `net` at its current snapshot epoch.
    /// O(n + edges); the snapshot is `Sync`, and [`FrozenView::refresh`]
    /// brings it forward after overlay mutations.
    pub fn new(net: &VoroNet) -> Self {
        let n = net.len();
        let arena = net.arena();
        let mut ids = Vec::with_capacity(n);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for id in net.ids() {
            let slot = arena.get(id).expect("dense order holds live nodes");
            ids.push(id);
            xs.push(slot.coords().x);
            ys.push(slot.coords().y);
        }
        let id_to_dense = IdIndex::build(&ids);

        let mut adj_start = Vec::with_capacity(n);
        let mut adj_len = Vec::with_capacity(n);
        let mut adj = Vec::new();
        for &id in &ids {
            let slot = arena.get(id).expect("dense order holds live nodes");
            let start = adj.len();
            push_row(net, slot, &id_to_dense, &mut adj);
            adj_start.push(start as u32);
            adj_len.push((adj.len() - start) as u32);
        }
        FrozenView {
            epoch: net.snapshot_epoch(),
            ids,
            id_to_dense,
            xs,
            ys,
            adj_start,
            adj_len,
            adj,
            dead: 0,
        }
    }

    /// Snapshot epoch of the overlay state this view describes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Brings the view forward to `net`'s current snapshot epoch.
    ///
    /// When the overlay's [`ChangeLog`] still covers this view's epoch
    /// and the dirtied neighbourhoods are small against the population,
    /// the view is *patched*: membership changes are replayed onto the
    /// SoA arrays (swap-remove, exactly like the arena's dense order) and
    /// only the adjacency rows of dirtied nodes are rebuilt, in
    /// O(affected neighbourhoods).  Otherwise the view is rebuilt from
    /// scratch.  Either way the result is bit-identical to
    /// [`VoroNet::freeze`] at the same epoch.
    pub fn refresh(&mut self, net: &VoroNet) -> ViewRefresh {
        let target = net.snapshot_epoch();
        if self.epoch == target {
            return ViewRefresh::Current;
        }
        // Size the patch first: if the log window no longer reaches back
        // to this view's epoch, or the dirtied set approaches the
        // population, a from-scratch rebuild is cheaper.
        let mut touched = 0usize;
        let covered = match net.change_log().range(self.epoch, target) {
            None => false,
            Some(records) => {
                for rec in records {
                    touched += rec.dirty().len() + 1;
                }
                true
            }
        };
        if !covered || touched * 2 >= net.len().max(16) {
            *self = FrozenView::new(net);
            return ViewRefresh::Rebuilt;
        }
        let records = net
            .change_log()
            .range(self.epoch, target)
            .expect("coverage checked above");

        // Pass 1: replay membership changes in log order.  Removes mirror
        // the arena's swap-remove, so dense order tracks the live scan
        // order exactly; nodes swapped into a freed slot are remembered,
        // because every row that referenced their old dense index must be
        // rewritten even if the log never dirtied it.
        let mut dirty: std::collections::HashSet<ObjectId> = std::collections::HashSet::new();
        let mut moved: Vec<ObjectId> = Vec::new();
        let mut applied = 0usize;
        for rec in records {
            applied += 1;
            dirty.extend(rec.dirty().iter().copied());
            match *rec {
                ChangeRecord::Insert { id, x, y, .. } => {
                    let dense = self.ids.len() as u32;
                    self.ids.push(id);
                    self.xs.push(x);
                    self.ys.push(y);
                    self.adj_start.push(self.adj.len() as u32);
                    self.adj_len.push(0);
                    self.id_to_dense.set(id, dense);
                    dirty.insert(id);
                }
                ChangeRecord::Remove { id, .. } => {
                    let pos = self
                        .id_to_dense
                        .get(id)
                        .expect("log-consistent views hold every removed id")
                        as usize;
                    self.dead += self.adj_len[pos];
                    self.id_to_dense.remove(id);
                    self.ids.swap_remove(pos);
                    self.xs.swap_remove(pos);
                    self.ys.swap_remove(pos);
                    self.adj_start.swap_remove(pos);
                    self.adj_len.swap_remove(pos);
                    if pos < self.ids.len() {
                        let moved_id = self.ids[pos];
                        self.id_to_dense.set(moved_id, pos as u32);
                        moved.push(moved_id);
                    }
                }
                ChangeRecord::Mutate { .. } => {}
            }
        }

        // Pass 2: a swapped node's dense index changed, so every row that
        // scans it — its Voronoi fan, close neighbours, and the sources
        // of its back-long pointers (the mirror of long links *to* it) —
        // is stale.  All of that is local state on the moved node's slot.
        let arena = net.arena();
        let tri = net.triangulation();
        for id in moved {
            // The node may itself have been removed by a later record.
            let Some(slot) = arena.get(id) else { continue };
            dirty.insert(id);
            for v in tri.real_neighbors_iter(slot.vertex()) {
                if let Some(o) = net.object_at_vertex(v) {
                    dirty.insert(o);
                }
            }
            for &c in slot.close() {
                dirty.insert(c);
            }
            for bl in slot.back_long() {
                dirty.insert(bl.source);
            }
        }

        // Pass 3: rebuild the adjacency rows of every dirty node still
        // live, in the exact scan order a fresh freeze would emit.
        // Sorted for run-to-run determinism of the pool layout.
        let mut dirty: Vec<ObjectId> = dirty.into_iter().collect();
        dirty.sort_unstable();
        let mut row: Vec<u32> = Vec::new();
        let mut patched = 0usize;
        for id in dirty {
            // Membership in the patched view now matches the live net, so
            // ids dirtied and later removed simply drop out here.
            let Some(dense) = self.id_to_dense.get(id) else {
                continue;
            };
            let slot = arena.get(id).expect("view membership matches the net");
            row.clear();
            push_row(net, slot, &self.id_to_dense, &mut row);
            self.replace_row(dense as usize, &row);
            patched += 1;
        }

        self.id_to_dense.maybe_demote(self.ids.len());
        self.maybe_compact();
        self.epoch = target;
        debug_assert_eq!(
            self.ids,
            net.arena().order(),
            "patched dense order must equal the arena's live scan order"
        );
        ViewRefresh::Patched {
            nodes: patched,
            records: applied,
        }
    }

    /// Rewrites one adjacency row: in place when it fits the old
    /// footprint, appended to the pool when it grew.
    fn replace_row(&mut self, dense: usize, row: &[u32]) {
        let old = self.adj_len[dense] as usize;
        let start = self.adj_start[dense] as usize;
        if row.len() <= old {
            self.adj[start..start + row.len()].copy_from_slice(row);
            self.dead += (old - row.len()) as u32;
        } else {
            self.dead += old as u32;
            self.adj_start[dense] = self.adj.len() as u32;
            self.adj.extend_from_slice(row);
        }
        self.adj_len[dense] = row.len() as u32;
    }

    /// Rewrites the pool in dense order once tombstones outweigh live
    /// entries, bounding memory at O(edges) under sustained churn.
    fn maybe_compact(&mut self) {
        if (self.dead as usize) * 2 <= self.adj.len() || self.adj.len() < 64 {
            return;
        }
        let mut pool = Vec::with_capacity(self.adj.len() - self.dead as usize);
        for dense in 0..self.ids.len() {
            let start = self.adj_start[dense] as usize;
            let len = self.adj_len[dense] as usize;
            self.adj_start[dense] = pool.len() as u32;
            pool.extend_from_slice(&self.adj[start..start + len]);
        }
        self.adj = pool;
        self.dead = 0;
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the snapshot holds no node.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dense index of an object (`None` for ids dead or unknown at freeze
    /// time).
    #[inline]
    pub fn dense_of(&self, id: ObjectId) -> Option<u32> {
        self.id_to_dense.get(id)
    }

    /// Object id at a dense index (`index < len()`).
    #[inline]
    pub fn id_at(&self, index: u32) -> ObjectId {
        self.ids[index as usize]
    }

    /// Coordinates of an object live at freeze time.
    pub fn coords_of(&self, id: ObjectId) -> Option<Point2> {
        let d = self.dense_of(id)? as usize;
        Some(Point2::new(self.xs[d], self.ys[d]))
    }

    /// The frozen routing neighbourhood of a dense index, as dense indices
    /// in scan order.
    pub fn neighbours_of(&self, index: u32) -> &[u32] {
        let s = self.adj_start[index as usize] as usize;
        let e = s + self.adj_len[index as usize] as usize;
        &self.adj[s..e]
    }

    /// Greedy route from `from` towards `target` over the frozen topology
    /// — the decisions, path, hop count and recorded messages are
    /// bit-identical to [`VoroNet::route_to_point_in`] on the overlay the
    /// snapshot was frozen from.
    ///
    /// `scratch.path` is cleared and refilled; the accounting is appended
    /// to `scratch.delta`.  Allocation-free on warmed-up buffers.
    pub fn route_to_point_in(
        &self,
        from: ObjectId,
        target: Point2,
        scratch: &mut RouteScratch,
    ) -> Result<(ObjectId, u32), OverlayError> {
        scratch.path.clear();
        let Some(mut cur) = self.dense_of(from) else {
            return Err(OverlayError::UnknownObject(from));
        };
        scratch.path.push(from);
        let mut cur_d = Point2::new(self.xs[cur as usize], self.ys[cur as usize]).distance2(target);
        let mut hops = 0u32;
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for &nb in self.neighbours_of(cur) {
                let d = Point2::new(self.xs[nb as usize], self.ys[nb as usize]).distance2(target);
                if d < best_d {
                    best = nb;
                    best_d = d;
                }
            }
            if best == cur {
                break;
            }
            scratch
                .delta
                .push(self.ids[cur as usize], MessageKind::RouteForward);
            cur = best;
            cur_d = best_d;
            hops += 1;
            scratch.path.push(self.ids[cur as usize]);
        }
        Ok((self.ids[cur as usize], hops))
    }

    /// Greedy route between two objects live at freeze time; see
    /// [`FrozenView::route_to_point_in`].
    pub fn route_between_in(
        &self,
        from: ObjectId,
        to: ObjectId,
        scratch: &mut RouteScratch,
    ) -> Result<(ObjectId, u32), OverlayError> {
        let target = self.coords_of(to).ok_or(OverlayError::UnknownObject(to))?;
        let (owner, hops) = self.route_to_point_in(from, target, scratch)?;
        debug_assert_eq!(
            owner, to,
            "a route towards an existing object must terminate at that object"
        );
        Ok((owner, hops))
    }
}

/// Appends `slot`'s routing adjacency row to `out`, in exactly the live
/// walk's scan order: Voronoi fan first, then close neighbours (BTreeSet
/// order), then long links — with the node itself skipped, as the live
/// path's `n == cur` test does.  Shared by the full freeze and the
/// per-row patch path so both emit identical rows.
fn push_row(net: &VoroNet, slot: &NodeSlot, index: &IdIndex, out: &mut Vec<u32>) {
    let id = slot.id();
    for v in net.triangulation().real_neighbors_iter(slot.vertex()) {
        let o = net
            .object_at_vertex(v)
            .expect("real vertices always map to live objects");
        out.push(index.get(o).expect("neighbours are live"));
    }
    for n in slot
        .close()
        .iter()
        .copied()
        .chain(slot.long().iter().map(|l| l.neighbour))
    {
        if n != id {
            out.push(index.get(n).expect("neighbours are live"));
        }
    }
}

/// One overlay mutation, as recorded in the [`ChangeLog`]: the membership
/// effect plus the set of nodes whose adjacency rows it dirtied.
///
/// Insert records carry the coordinates captured at mutation time — the
/// object may be gone from the arena by the time a view replays the log.
/// The `dirty` lists name every node whose Voronoi fan, close set or long
/// links changed; back-long pointers are not part of any adjacency row,
/// so retargeting them alone dirties only the *source* of the link.
#[derive(Debug, Clone)]
pub(crate) enum ChangeRecord {
    /// An object joined; `dirty` holds its new neighbourhood.
    Insert {
        id: ObjectId,
        x: f64,
        y: f64,
        dirty: Vec<ObjectId>,
    },
    /// An object departed; `dirty` holds its former neighbourhood.
    Remove { id: ObjectId, dirty: Vec<ObjectId> },
    /// Links changed without membership change (long-link refresh,
    /// close-neighbour pruning).
    Mutate { dirty: Vec<ObjectId> },
}

impl ChangeRecord {
    fn dirty(&self) -> &[ObjectId] {
        match self {
            ChangeRecord::Insert { dirty, .. }
            | ChangeRecord::Remove { dirty, .. }
            | ChangeRecord::Mutate { dirty } => dirty,
        }
    }
}

/// Bounded journal of overlay mutations, indexed by snapshot epoch:
/// record `i` moves the overlay from epoch `base + i` to `base + i + 1`.
///
/// The log retains the most recent `ChangeLog::CAP` (4096) records; views
/// older than the window simply rebuild from scratch, so the log bounds
/// writer-side memory without any reader registration protocol.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    base: u64,
    records: VecDeque<ChangeRecord>,
}

impl ChangeLog {
    /// Retained mutation records; enough for thousands of writes between
    /// view refreshes while keeping worst-case replay far below a
    /// rebuild.
    const CAP: usize = 4096;

    pub(crate) fn push(&mut self, rec: ChangeRecord) {
        if self.records.len() == Self::CAP {
            self.records.pop_front();
            self.base += 1;
        }
        self.records.push_back(rec);
    }

    /// The records moving an overlay from epoch `from` to epoch `to`, or
    /// `None` when the window no longer reaches back to `from`.
    fn range(&self, from: u64, to: u64) -> Option<impl Iterator<Item = &ChangeRecord>> {
        let lo = from.checked_sub(self.base)? as usize;
        let hi = to.checked_sub(self.base)? as usize;
        if hi > self.records.len() || lo > hi {
            return None;
        }
        Some(self.records.range(lo..hi))
    }
}

/// What [`FrozenView::refresh`] (or [`ViewGenerations::advance`]) did to
/// bring a view up to date — feed it to
/// [`VoroNet::record_view_refresh`] so snapshot economics show up in
/// [`VoroNet::snapshot_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewRefresh {
    /// The view already described the current epoch; nothing was done.
    Current,
    /// The view was rebuilt from scratch (O(n + edges)).
    Rebuilt,
    /// The view was delta-patched: `nodes` adjacency rows rewritten while
    /// replaying `records` log records.
    Patched {
        /// Adjacency rows rewritten.
        nodes: usize,
        /// Change-log records replayed.
        records: usize,
    },
}

/// Snapshot-maintenance economics: how often views were reused, patched
/// or rebuilt.  Kept outside [`crate::VoroNet`]'s protocol counters —
/// these describe the *execution strategy*, not the overlay, so engines
/// with different view policies still agree on protocol stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Refreshes that found the view already current (free reuse).
    pub reused: u64,
    /// Views rebuilt from scratch.
    pub full_rebuilds: u64,
    /// Delta patches applied.
    pub delta_patches: u64,
    /// Total adjacency rows rewritten across all delta patches.
    pub patched_nodes: u64,
}

impl SnapshotStats {
    /// Folds one refresh outcome in.
    pub fn absorb(&mut self, refresh: &ViewRefresh) {
        match *refresh {
            ViewRefresh::Current => self.reused += 1,
            ViewRefresh::Rebuilt => self.full_rebuilds += 1,
            ViewRefresh::Patched { nodes, .. } => {
                self.delta_patches += 1;
                self.patched_nodes += nodes as u64;
            }
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &SnapshotStats) {
        self.reused += other.reused;
        self.full_rebuilds += other.full_rebuilds;
        self.delta_patches += other.delta_patches;
        self.patched_nodes += other.patched_nodes;
    }
}

impl std::fmt::Display for SnapshotStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "views: {} reused, {} patched ({} rows), {} rebuilt",
            self.reused, self.delta_patches, self.patched_nodes, self.full_rebuilds
        )
    }
}

/// Double-buffered [`FrozenView`] generations, left-right/RCU style.
///
/// [`ViewGenerations::front`] is the stable generation read workers serve
/// from; [`ViewGenerations::advance`] patches the *back* generation up to
/// the overlay's current epoch and flips, so a batch executor's readers
/// are never handed a view that is mid-patch.  Each generation refreshes
/// from its own (older) epoch — the change log covers both because it
/// retains a bounded window, and a generation that has fallen out of the
/// window simply rebuilds.
#[derive(Debug, Clone)]
pub struct ViewGenerations {
    gens: [FrozenView; 2],
    front: usize,
}

impl ViewGenerations {
    /// Freezes the overlay once and seeds both generations from it.
    pub fn new(net: &VoroNet) -> Self {
        let view = FrozenView::new(net);
        ViewGenerations {
            gens: [view.clone(), view],
            front: 0,
        }
    }

    /// The stable front generation.
    pub fn front(&self) -> &FrozenView {
        &self.gens[self.front]
    }

    /// Brings a generation up to the overlay's current epoch and makes it
    /// the front: a no-op when the front is already current, otherwise
    /// the back generation is delta-patched (or rebuilt) and the buffers
    /// flip at this barrier.
    pub fn advance(&mut self, net: &VoroNet) -> ViewRefresh {
        if self.gens[self.front].epoch() == net.snapshot_epoch() {
            return ViewRefresh::Current;
        }
        let back = 1 - self.front;
        let refresh = self.gens[back].refresh(net);
        self.front = back;
        refresh
    }

    /// Like [`ViewGenerations::advance`], but always rebuilds a stale
    /// back generation from scratch — the rebuild-per-barrier baseline
    /// the incremental path is benchmarked against.
    pub fn advance_rebuilding(&mut self, net: &VoroNet) -> ViewRefresh {
        if self.gens[self.front].epoch() == net.snapshot_epoch() {
            return ViewRefresh::Current;
        }
        let back = 1 - self.front;
        self.gens[back] = FrozenView::new(net);
        self.front = back;
        ViewRefresh::Rebuilt
    }
}

/// Dense aggregation of many [`TrafficDelta`]s against one
/// [`FrozenView`], applied in a single pass with
/// [`VoroNet::apply_accumulated_traffic`].
///
/// Message accounting is two independent aggregations (per kind and per
/// sender — see [`TrafficStats::add_kind`] /
/// [`TrafficStats::add_sender`]), so the accumulator keeps a fixed
/// per-kind array plus a dense per-node count vector and applies
/// O(distinct senders) map updates instead of one map update per message.
/// Parallel batch executors give each worker its own accumulator and
/// merge them before applying.
#[derive(Debug, Clone)]
pub struct TrafficAccumulator {
    pub(crate) kind_counts: [u64; KINDS.len()],
    pub(crate) node_counts: Vec<u32>,
    pub(crate) touched: Vec<u32>,
}

impl TrafficAccumulator {
    /// Creates an accumulator sized for `view`.
    pub fn new(view: &FrozenView) -> Self {
        TrafficAccumulator {
            kind_counts: [0; KINDS.len()],
            node_counts: vec![0; view.len()],
            touched: Vec::new(),
        }
    }

    /// Folds a delta in.  Every sender must be a node of `view` (read
    /// operations only record live senders).
    pub fn absorb(&mut self, view: &FrozenView, delta: &TrafficDelta) {
        for &(id, kind) in delta.events() {
            self.kind_counts[kind_index(kind)] += 1;
            let dense = view
                .dense_of(id)
                .expect("read-path senders are live in the frozen view")
                as usize;
            if self.node_counts[dense] == 0 {
                self.touched.push(dense as u32);
            }
            self.node_counts[dense] += 1;
        }
    }

    /// Merges another accumulator (built against the same view) into this
    /// one.
    pub fn merge(&mut self, other: &TrafficAccumulator) {
        for (mine, theirs) in self.kind_counts.iter_mut().zip(other.kind_counts) {
            *mine += theirs;
        }
        for &dense in &other.touched {
            if self.node_counts[dense as usize] == 0 {
                self.touched.push(dense);
            }
            self.node_counts[dense as usize] += other.node_counts[dense as usize];
        }
    }

    /// Total messages accumulated.
    pub fn total(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    pub(crate) fn apply_to(
        &self,
        traffic: &mut TrafficStats,
        arena: &mut NodeArena,
        view: &FrozenView,
    ) {
        for (i, &n) in self.kind_counts.iter().enumerate() {
            traffic.add_kind(KINDS[i], n);
        }
        for &dense in &self.touched {
            let id = view.id_at(dense);
            let n = self.node_counts[dense as usize] as u64;
            traffic.add_sender(id.0, n);
            arena.bump_sent_by(id, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VoroNetConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn build(n: usize, seed: u64) -> (VoroNet, Vec<ObjectId>) {
        let mut net = VoroNet::new(VoroNetConfig::new(n).with_seed(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let mut ids = Vec::new();
        while ids.len() < n {
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            if let Ok(r) = net.insert(p) {
                ids.push(r.id);
            }
        }
        (net, ids)
    }

    #[test]
    fn frozen_view_is_sync_and_indexes_every_live_node() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<FrozenView>();
        assert_sync::<VoroNet>();

        let (net, ids) = build(200, 3);
        let view = FrozenView::new(&net);
        assert_eq!(view.len(), net.len());
        for &id in &ids {
            let dense = view.dense_of(id).expect("live node is indexed");
            assert_eq!(view.id_at(dense), id);
            assert_eq!(view.coords_of(id), net.coords(id));
            assert!(!view.neighbours_of(dense).is_empty());
        }
        assert_eq!(view.dense_of(ObjectId(u64::MAX)), None);
    }

    #[test]
    fn frozen_routes_match_the_live_walk_bit_for_bit() {
        let (mut net, ids) = build(400, 7);
        let view = FrozenView::new(&net);
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = RouteScratch::new();
        let mut live_path = Vec::new();
        for i in 0..300 {
            let from = ids[rng.random_range(0..ids.len())];
            let target = if i % 3 == 0 {
                net.coords(ids[rng.random_range(0..ids.len())]).unwrap()
            } else {
                Point2::new(rng.random::<f64>(), rng.random::<f64>())
            };
            scratch.delta.clear();
            let frozen = view.route_to_point_in(from, target, &mut scratch).unwrap();
            let events = scratch.delta.len();
            let live = net
                .route_to_point_into(from, target, &mut live_path)
                .unwrap();
            assert_eq!(frozen, live, "owner/hops must agree");
            assert_eq!(scratch.path, live_path, "paths must agree");
            assert_eq!(events as u32, frozen.1, "one RouteForward per hop");
        }
        // Unknown sources error identically.
        assert_eq!(
            view.route_to_point_in(ObjectId(u64::MAX), Point2::new(0.5, 0.5), &mut scratch),
            Err(OverlayError::UnknownObject(ObjectId(u64::MAX)))
        );
    }

    #[test]
    fn churned_overlays_freeze_in_bounded_memory_and_still_route_identically() {
        // Object ids are never reused, so sustained churn spreads the live
        // ids over a range far wider than the population; the id index must
        // fall back to the sparse map (never allocating O(max id)) and keep
        // routing bit-identical to the live walk.
        let (mut net, mut ids) = build(60, 23);
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..800 {
            // Keep the very first object alive to pin the id range open.
            let victim = 1 + rng.random_range(0..ids.len() - 1);
            net.remove(ids[victim]).unwrap();
            ids.swap_remove(victim);
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            if let Ok(r) = net.insert(p) {
                ids.push(r.id);
            }
        }
        let span = ids.iter().map(|i| i.0).max().unwrap() - ids.iter().map(|i| i.0).min().unwrap();
        assert!(
            span as usize > ids.len() * IdIndex::MAX_SPREAD + 64,
            "churn must spread the id range (span {span}, population {})",
            ids.len()
        );
        let view = FrozenView::new(&net);
        assert!(
            matches!(view.id_to_dense, IdIndex::Map(_)),
            "wide id ranges must use the sparse index"
        );
        let mut scratch = RouteScratch::new();
        let mut live_path = Vec::new();
        for i in 0..100 {
            let from = ids[(i * 7) % ids.len()];
            let to = ids[(i * 13 + 1) % ids.len()];
            let frozen = view.route_between_in(from, to, &mut scratch).unwrap();
            let target = net.coords(to).unwrap();
            let live = net
                .route_to_point_into(from, target, &mut live_path)
                .unwrap();
            assert_eq!(frozen, live);
            assert_eq!(scratch.path, live_path);
        }
        // An erroring route clears the stale path, like the live walk does.
        let _ = view.route_to_point_in(ObjectId(u64::MAX), Point2::new(0.1, 0.1), &mut scratch);
        assert!(
            scratch.path.is_empty(),
            "failed routes must not leave a stale path"
        );
    }

    #[test]
    fn refreshed_views_stay_bit_identical_to_fresh_freezes_under_churn() {
        // One continuously-patched view must match a from-scratch freeze
        // after every kind of mutation the overlay can perform.
        let (mut net, mut ids) = build(120, 41);
        let mut view = net.freeze();
        let mut rng = StdRng::seed_from_u64(43);
        for step in 0..250 {
            match step % 10 {
                0..=4 => {
                    let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
                    if let Ok(r) = net.insert(p) {
                        ids.push(r.id);
                    }
                }
                5..=7 => {
                    let victim = rng.random_range(0..ids.len());
                    net.remove(ids.swap_remove(victim)).unwrap();
                }
                8 => {
                    let id = ids[rng.random_range(0..ids.len())];
                    net.refresh_long_links(id).unwrap();
                }
                _ => {
                    net.prune_close_neighbours();
                }
            }
            // Refresh at every step half the time, in bursts otherwise —
            // both single-record and multi-record patches must hold.
            if step % 2 == 0 || step % 7 == 0 {
                let stale = view.epoch() != net.snapshot_epoch();
                let refresh = view.refresh(&net);
                // A prune that drops nothing leaves the epoch alone; any
                // real mutation must not report a free reuse.
                assert_eq!(stale, refresh != ViewRefresh::Current);
                let fresh = net.freeze();
                assert_eq!(view, fresh, "patched view diverged at step {step}");
                assert_eq!(view.epoch(), fresh.epoch());
            }
        }
        // Routes over the patched view match the live walk bit for bit.
        let mut refresh_stats = SnapshotStats::default();
        refresh_stats.absorb(&view.refresh(&net));
        assert_eq!(refresh_stats.reused + refresh_stats.delta_patches, 1);
        let mut scratch = RouteScratch::new();
        let mut live_path = Vec::new();
        for i in 0..60 {
            let from = ids[(i * 11) % ids.len()];
            let to = ids[(i * 5 + 2) % ids.len()];
            let frozen = view.route_between_in(from, to, &mut scratch).unwrap();
            let target = net.coords(to).unwrap();
            let live = net
                .route_to_point_into(from, target, &mut live_path)
                .unwrap();
            assert_eq!(frozen, live);
            assert_eq!(scratch.path, live_path);
        }
    }

    #[test]
    fn patched_id_index_demotes_to_the_sparse_map_under_wide_churn() {
        // Sustained churn through the *patch* path must not let the flat
        // id table grow with the (monotonic, never reused) id range.
        let (mut net, mut ids) = build(40, 47);
        let mut view = net.freeze();
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..600 {
            let victim = 1 + rng.random_range(0..ids.len() - 1);
            net.remove(ids[victim]).unwrap();
            ids.swap_remove(victim);
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            if let Ok(r) = net.insert(p) {
                ids.push(r.id);
            }
            view.refresh(&net);
        }
        assert!(
            matches!(view.id_to_dense, IdIndex::Map(_)),
            "patched index must demote once the id range spreads"
        );
        assert_eq!(view, net.freeze());
        assert!(
            view.adj.len() <= 2 * (view.dead as usize).max(32) + 16 * view.len(),
            "tombstone compaction must bound the pool ({} entries, {} dead, {} nodes)",
            view.adj.len(),
            view.dead,
            view.len()
        );
    }

    #[test]
    fn view_generations_reuse_patch_and_flip_at_barriers() {
        let (mut net, ids) = build(80, 59);
        let mut gens = ViewGenerations::new(&net);
        let first_epoch = net.snapshot_epoch();
        assert_eq!(gens.front().epoch(), first_epoch);
        // No write: advancing is free and does not flip.
        assert_eq!(gens.advance(&net), ViewRefresh::Current);

        // A write barrier: the back generation is patched and becomes the
        // front; the result matches a fresh freeze.
        net.remove(ids[3]).unwrap();
        let p = Point2::new(0.333, 0.777);
        net.insert(p).unwrap();
        match gens.advance(&net) {
            ViewRefresh::Patched { records, .. } => assert_eq!(records, 2),
            other => panic!("expected a patch, got {other:?}"),
        }
        assert_eq!(gens.front().epoch(), net.snapshot_epoch());
        assert_eq!(*gens.front(), net.freeze());

        // The *other* generation still holds the older epoch and catches
        // up across a multi-barrier gap when its turn comes.
        net.remove(ids[10]).unwrap();
        assert!(matches!(gens.advance(&net), ViewRefresh::Patched { .. }));
        assert_eq!(*gens.front(), net.freeze());

        // The rebuild-per-barrier baseline produces the same views.
        net.remove(ids[20]).unwrap();
        assert_eq!(gens.advance_rebuilding(&net), ViewRefresh::Rebuilt);
        assert_eq!(*gens.front(), net.freeze());
        assert_eq!(gens.advance_rebuilding(&net), ViewRefresh::Current);
    }

    #[test]
    fn views_older_than_the_log_window_rebuild_from_scratch() {
        // Directly exercise the bounded-journal fallback: a view whose
        // epoch predates the retained window cannot patch.
        let mut log = ChangeLog::default();
        for i in 0..(ChangeLog::CAP + 10) {
            log.push(ChangeRecord::Mutate {
                dirty: vec![ObjectId(i as u64)],
            });
        }
        let newest = (ChangeLog::CAP + 10) as u64;
        assert!(log.range(0, newest).is_none(), "window must have slid");
        assert!(log.range(9, newest).is_none());
        assert_eq!(
            log.range(10, newest).map(|r| r.count()),
            Some(ChangeLog::CAP)
        );
        assert_eq!(log.range(newest, newest).map(|r| r.count()), Some(0));

        // And end to end: an ancient view refreshes by full rebuild.
        let (mut net, ids) = build(50, 61);
        let mut view = net.freeze();
        for _ in 0..6 {
            // Mutations beyond the patch-volume threshold for n=50 force
            // the rebuild branch even inside the window.
            for &id in ids.iter().take(30) {
                net.refresh_long_links(id).unwrap();
            }
            assert_eq!(view.refresh(&net), ViewRefresh::Rebuilt);
            assert_eq!(view, net.freeze());
        }
    }

    #[test]
    fn snapshot_stats_tally_and_render() {
        let mut stats = SnapshotStats::default();
        stats.absorb(&ViewRefresh::Current);
        stats.absorb(&ViewRefresh::Rebuilt);
        stats.absorb(&ViewRefresh::Patched {
            nodes: 7,
            records: 2,
        });
        stats.absorb(&ViewRefresh::Patched {
            nodes: 3,
            records: 1,
        });
        let mut merged = SnapshotStats::default();
        merged.merge(&stats);
        merged.absorb(&ViewRefresh::Current);
        assert_eq!(merged.reused, 2);
        assert_eq!(merged.full_rebuilds, 1);
        assert_eq!(merged.delta_patches, 2);
        assert_eq!(merged.patched_nodes, 10);
        assert_eq!(
            merged.to_string(),
            "views: 2 reused, 2 patched (10 rows), 1 rebuilt"
        );
    }

    #[test]
    fn deferred_deltas_replay_to_identical_traffic() {
        let (net, ids) = build(150, 11);
        let mut inline = net.clone();
        let mut deferred = net.clone();
        let mut rng = StdRng::seed_from_u64(13);
        let pairs: Vec<(ObjectId, ObjectId)> = (0..80)
            .map(|_| {
                (
                    ids[rng.random_range(0..ids.len())],
                    ids[rng.random_range(0..ids.len())],
                )
            })
            .collect();

        for &(a, b) in &pairs {
            let _ = inline.route_between(a, b).unwrap();
        }

        let mut scratch = RouteScratch::new();
        for &(a, b) in &pairs {
            deferred.route_between_in(a, b, &mut scratch).unwrap();
        }
        deferred.apply_traffic(&scratch.delta);

        assert_eq!(inline.traffic(), deferred.traffic());
        for &id in &ids {
            assert_eq!(inline.sent_by(id), deferred.sent_by(id));
        }
    }

    #[test]
    fn accumulated_application_matches_verbatim_replay() {
        let (net, ids) = build(150, 17);
        let view = FrozenView::new(&net);
        let mut verbatim = net.clone();
        let mut accumulated = net.clone();
        let mut rng = StdRng::seed_from_u64(19);

        let mut scratch_a = RouteScratch::new();
        let mut scratch_b = RouteScratch::new();
        let mut acc_a = TrafficAccumulator::new(&view);
        let mut acc_b = TrafficAccumulator::new(&view);
        for i in 0..120 {
            let from = ids[rng.random_range(0..ids.len())];
            let to = ids[rng.random_range(0..ids.len())];
            let (scratch, acc) = if i % 2 == 0 {
                (&mut scratch_a, &mut acc_a)
            } else {
                (&mut scratch_b, &mut acc_b)
            };
            scratch.delta.clear();
            view.route_between_in(from, to, scratch).unwrap();
            verbatim.apply_traffic(&scratch.delta);
            acc.absorb(&view, &scratch.delta);
        }
        acc_a.merge(&acc_b);
        accumulated.apply_accumulated_traffic(&view, &acc_a);

        assert_eq!(verbatim.traffic(), accumulated.traffic());
        assert_eq!(
            verbatim.traffic().total(),
            net.traffic().total() + acc_a.total()
        );
        for &id in &ids {
            assert_eq!(verbatim.sent_by(id), accumulated.sent_by(id));
        }
    }
}
