//! Dense, generation-indexed storage of per-node protocol state.
//!
//! Every live object of a [`crate::VoroNet`] owns one [`NodeSlot`] in a
//! [`NodeArena`]: its attribute coordinates, its triangulation vertex, the
//! close-neighbour set `cn(o)`, the long-range links `LRn(o)`, the
//! back-long-range pointers `BLRn(o)` and a per-node traffic counter.  The
//! arena replaces the former `HashMap<ObjectId, ObjectState>`:
//!
//! * slots live in one flat `Vec` (slab-style, recycled through a free
//!   list), so iterating all nodes is a linear scan and a slot access from a
//!   [`NodeIndex`] is two array reads — no hashing on the hot path;
//! * each slot carries a *generation* that is bumped on recycling, so a
//!   stale [`NodeIndex`] held across a departure can never alias the node
//!   that reused the slot;
//! * a dense id list maintains the overlay's O(1) uniform-sampling order
//!   (swap-remove on departure, exactly the order the pre-arena
//!   implementation used, so seeded runs replay bit-for-bit).
//!
//! The arena is shared between the synchronous overlay and the asynchronous
//! runtime ([`crate::runtime::AsyncOverlay`]): both read the same slots, the
//! former through [`crate::object::ViewRef`] borrows, the latter when it
//! refreshes a replica at a `NeighborUpdate` boundary.

use crate::object::{BackLink, LongLink, ObjectId};
use std::collections::{BTreeSet, HashMap};
use voronet_geom::{Point2, VertexId};

/// Generation-tagged handle of a node slot in a [`NodeArena`].
///
/// A `NodeIndex` stays valid for exactly as long as the node it was taken
/// for is live: after the node departs, the slot's generation moves on and
/// the index resolves to `None` (never to a different node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeIndex {
    idx: u32,
    generation: u32,
}

impl NodeIndex {
    /// Position of the slot in the arena's backing storage.
    pub fn slot(&self) -> usize {
        self.idx as usize
    }

    /// Generation of the slot this index was taken at.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// Per-node protocol state owned by the arena (Section 3.1 of the paper,
/// minus the Voronoi neighbours, which are derived from the shared
/// tessellation).
#[derive(Debug, Clone)]
pub struct NodeSlot {
    /// The object this slot belongs to.
    pub(crate) id: ObjectId,
    /// Triangulation vertex currently representing the object.
    pub(crate) vertex: VertexId,
    /// Attribute coordinates (immutable for the lifetime of the object).
    pub(crate) coords: Point2,
    /// Close neighbours: objects within `d_min` (symmetric relation).
    pub(crate) close: BTreeSet<ObjectId>,
    /// Long-range links (length = `config.long_links` once established).
    pub(crate) long: Vec<LongLink>,
    /// Back-long-range pointers: links of other objects whose target falls
    /// in this object's region.
    pub(crate) back_long: Vec<BackLink>,
    /// Protocol messages sent by this node while live (a per-node O(1)
    /// mirror of the global `TrafficStats`; departed nodes take their
    /// counter with them).
    pub(crate) sent: u64,
    /// Position in the dense sampling order.
    dense_pos: u32,
}

impl NodeSlot {
    pub(crate) fn new(id: ObjectId, vertex: VertexId, coords: Point2) -> Self {
        NodeSlot {
            id,
            vertex,
            coords,
            close: BTreeSet::new(),
            long: Vec::new(),
            back_long: Vec::new(),
            sent: 0,
            dense_pos: 0,
        }
    }

    /// The object this slot belongs to.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Attribute coordinates of the object.
    pub fn coords(&self) -> Point2 {
        self.coords
    }

    /// Triangulation vertex currently representing the object.
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// Close neighbours `cn(o)`.
    pub fn close(&self) -> &BTreeSet<ObjectId> {
        &self.close
    }

    /// Long-range links `LRn(o)`.
    pub fn long(&self) -> &[LongLink] {
        &self.long
    }

    /// Back-long-range pointers `BLRn(o)`.
    pub fn back_long(&self) -> &[BackLink] {
        &self.back_long
    }

    /// Protocol messages sent by this node while live.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

#[derive(Debug, Clone)]
struct Entry {
    generation: u32,
    node: Option<NodeSlot>,
}

/// Slab-style arena of per-node protocol state with an `ObjectId → index`
/// map and a dense sampling order.  See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct NodeArena {
    entries: Vec<Entry>,
    free: Vec<u32>,
    lookup: HashMap<ObjectId, u32>,
    /// Dense list of live ids: push on join, swap-remove on departure.
    order: Vec<ObjectId>,
}

impl NodeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the arena holds no node.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True when `id` is a live node.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.lookup.contains_key(&id)
    }

    /// The generation-tagged index of a live node (`None` otherwise).
    pub fn index_of(&self, id: ObjectId) -> Option<NodeIndex> {
        let &idx = self.lookup.get(&id)?;
        Some(NodeIndex {
            idx,
            generation: self.entries[idx as usize].generation,
        })
    }

    /// The `pos`-th live node in dense sampling order (`pos < len()`).  The
    /// order is deterministic for a given operation sequence but changes on
    /// removals (swap-remove).
    pub fn id_at(&self, pos: usize) -> Option<ObjectId> {
        self.order.get(pos).copied()
    }

    /// Iterator over live ids in dense sampling order.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.order.iter().copied()
    }

    /// The dense sampling order as a slice — the order a
    /// [`crate::FrozenView`] mirrors, exposed so snapshot maintenance can
    /// assert its patched dense order stayed in lockstep.
    pub fn order(&self) -> &[ObjectId] {
        &self.order
    }

    /// Dense-order position of a live node (`None` otherwise); the inverse
    /// of [`NodeArena::id_at`].
    pub fn dense_pos_of(&self, id: ObjectId) -> Option<usize> {
        self.get(id).map(|s| s.dense_pos as usize)
    }

    /// Protocol messages sent by a live node (`None` for unknown nodes).
    pub fn sent_by(&self, id: ObjectId) -> Option<u64> {
        self.get(id).map(|s| s.sent)
    }

    /// Read access to a live node's slot.
    pub fn get(&self, id: ObjectId) -> Option<&NodeSlot> {
        let &idx = self.lookup.get(&id)?;
        self.entries[idx as usize].node.as_ref()
    }

    /// Read access through a generation-tagged index: `None` when the node
    /// departed (even if the slot was since recycled).
    pub fn get_at(&self, index: NodeIndex) -> Option<&NodeSlot> {
        let entry = self.entries.get(index.slot())?;
        if entry.generation != index.generation {
            return None;
        }
        entry.node.as_ref()
    }

    pub(crate) fn get_mut(&mut self, id: ObjectId) -> Option<&mut NodeSlot> {
        let &idx = self.lookup.get(&id)?;
        self.entries[idx as usize].node.as_mut()
    }

    /// Iterator over all live slots, in slot (allocation) order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeSlot> + '_ {
        self.entries.iter().filter_map(|e| e.node.as_ref())
    }

    /// Bumps the per-node sent counter (no-op for departed nodes).
    pub(crate) fn bump_sent(&mut self, id: ObjectId) {
        if let Some(slot) = self.get_mut(id) {
            slot.sent += 1;
        }
    }

    /// Bumps the per-node sent counter by `n` in one lookup (no-op for
    /// departed nodes) — the bulk form behind
    /// [`crate::VoroNet::apply_accumulated_traffic`].
    pub(crate) fn bump_sent_by(&mut self, id: ObjectId, n: u64) {
        if let Some(slot) = self.get_mut(id) {
            slot.sent += n;
        }
    }

    /// Inserts a node, returning its generation-tagged index.
    ///
    /// # Panics
    /// Panics if `slot.id` is already live (object ids are never reused).
    pub(crate) fn insert(&mut self, mut slot: NodeSlot) -> NodeIndex {
        let id = slot.id;
        slot.dense_pos = self.order.len() as u32;
        self.order.push(id);
        let idx = match self.free.pop() {
            Some(idx) => {
                let entry = &mut self.entries[idx as usize];
                debug_assert!(entry.node.is_none());
                entry.node = Some(slot);
                idx
            }
            None => {
                self.entries.push(Entry {
                    generation: 0,
                    node: Some(slot),
                });
                (self.entries.len() - 1) as u32
            }
        };
        let previous = self.lookup.insert(id, idx);
        assert!(previous.is_none(), "object ids are never reused");
        NodeIndex {
            idx,
            generation: self.entries[idx as usize].generation,
        }
    }

    /// Removes a node, returning its state.  The slot's generation is bumped
    /// so outstanding [`NodeIndex`] handles go stale, and the dense order is
    /// patched by swap-remove.
    pub(crate) fn remove(&mut self, id: ObjectId) -> Option<NodeSlot> {
        let idx = self.lookup.remove(&id)?;
        let entry = &mut self.entries[idx as usize];
        let slot = entry.node.take().expect("lookup entries are live");
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(idx);
        let pos = slot.dense_pos as usize;
        self.order.swap_remove(pos);
        if pos < self.order.len() {
            let moved = self.order[pos];
            let moved_idx = self.lookup[&moved] as usize;
            self.entries[moved_idx]
                .node
                .as_mut()
                .expect("dense order only holds live nodes")
                .dense_pos = pos as u32;
        }
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(id: u64) -> NodeSlot {
        NodeSlot::new(
            ObjectId(id),
            id as VertexId + 4,
            Point2::new(id as f64 * 0.01, 0.5),
        )
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut arena = NodeArena::new();
        assert!(arena.is_empty());
        let ia = arena.insert(slot(0));
        let ib = arena.insert(slot(1));
        assert_eq!(arena.len(), 2);
        assert!(arena.contains(ObjectId(0)));
        assert_eq!(arena.get(ObjectId(1)).unwrap().vertex(), 5);
        assert_eq!(arena.get_at(ia).unwrap().id(), ObjectId(0));
        assert_eq!(arena.index_of(ObjectId(1)), Some(ib));

        let removed = arena.remove(ObjectId(0)).unwrap();
        assert_eq!(removed.id(), ObjectId(0));
        assert!(!arena.contains(ObjectId(0)));
        assert!(arena.remove(ObjectId(0)).is_none());
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn stale_indices_never_alias_recycled_slots() {
        let mut arena = NodeArena::new();
        let ia = arena.insert(slot(0));
        arena.remove(ObjectId(0)).unwrap();
        assert!(arena.get_at(ia).is_none(), "index must die with its node");
        // The freed slot is recycled by the next insertion...
        let ib = arena.insert(slot(7));
        assert_eq!(ib.slot(), ia.slot());
        assert_ne!(ib.generation(), ia.generation());
        // ...and the stale index still resolves to nothing.
        assert!(arena.get_at(ia).is_none());
        assert_eq!(arena.get_at(ib).unwrap().id(), ObjectId(7));
    }

    #[test]
    fn dense_order_swap_removes_like_a_vec() {
        let mut arena = NodeArena::new();
        for i in 0..5 {
            arena.insert(slot(i));
        }
        // Mirror of the expected order bookkeeping.
        let mut mirror: Vec<u64> = (0..5).collect();
        for &victim in &[1u64, 4, 0] {
            let pos = mirror.iter().position(|&x| x == victim).unwrap();
            mirror.swap_remove(pos);
            arena.remove(ObjectId(victim)).unwrap();
            let got: Vec<u64> = arena.ids().map(|o| o.0).collect();
            assert_eq!(got, mirror);
            for (pos, &id) in mirror.iter().enumerate() {
                assert_eq!(arena.id_at(pos), Some(ObjectId(id)));
            }
        }
    }

    #[test]
    fn sent_counters_live_with_the_node() {
        let mut arena = NodeArena::new();
        arena.insert(slot(3));
        arena.bump_sent(ObjectId(3));
        arena.bump_sent(ObjectId(3));
        arena.bump_sent(ObjectId(99)); // unknown: no-op
        assert_eq!(arena.sent_by(ObjectId(3)), Some(2));
        assert_eq!(arena.sent_by(ObjectId(99)), None);
        arena.remove(ObjectId(3)).unwrap();
        assert_eq!(arena.sent_by(ObjectId(3)), None);
    }

    #[test]
    fn iter_visits_every_live_slot_once() {
        let mut arena = NodeArena::new();
        for i in 0..10 {
            arena.insert(slot(i));
        }
        for i in (0..10).step_by(2) {
            arena.remove(ObjectId(i)).unwrap();
        }
        let mut seen: Vec<u64> = arena.iter().map(|s| s.id().0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }
}
