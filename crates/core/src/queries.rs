//! Rich query mechanisms over the overlay (the paper's "perspectives"
//! section): rectangular range queries and radius (disk) queries.
//!
//! Both exploit the property the paper highlights: objects with similar
//! attribute values are Voronoi neighbours, so after greedy-routing to any
//! object inside the queried area the remaining matches are reachable by a
//! local flood along Voronoi edges whose cells intersect the area.  The
//! number of extra messages is proportional to the number of cells touched,
//! not to the overlay size.

use crate::object::ObjectId;
use crate::overlay::{OverlayError, VoroNet};
use crate::snapshot::RouteScratch;
use voronet_geom::{voronoi_cell, Point2, Rect};
use voronet_sim::MessageKind;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// Result of a range or radius query.
#[derive(Debug, Clone)]
pub struct AreaQueryReport {
    /// Objects whose coordinates satisfy the query predicate.
    pub matches: Vec<ObjectId>,
    /// Hops of the initial greedy route towards the query area.
    pub routing_hops: u32,
    /// Messages exchanged during the local flood phase.
    pub flood_messages: u64,
    /// Objects visited by the flood (matching or not): the query's load
    /// footprint.
    pub visited: usize,
}

/// Executes a rectangular range query issued by `from`.
///
/// The query is routed greedily to the owner of the rectangle's centre, then
/// flooded outwards along Voronoi edges: an object forwards the query to a
/// Voronoi neighbour whenever that neighbour's cell could still intersect
/// the rectangle (approximated by "the neighbour is a Voronoi neighbour of a
/// visited object whose cell intersects the rectangle").
pub fn range_query(
    net: &mut VoroNet,
    from: ObjectId,
    query: RangeQuery,
) -> Result<AreaQueryReport, OverlayError> {
    let mut scratch = RouteScratch::new();
    let report = range_query_in(net, from, query, &mut scratch)?;
    net.apply_traffic(&scratch.delta);
    Ok(report)
}

/// The `&self` form of [`range_query`]: computes into a caller-owned
/// [`RouteScratch`] (the accounting is appended to `scratch.delta` for the
/// caller to apply) and never mutates the overlay, so concurrent readers
/// can share one `&VoroNet`.
pub fn range_query_in(
    net: &VoroNet,
    from: ObjectId,
    query: RangeQuery,
    scratch: &mut RouteScratch,
) -> Result<AreaQueryReport, OverlayError> {
    area_query_in(
        net,
        from,
        query.rect.center(),
        move |p, cell_hits| query.rect.contains(p) || cell_hits,
        move |net, id| cell_intersects_rect(net, id, query.rect),
        scratch,
    )
}

/// Executes a radius (disk) query issued by `from`.
pub fn radius_query(
    net: &mut VoroNet,
    from: ObjectId,
    query: RadiusQuery,
) -> Result<AreaQueryReport, OverlayError> {
    let mut scratch = RouteScratch::new();
    let report = radius_query_in(net, from, query, &mut scratch)?;
    net.apply_traffic(&scratch.delta);
    Ok(report)
}

/// The `&self` form of [`radius_query`]; see [`range_query_in`].
pub fn radius_query_in(
    net: &VoroNet,
    from: ObjectId,
    query: RadiusQuery,
    scratch: &mut RouteScratch,
) -> Result<AreaQueryReport, OverlayError> {
    let r2 = query.radius * query.radius;
    area_query_in(
        net,
        from,
        query.center,
        move |p, _| p.distance2(query.center) <= r2,
        move |net, id| cell_intersects_disk(net, id, query),
        scratch,
    )
}

fn cell_intersects_rect(net: &VoroNet, id: ObjectId, rect: Rect) -> bool {
    let Some(coords) = net.coords(id) else {
        return false;
    };
    if rect.contains(coords) {
        return true;
    }
    let Some(vertex) = net.vertex_of(id) else {
        return false;
    };
    let cell = voronoi_cell(net.triangulation(), vertex);
    !cell.clipped(rect).is_empty()
}

fn cell_intersects_disk(net: &VoroNet, id: ObjectId, query: RadiusQuery) -> bool {
    let Some(coords) = net.coords(id) else {
        return false;
    };
    if coords.distance(query.center) <= query.radius {
        return true;
    }
    let Some(vertex) = net.vertex_of(id) else {
        return false;
    };
    let cell = voronoi_cell(net.triangulation(), vertex);
    let poly = &cell.polygon.vertices;
    if poly.len() < 2 {
        return false;
    }
    let n = poly.len();
    (0..n).any(|i| query.center.distance_to_segment(poly[i], poly[(i + 1) % n]) <= query.radius)
}

/// Common flood skeleton shared by range and radius queries, side-effect
/// free on `&self`: the walk and flood work-lists live in the scratch, the
/// route and flood accounting is appended to `scratch.delta`.
fn area_query_in(
    net: &VoroNet,
    from: ObjectId,
    anchor: Point2,
    matches: impl Fn(Point2, bool) -> bool,
    cell_touches_area: impl Fn(&VoroNet, ObjectId) -> bool,
    scratch: &mut RouteScratch,
) -> Result<AreaQueryReport, OverlayError> {
    let (owner, routing_hops) = net.route_to_point_in(from, anchor, scratch)?;
    let RouteScratch {
        delta,
        visited,
        frontier,
        neighbours,
        ..
    } = scratch;
    visited.clear();
    frontier.clear();
    frontier.push(owner);
    visited.insert(owner);
    let mut flood_messages = 0u64;
    let mut results = Vec::new();
    while let Some(cur) = frontier.pop() {
        let coords = net.coords(cur).expect("visited objects are live");
        let touches = cell_touches_area(net, cur);
        if matches(coords, false) {
            results.push(cur);
        }
        if !touches {
            continue;
        }
        net.voronoi_neighbours_into(cur, neighbours)?;
        for &n in neighbours.iter() {
            if visited.insert(n) {
                flood_messages += 1;
                delta.push(cur, MessageKind::Other);
                frontier.push(n);
            }
        }
    }
    results.sort_unstable();
    Ok(AreaQueryReport {
        matches: results,
        routing_hops,
        flood_messages,
        visited: visited.len(),
    })
}

fn record_flood_message(net: &mut VoroNet, from: ObjectId) {
    net.record_message(from, MessageKind::Other);
}

/// Result of a segment (one-attribute range) query.
#[derive(Debug, Clone)]
pub struct SegmentQueryReport {
    /// Objects responsible for some part of the segment, ordered by the
    /// position of their closest segment point (so forwarding the query along
    /// this list walks the segment from `a` to `b`).
    pub responsible: Vec<ObjectId>,
    /// Hops of the initial greedy route to the owner of the segment start.
    pub routing_hops: u32,
    /// Messages exchanged while walking/flooding along the segment.
    pub flood_messages: u64,
}

/// Executes a segment query: a range query over a single attribute with the
/// other attribute fixed is exactly a segment of the unit square (paper,
/// Section 7), and the objects that must be contacted are those whose
/// Voronoi regions intersect the segment.
///
/// The query is routed to the owner of the segment's start point, then
/// propagated along Voronoi edges between cells that intersect the segment.
pub fn segment_query(
    net: &mut VoroNet,
    from: ObjectId,
    a: Point2,
    b: Point2,
) -> Result<SegmentQueryReport, OverlayError> {
    let route = net.route_to_point(from, a)?;
    let mut visited = std::collections::BTreeSet::new();
    let mut responsible = Vec::new();
    let mut frontier = vec![route.owner];
    visited.insert(route.owner);
    let mut flood_messages = 0u64;
    let mut neighbours = Vec::new();
    while let Some(cur) = frontier.pop() {
        if !cell_intersects_segment(net, cur, a, b) {
            continue;
        }
        responsible.push(cur);
        net.voronoi_neighbours_into(cur, &mut neighbours)?;
        for &n in &neighbours {
            if visited.insert(n) {
                flood_messages += 1;
                record_flood_message(net, cur);
                frontier.push(n);
            }
        }
    }
    // Order along the segment so the caller can split or pipeline the query.
    let ab = b.sub(a);
    let len2 = ab.norm2().max(f64::MIN_POSITIVE);
    responsible.sort_by(|&x, &y| {
        let tx = (net.coords(x).expect("live").sub(a).dot(ab) / len2).clamp(0.0, 1.0);
        let ty = (net.coords(y).expect("live").sub(a).dot(ab) / len2).clamp(0.0, 1.0);
        tx.partial_cmp(&ty).unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(SegmentQueryReport {
        responsible,
        routing_hops: route.hops,
        flood_messages,
    })
}

fn cell_intersects_segment(net: &VoroNet, id: ObjectId, a: Point2, b: Point2) -> bool {
    let Some(vertex) = net.vertex_of(id) else {
        return false;
    };
    let cell = voronoi_cell(net.triangulation(), vertex);
    let poly = &cell.polygon.vertices;
    if poly.len() < 3 {
        return false;
    }
    // The cell (a convex polygon) intersects the segment iff either endpoint
    // is inside, or some cell edge comes within zero distance of the segment.
    if cell.polygon.contains(a) || cell.polygon.contains(b) {
        return true;
    }
    let n = poly.len();
    (0..n).any(|i| segments_intersect(poly[i], poly[(i + 1) % n], a, b))
}

fn segments_intersect(p1: Point2, p2: Point2, q1: Point2, q2: Point2) -> bool {
    use voronet_geom::{orient2d, Orientation};
    let d1 = orient2d(q1, q2, p1);
    let d2 = orient2d(q1, q2, p2);
    let d3 = orient2d(p1, p2, q1);
    let d4 = orient2d(p1, p2, q2);
    if ((d1 == Orientation::Positive && d2 == Orientation::Negative)
        || (d1 == Orientation::Negative && d2 == Orientation::Positive))
        && ((d3 == Orientation::Positive && d4 == Orientation::Negative)
            || (d3 == Orientation::Negative && d4 == Orientation::Positive))
    {
        return true;
    }
    let on_segment = |a: Point2, b: Point2, p: Point2| {
        p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
    };
    (d1 == Orientation::Zero && on_segment(q1, q2, p1))
        || (d2 == Orientation::Zero && on_segment(q1, q2, p2))
        || (d3 == Orientation::Zero && on_segment(p1, p2, q1))
        || (d4 == Orientation::Zero && on_segment(p1, p2, q2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VoroNetConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use voronet_geom::Point2;

    fn build(n: usize, seed: u64) -> (VoroNet, Vec<ObjectId>) {
        let mut net = VoroNet::new(VoroNetConfig::new(n).with_seed(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = Vec::new();
        while ids.len() < n {
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            if let Ok(r) = net.insert(p) {
                ids.push(r.id);
            }
        }
        (net, ids)
    }

    #[test]
    fn range_query_finds_exactly_the_objects_in_the_rectangle() {
        let (mut net, ids) = build(300, 5);
        let rect = Rect::new(Point2::new(0.2, 0.3), Point2::new(0.6, 0.7));
        let expected: Vec<ObjectId> = {
            let mut v: Vec<ObjectId> = ids
                .iter()
                .copied()
                .filter(|&id| rect.contains(net.coords(id).unwrap()))
                .collect();
            v.sort_unstable();
            v
        };
        let report = range_query(&mut net, ids[0], RangeQuery { rect }).unwrap();
        assert_eq!(report.matches, expected);
        assert!(report.visited >= report.matches.len());
    }

    #[test]
    fn radius_query_finds_exactly_the_objects_in_the_disk() {
        let (mut net, ids) = build(300, 7);
        let q = RadiusQuery {
            center: Point2::new(0.5, 0.5),
            radius: 0.2,
        };
        let expected: Vec<ObjectId> = {
            let mut v: Vec<ObjectId> = ids
                .iter()
                .copied()
                .filter(|&id| net.coords(id).unwrap().distance(q.center) <= q.radius)
                .collect();
            v.sort_unstable();
            v
        };
        let report = radius_query(&mut net, ids[10], q).unwrap();
        assert_eq!(report.matches, expected);
    }

    #[test]
    fn empty_area_queries_return_no_match() {
        let (mut net, ids) = build(100, 9);
        // A rectangle so tiny it almost surely contains no object.
        let rect = Rect::new(
            Point2::new(0.123456, 0.654321),
            Point2::new(0.123457, 0.654322),
        );
        let report = range_query(&mut net, ids[0], RangeQuery { rect }).unwrap();
        assert!(report.matches.len() <= 1);
        let disk = RadiusQuery {
            center: Point2::new(0.111, 0.999),
            radius: 1e-9,
        };
        let report = radius_query(&mut net, ids[0], disk).unwrap();
        assert!(report.matches.is_empty());
    }

    #[test]
    fn query_from_unknown_object_fails() {
        let (mut net, _) = build(20, 11);
        let err = range_query(&mut net, ObjectId(10_000), RangeQuery { rect: Rect::UNIT });
        assert!(err.is_err());
    }

    #[test]
    fn segment_query_covers_the_owners_along_the_segment() {
        let (mut net, ids) = build(400, 21);
        let a = Point2::new(0.1, 0.5);
        let b = Point2::new(0.9, 0.5);
        let report = segment_query(&mut net, ids[0], a, b).unwrap();
        assert!(!report.responsible.is_empty());
        // Every sampled point of the segment must be owned by one of the
        // reported objects.
        for i in 0..=100 {
            let p = a.lerp(b, i as f64 / 100.0);
            let owner = net.owner_of(p).unwrap();
            assert!(
                report.responsible.contains(&owner),
                "owner {owner} of segment point {p} missing from the segment query result"
            );
        }
        // The result is ordered along the segment.
        let ts: Vec<f64> = report
            .responsible
            .iter()
            .map(|&id| {
                (net.coords(id).unwrap().sub(a).dot(b.sub(a)) / b.sub(a).norm2()).clamp(0.0, 1.0)
            })
            .collect();
        for w in ts.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn degenerate_segment_query_is_a_point_query() {
        let (mut net, ids) = build(150, 23);
        let p = Point2::new(0.37, 0.61);
        let report = segment_query(&mut net, ids[0], p, p).unwrap();
        let owner = net.owner_of(p).unwrap();
        assert!(report.responsible.contains(&owner));
    }

    #[test]
    fn flood_footprint_is_local_for_small_areas() {
        let (mut net, ids) = build(500, 13);
        let rect = Rect::new(Point2::new(0.4, 0.4), Point2::new(0.45, 0.45));
        let report = range_query(&mut net, ids[3], RangeQuery { rect }).unwrap();
        assert!(
            report.visited < 120,
            "a tiny range query should not touch a large fraction of a 500-object overlay (visited {})",
            report.visited
        );
    }
}
