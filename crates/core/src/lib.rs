//! # voronet-core
//!
//! The VoroNet object overlay (Beaumont, Kermarrec, Marchal, Rivière —
//! *VoroNet: A scalable object network based on Voronoi tessellations*,
//! IPDPS 2007): application objects are peers of a 2-D attribute space,
//! linked according to the Voronoi tessellation of the object set plus
//! Kleinberg-style long-range links, giving `O(log² N)` greedy routing for
//! arbitrary (including heavily skewed) object distributions.
//!
//! * [`VoroNet`] — the overlay: decentralised join ([`VoroNet::insert`]),
//!   departure ([`VoroNet::remove`]), greedy routing
//!   ([`VoroNet::route_to_point`]) and query handling, with per-message
//!   traffic accounting;
//! * [`VoroNetConfig`] — `N_max`, the number of long links and `d_min`;
//! * [`queries`] — range and radius queries (the paper's perspectives);
//! * [`experiments`] — drivers that regenerate each figure of the paper's
//!   evaluation;
//! * [`runtime`] — the protocol executing message-by-message over the
//!   asynchronous per-node runtime of `voronet-sim`: scripted churn under
//!   latency, loss and partitions ([`AsyncOverlay`], [`run_scenario`]).
//!
//! ```
//! use voronet_core::{VoroNet, VoroNetConfig};
//! use voronet_geom::Point2;
//!
//! let mut net = VoroNet::new(VoroNetConfig::new(1_000).with_seed(7));
//! let a = net.insert(Point2::new(0.1, 0.2)).unwrap().id;
//! let b = net.insert(Point2::new(0.8, 0.9)).unwrap().id;
//! let route = net.route_between(a, b).unwrap();
//! assert_eq!(route.owner, b);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod dynamic;
pub mod error;
pub mod experiments;
pub mod object;
pub mod overlay;
pub mod protocol;
pub mod queries;
pub mod runtime;
pub mod snapshot;

pub use arena::{NodeArena, NodeIndex, NodeSlot};
pub use config::{DminRule, VoroNetConfig};
pub use dynamic::{adapt_nmax, AdaptationPolicy, AdaptationReport, RefreshStrategy};
pub use error::{ErrorKind, VoronetError};
pub use object::{BackLink, LinkIndex, LongLink, ObjectId, ObjectView, ViewRef};
pub use overlay::{
    InvariantAudit, JoinError, JoinReport, LeaveReport, OverlayError, RouteReport, VoroNet,
};
pub use protocol::{algorithm5_route, Algorithm5Report, StopReason};
pub use queries::{
    radius_query, radius_query_in, range_query, range_query_in, segment_query, AreaQueryReport,
    SegmentQueryReport,
};
pub use runtime::{
    run_scenario, AsyncOverlay, OpToken, ProtocolMsg, RoutePurpose, RoutingMode, ScenarioCounters,
    ScenarioReport, WireTap, UNTRACKED,
};
pub use snapshot::{
    FrozenView, RouteScratch, SnapshotStats, TrafficAccumulator, TrafficDelta, ViewGenerations,
    ViewRefresh,
};
