//! Experiment drivers shared by the bench harness, the examples and the
//! integration tests.
//!
//! Each figure of the paper's evaluation (Section 5) reduces to one of the
//! helpers below:
//!
//! * Figure 5 — [`degree_distribution`]: histogram of `|vn(o)|` at full size;
//! * Figure 6 — [`route_length_growth`]: mean greedy route length sampled
//!   while the overlay grows, for one object distribution;
//! * Figure 7 — derived from the Figure 6 series via
//!   [`voronet_stats::fit_loglog_exponent`];
//! * Figure 8 — [`long_link_sweep`]: mean route length as a function of the
//!   number of long-range links per object.

use crate::config::VoroNetConfig;
use crate::object::ObjectId;
use crate::overlay::VoroNet;
use voronet_stats::{IntHistogram, Series};
use voronet_workloads::{Distribution, PointGenerator, QueryGenerator};

/// Parameters of a growth experiment (Figures 6/7).
#[derive(Debug, Clone, Copy)]
pub struct GrowthExperiment {
    /// Final overlay size.
    pub max_objects: usize,
    /// Measurement interval: mean route length is sampled every
    /// `step` insertions (the paper uses 10 000).
    pub step: usize,
    /// Number of random object pairs measured at each sample point (the
    /// paper uses 100 000).
    pub pairs_per_sample: usize,
    /// Long links per object.
    pub long_links: usize,
    /// Seed for workload and protocol randomness.
    pub seed: u64,
}

impl Default for GrowthExperiment {
    fn default() -> Self {
        GrowthExperiment {
            max_objects: 300_000,
            step: 10_000,
            pairs_per_sample: 100_000,
            long_links: 1,
            seed: 2006,
        }
    }
}

impl GrowthExperiment {
    /// A laptop-scale variant preserving the experiment's shape (used by the
    /// default bench run and the tests).
    pub fn quick(max_objects: usize) -> Self {
        GrowthExperiment {
            max_objects,
            step: (max_objects / 6).max(1),
            pairs_per_sample: 2_000,
            long_links: 1,
            seed: 2006,
        }
    }
}

/// Builds an overlay of `n` objects drawn from `dist`.
///
/// Duplicate positions produced by the skewed generators are re-drawn, so the
/// returned overlay always holds exactly `n` objects.
pub fn build_overlay(
    dist: Distribution,
    n: usize,
    config: VoroNetConfig,
) -> (VoroNet, Vec<ObjectId>) {
    let mut net = VoroNet::new(config);
    let mut generator = PointGenerator::with_domain(dist, config.seed ^ 0x9E3779B9, config.domain);
    let mut ids = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while ids.len() < n {
        attempts += 1;
        assert!(
            attempts < 20 * n + 1000,
            "workload generator failed to produce {n} distinct positions"
        );
        let p = generator.next_point();
        match net.insert(p) {
            Ok(report) => ids.push(report.id),
            Err(crate::overlay::JoinError::DuplicatePosition(_)) => continue,
            Err(e) => panic!("unexpected join failure while building workload: {e}"),
        }
    }
    (net, ids)
}

/// Mean greedy route length over `pairs` random object pairs.
pub fn mean_route_length(net: &mut VoroNet, ids: &[ObjectId], pairs: usize, seed: u64) -> f64 {
    let mut qg = QueryGenerator::new(seed);
    let pair_ids: Vec<(ObjectId, ObjectId)> = qg
        .object_pairs(ids.len(), pairs)
        .into_iter()
        .map(|(a, b)| (ids[a], ids[b]))
        .collect();
    net.measure_routes(&pair_ids).mean()
}

/// Figure 5: the distribution of Voronoi out-degrees for an overlay of `n`
/// objects drawn from `dist`.
pub fn degree_distribution(dist: Distribution, n: usize, seed: u64) -> IntHistogram {
    let cfg = VoroNetConfig::new(n).with_seed(seed);
    let (net, _) = build_overlay(dist, n, cfg);
    net.degree_histogram()
}

/// Figure 6: mean route length as a function of overlay size, for one
/// distribution.  Returns a series with one point per `step` insertions.
pub fn route_length_growth(dist: Distribution, exp: GrowthExperiment) -> Series {
    let cfg = VoroNetConfig::new(exp.max_objects)
        .with_long_links(exp.long_links)
        .with_seed(exp.seed);
    let mut net = VoroNet::new(cfg);
    let mut generator = PointGenerator::with_domain(dist, exp.seed ^ 0x51ED, cfg.domain);
    let mut ids = Vec::with_capacity(exp.max_objects);
    let mut series = Series::new(dist.label());
    let mut attempts = 0usize;
    while ids.len() < exp.max_objects {
        attempts += 1;
        assert!(
            attempts < 20 * exp.max_objects + 1000,
            "workload generator failed to produce enough distinct positions"
        );
        let p = generator.next_point();
        match net.insert(p) {
            Ok(report) => ids.push(report.id),
            Err(crate::overlay::JoinError::DuplicatePosition(_)) => continue,
            Err(e) => panic!("unexpected join failure: {e}"),
        }
        if ids.len() % exp.step == 0 && ids.len() >= 2 {
            let mean = mean_route_length(
                &mut net,
                &ids,
                exp.pairs_per_sample,
                exp.seed ^ ids.len() as u64,
            );
            series.push(ids.len() as f64, mean);
        }
    }
    series
}

/// Figure 8: mean route length at full size for each number of long links in
/// `1..=max_links`, for one distribution.
pub fn long_link_sweep(
    dist: Distribution,
    n: usize,
    max_links: usize,
    pairs: usize,
    seed: u64,
) -> Series {
    let mut series = Series::new(dist.label());
    for k in 1..=max_links {
        let cfg = VoroNetConfig::new(n)
            .with_long_links(k)
            .with_seed(seed + k as u64);
        let (mut net, ids) = build_overlay(dist, n, cfg);
        let mean = mean_route_length(&mut net, &ids, pairs, seed ^ (k as u64) << 8);
        series.push(k as f64, mean);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_overlay_respects_size_and_distribution() {
        let cfg = VoroNetConfig::new(200).with_seed(1);
        let (net, ids) = build_overlay(Distribution::PowerLaw { alpha: 2.0 }, 200, cfg);
        assert_eq!(net.len(), 200);
        assert_eq!(ids.len(), 200);
        net.check_invariants(false).unwrap();
    }

    #[test]
    fn degree_distribution_centres_near_six() {
        let h = degree_distribution(Distribution::Uniform, 600, 3);
        assert_eq!(h.total(), 600);
        let mode = h.mode().unwrap();
        assert!((5..=7).contains(&mode), "degree mode {mode} not near 6");
    }

    #[test]
    fn route_growth_series_has_expected_shape() {
        let exp = GrowthExperiment {
            max_objects: 600,
            step: 200,
            pairs_per_sample: 200,
            long_links: 1,
            seed: 5,
        };
        let s = route_length_growth(Distribution::Uniform, exp);
        assert_eq!(s.len(), 3);
        assert!(s.points.iter().all(|&(_, y)| y >= 1.0));
    }

    #[test]
    fn more_long_links_do_not_hurt_routing() {
        let s = long_link_sweep(Distribution::Uniform, 400, 3, 300, 11);
        assert_eq!(s.len(), 3);
        let k1 = s.points[0].1;
        let k3 = s.points[2].1;
        assert!(
            k3 <= k1 * 1.1,
            "routing with 3 long links ({k3}) should not be worse than with 1 ({k1})"
        );
    }
}
