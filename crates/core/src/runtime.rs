//! Message-driven execution of the VoroNet protocol on the asynchronous
//! per-node runtime of `voronet-sim`.
//!
//! The rest of this crate executes every operation synchronously inside one
//! [`VoroNet`] value — the right tool for reproducing the paper's figures,
//! where only logical counts matter.  This module is the asynchronous
//! counterpart: every live object becomes an independent state machine (a
//! `NodeState` holding the view snapshot it captured at its last refresh,
//! pre-flattened into a routing table), and every protocol step is a typed
//! [`ProtocolMsg`] travelling through a [`Runtime`] under a pluggable
//! [`NetworkModel`] — latency, loss and partition windows included.
//!
//! ## What is distributed and what is shared
//!
//! The authoritative per-node state lives once, in the
//! [`crate::arena::NodeArena`] shared with the synchronous overlay; replicas
//! read through it only at *refresh boundaries* (spawn and
//! [`ProtocolMsg::NeighborUpdate`] delivery), where the borrowed
//! [`crate::ViewRef`] is materialised into the owned [`ObjectView`] snapshot
//! that a real deployment would have received in the message body.  Routing
//! decisions are made *purely from that local snapshot*: a node forwards a
//! [`ProtocolMsg::RouteStep`] by scanning its flat `(peer, coords)` routing
//! table — coordinates are immutable object identifiers, so inlining them
//! is caching, not sharing — and allocates nothing per hop.  Under message
//! loss, snapshots go stale and routes can dead-letter at departed nodes —
//! exactly the failure modes a decentralised deployment would see.
//! Structural mutations (`AddVoronoiRegion` / `RemoveVoronoiRegion`) are
//! applied to the shared authoritative tessellation once the triggering
//! message *arrives* at the responsible node, standing in for the purely
//! local Sugihara–Iri incremental construction of the paper; the resulting
//! view changes then propagate to the affected nodes as
//! [`ProtocolMsg::NeighborUpdate`] messages that are themselves subject to
//! network conditions.  (The routing hops of long-link establishment are
//! likewise folded into the join; see `JoinReport::long_link_hops` for the
//! synchronous accounting.)
//!
//! On a loss-free network at quiescence every cached view equals the
//! authoritative view, and the message-driven greedy route takes the exact
//! same steps as [`VoroNet::route_to_point`] — asserted by the tests in
//! `tests/async_runtime.rs`.
//!
//! ## Determinism
//!
//! For a fixed overlay config, scenario and network seed, two runs produce
//! identical [`ScenarioReport`]s (traffic, route samples, delivery counters)
//! — the scheduler breaks ties deterministically and both the network model
//! and the workload RNG consume randomness in event order.

use crate::config::VoroNetConfig;
use crate::error::{ErrorKind, VoronetError};
use crate::object::{ObjectId, ObjectView};
use crate::overlay::{JoinError, VoroNet};
use crate::queries::{radius_query, range_query, AreaQueryReport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use voronet_geom::{distance_to_region, Point2, Rect};
use voronet_sim::{
    Delivered, DeliveryStats, MessageKind, NetworkModel, NodeId, RouteStats, Runtime, Scenario,
    ScenarioOp, SimTime, TrafficStats,
};
use voronet_workloads::{RadiusQuery, RangeQuery};

/// Highest provisional sender id handed to joining objects.  Each join
/// request is sent from a *unique* provisional id counting down from here,
/// so joiners are spread across partition components like any other host
/// instead of all sharing one component.  Provisional ids never collide
/// with object ids, which count up from zero.
pub const JOINER: NodeId = NodeId::MAX;

/// True when `node` is a provisional joiner id rather than a live object
/// (useful when interpreting per-sender traffic).
pub fn is_joiner(node: NodeId) -> bool {
    node > NodeId::MAX - (1 << 32)
}

/// Correlation token attached to externally issued operations so their
/// results can be collected after quiescence.  `UNTRACKED` (0) marks
/// scenario-scripted operations whose individual results nobody waits for.
pub type OpToken = u64;

/// Token of operations whose result is not collected (scripted scenario
/// traffic).
pub const UNTRACKED: OpToken = 0;

/// Why a route is being executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutePurpose {
    /// Locate the region owner for a joining object, then insert it there.
    Join {
        /// Position of the joining object.
        position: Point2,
        /// Result-correlation token ([`UNTRACKED`] for scripted joins).
        token: OpToken,
    },
    /// A point query: record the hop count and answer the origin.
    Query {
        /// Result-correlation token ([`UNTRACKED`] for scripted routes).
        token: OpToken,
    },
    /// An area query: on arrival, flood the target rectangle.
    AreaQuery {
        /// Queried rectangle.
        rect: Rect,
        /// Result-correlation token ([`UNTRACKED`] for scripted queries).
        token: OpToken,
    },
    /// A radius (disk) query: on arrival, flood the target disk.
    RadiusQuery {
        /// Queried disk.
        query: RadiusQuery,
        /// Result-correlation token ([`UNTRACKED`] for scripted queries).
        token: OpToken,
    },
}

/// A typed protocol message exchanged between per-node state machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolMsg {
    /// Request from a not-yet-joined object to its bootstrap node.
    Join {
        /// Position the new object wants to publish.
        position: Point2,
        /// Result-correlation token ([`UNTRACKED`] for scripted joins).
        token: OpToken,
    },
    /// One greedy forwarding step (`Spawn(Route, …)` in the paper).
    RouteStep {
        /// Point the route converges towards.
        target: Point2,
        /// Node that initiated the route (receives the answer).
        origin: NodeId,
        /// Forwarding steps taken so far.
        hops: u32,
        /// What to do on arrival.
        purpose: RoutePurpose,
    },
    /// "Your neighbourhood changed — refresh your view."  Carries the
    /// updated view implicitly (the receiving state machine pulls it from
    /// the authoritative tessellation on delivery).
    NeighborUpdate,
    /// Departure notification from `RemoveVoronoiRegion`.
    Leave,
    /// Liveness probe; `reply` distinguishes the echo.
    Ping {
        /// True on the echo leg.
        reply: bool,
    },
    /// Route answer delivered back to the origin.
    Answer {
        /// Hop count of the completed route.
        hops: u32,
        /// Result-correlation token of the operation being answered
        /// ([`UNTRACKED`] for scripted traffic).
        token: OpToken,
    },
}

/// A hook through which every [`ProtocolMsg`] the asynchronous runtime
/// sends can be passed before entering the (simulated) network.
///
/// `voronet-net` installs its frame codec here: the message is encoded
/// into a wire frame and decoded back, so the simulated path exercises
/// the exact bytes a deployed node would exchange while delivery
/// decisions, timing and accounting stay bit-identical — pinned by
/// `tests/api_conformance.rs`.
pub trait WireTap: Send {
    /// Transforms a message on its way into the network.  A transparent
    /// codec returns a value equal to `msg`; the conformance suite
    /// asserts the whole run is unchanged.
    fn roundtrip(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: MessageKind,
        msg: ProtocolMsg,
    ) -> ProtocolMsg;

    /// Clones the tap for [`AsyncOverlay`]'s `Clone` implementation.
    fn clone_box(&self) -> Box<dyn WireTap>;
}

impl Clone for Box<dyn WireTap> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// How `RouteStep` messages pick the next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Plain greedy walk to the owner (the walk measured by Figures 6–8).
    #[default]
    Greedy,
    /// Algorithm 5: greedy walk with the paper's early-stop condition
    /// (`d(z, t) ≤ ⅓·d(t, cur)` or `d(t, cur) ≤ d_min`) followed by local
    /// resolution, as in [`crate::protocol::algorithm5_route`].
    Algorithm5,
}

/// Per-node replica state: what this object knows locally — the snapshot it
/// captured from the shared arena the last time a refresh reached it.
#[derive(Debug, Clone)]
struct NodeState {
    /// Owned view snapshot (the `NeighborUpdate` message payload).
    view: ObjectView,
    /// The view's routing neighbours (`vn ∪ cn ∪ LRn`, sorted, deduped)
    /// flattened into one slice with each peer's coordinates inlined
    /// (attribute coordinates are immutable, so the cache can only be
    /// incomplete, never wrong).  `RouteStep` scans this without touching
    /// the heap.
    routing: Vec<(ObjectId, Point2)>,
}

/// Operation counters of one scenario execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioCounters {
    /// Join operations injected.
    pub joins_requested: u64,
    /// Joins whose insertion completed.
    pub joins_completed: u64,
    /// Joins rejected (duplicate position, invalid position).
    pub joins_failed: u64,
    /// Graceful departures executed.
    pub leaves: u64,
    /// Routes started.
    pub routes_started: u64,
    /// Routes that reached their owner.
    pub routes_completed: u64,
    /// Route answers that made it back to the origin.
    pub answers_received: u64,
    /// Area queries completed (flood phase executed).
    pub area_queries_completed: u64,
    /// Total objects matched by completed area queries.
    pub area_query_matches: u64,
    /// Ping probes sent.
    pub pings: u64,
    /// Ping echoes received.
    pub pongs: u64,
    /// Operations skipped because the population was too small.
    pub ops_skipped: u64,
}

/// Result of running a [`Scenario`] on the asynchronous runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Message-level traffic recorded by the runtime.
    pub traffic: TrafficStats,
    /// Hop counts of completed routes.
    pub routes: RouteStats,
    /// Message delivery counters (sent / delivered / dropped / dead).
    pub delivery: DeliveryStats,
    /// Operation counters.
    pub counters: ScenarioCounters,
    /// Live objects at the end of the run.
    pub population: usize,
    /// Logical time at quiescence.
    pub end_time: SimTime,
}

/// The VoroNet protocol executing message-by-message over the asynchronous
/// runtime.
#[derive(Clone)]
pub struct AsyncOverlay {
    net: VoroNet,
    nodes: HashMap<NodeId, NodeState>,
    runtime: Runtime<ProtocolMsg, ScenarioOp>,
    rng: StdRng,
    mode: RoutingMode,
    routes: RouteStats,
    counters: ScenarioCounters,
    /// Next token handed to an externally issued (tracked) operation.
    next_token: OpToken,
    /// Completed tracked routes, keyed by token (drained by
    /// [`AsyncOverlay::take_route_result`]).  A route is *complete* when
    /// its answer message reaches the origin — an answer lost to the
    /// network fails the operation, exactly as the issuing node would
    /// experience it.
    route_results: HashMap<OpToken, (ObjectId, u32)>,
    /// Completed tracked area/radius queries, keyed by token (answer
    /// delivered to the origin).
    area_results: HashMap<OpToken, AreaQueryReport>,
    /// Reports of tracked area/radius queries whose flood completed at the
    /// responsible node but whose answer is still in flight; claimed into
    /// [`AsyncOverlay::area_results`] when the answer arrives, dropped if
    /// it never does.
    pending_area: HashMap<OpToken, AreaQueryReport>,
    /// Outcomes of tracked join requests (id on success, the join error
    /// otherwise), keyed by token.
    join_results: HashMap<OpToken, Result<ObjectId, JoinError>>,
    /// Next provisional sender id for a join request (counts down from
    /// [`JOINER`]).
    next_joiner: NodeId,
    /// Scripted `Leave` operations are skipped at or below this population.
    min_population: usize,
    /// Optional wire-codec hook every outgoing message passes through.
    wire_tap: Option<Box<dyn WireTap>>,
}

impl AsyncOverlay {
    /// Creates an empty asynchronous overlay.  `seed` drives the runner's
    /// workload choices (bootstrap and participant selection); the overlay's
    /// own stochastic choices use `config.seed` as in the synchronous path.
    pub fn new(config: VoroNetConfig, network: NetworkModel, seed: u64) -> Self {
        AsyncOverlay {
            net: VoroNet::new(config),
            nodes: HashMap::new(),
            runtime: Runtime::new(network),
            rng: StdRng::seed_from_u64(seed ^ 0x0A57_C0DE),
            mode: RoutingMode::default(),
            routes: RouteStats::new(),
            counters: ScenarioCounters::default(),
            next_token: 1,
            route_results: HashMap::new(),
            area_results: HashMap::new(),
            pending_area: HashMap::new(),
            join_results: HashMap::new(),
            next_joiner: JOINER,
            min_population: 8,
            wire_tap: None,
        }
    }

    /// Selects the routing mode for subsequent `RouteStep` handling.
    pub fn with_routing_mode(mut self, mode: RoutingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Installs a [`WireTap`] through which every subsequently sent
    /// protocol message passes (e.g. the `voronet-net` frame codec
    /// round-trip).  Passing a transparent tap leaves every observable
    /// result bit-identical.
    pub fn set_wire_tap(&mut self, tap: Box<dyn WireTap>) {
        self.wire_tap = Some(tap);
    }

    /// Builder form of [`AsyncOverlay::set_wire_tap`].
    pub fn with_wire_tap(mut self, tap: Box<dyn WireTap>) -> Self {
        self.set_wire_tap(tap);
        self
    }

    /// Sends one protocol message through the optional wire tap and into
    /// the runtime's network.
    fn transmit(&mut self, from: NodeId, to: NodeId, kind: MessageKind, msg: ProtocolMsg) -> bool {
        let msg = match self.wire_tap.as_mut() {
            Some(tap) => tap.roundtrip(from, to, kind, msg),
            None => msg,
        };
        self.runtime.send(from, to, kind, msg)
    }

    /// Sets the population floor below which scripted `Leave` operations
    /// are skipped (and counted in
    /// [`ScenarioCounters::ops_skipped`]).  Defaults to 8; set to 0 to let a
    /// scenario empty the overlay entirely.
    pub fn with_min_population(mut self, min: usize) -> Self {
        self.min_population = min;
        self
    }

    /// Read access to the authoritative overlay.
    pub fn net(&self) -> &VoroNet {
        &self.net
    }

    /// The cached local view of a live replica (`None` for unknown nodes).
    /// On a loss-free network at quiescence this equals
    /// [`VoroNet::view`]; under loss it may be stale.
    pub fn replica_view(&self, id: ObjectId) -> Option<&ObjectView> {
        self.nodes.get(&id.0).map(|s| &s.view)
    }

    /// Schedules a scripted operation at an absolute time (the primitive
    /// behind [`run_scenario`]).
    pub fn schedule_op(&mut self, at: SimTime, op: ScenarioOp) {
        self.runtime.schedule_control_at(at, op);
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.runtime.now()
    }

    /// Hop samples of completed routes.
    pub fn routes(&self) -> &RouteStats {
        &self.routes
    }

    /// Operation counters so far.
    pub fn counters(&self) -> ScenarioCounters {
        self.counters
    }

    /// Message-level traffic so far.
    pub fn traffic(&self) -> &TrafficStats {
        self.runtime.traffic()
    }

    /// Delivery counters so far.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.runtime.delivery_stats()
    }

    /// Live population (authoritative and replica counts always agree).
    pub fn population(&self) -> usize {
        self.net.len()
    }

    /// Inserts `points` synchronously (duplicates skipped) and initialises
    /// every replica with a fresh view: the pre-existing overlay a scenario
    /// runs against.
    pub fn warmup(&mut self, points: &[Point2]) -> Vec<ObjectId> {
        let mut ids = Vec::with_capacity(points.len());
        for &p in points {
            match self.net.insert(p) {
                Ok(r) => ids.push(r.id),
                Err(JoinError::DuplicatePosition(_)) => continue,
                Err(e) => panic!("warmup insertion failed: {e}"),
            }
        }
        for id in self.net.ids().collect::<Vec<_>>() {
            self.runtime.spawn(id.0);
            self.refresh_view(id);
        }
        ids
    }

    /// Runs until no message is in flight and no control event is pending.
    pub fn run_to_quiescence(&mut self) {
        while let Some(event) = self.runtime.step() {
            self.handle(event);
        }
    }

    /// Measures one message-driven route between two live objects: injects
    /// the route, runs to quiescence and returns `(owner, hops)` — `None`
    /// when the route was lost to the network.
    pub fn measure_route(&mut self, from: ObjectId, to: ObjectId) -> Option<(ObjectId, u32)> {
        let target = self.net.coords(to)?;
        let token = self.start_query_route(from, target).ok()?;
        self.run_to_quiescence();
        self.take_route_result(token)
    }

    // ------------------------------------------------------------------
    // Externally issued (tracked) operations — the driver API behind the
    // backend-agnostic `voronet-api` engines.  Each `start_*` injects the
    // operation's first protocol message and returns a correlation token;
    // once the runtime has been stepped to quiescence the matching `take_*`
    // yields the result (`None` when the operation's messages were lost to
    // the network).
    // ------------------------------------------------------------------

    /// Injects a tracked join request for an object at `position`, exactly
    /// as a scripted [`ScenarioOp::Join`] would, except that the bootstrap
    /// node is drawn from the *overlay's* RNG ([`VoroNet::draw_bootstrap`])
    /// so a sequential join consumes randomness in the same order as the
    /// synchronous [`VoroNet::insert`].  The outcome is retrieved with
    /// [`AsyncOverlay::take_join_result`] after quiescence.
    pub fn request_join(&mut self, position: Point2) -> OpToken {
        let token = self.next_token;
        self.next_token += 1;
        self.inject_join(position, token);
        token
    }

    /// The outcome of the tracked join request `token`: the new object's
    /// id, the [`JoinError`] that rejected it, or `None` when the join has
    /// not completed (still in flight, or lost to the network).  Unlike
    /// routes and queries, the join protocol has no answer leg — the
    /// outcome is the overlay membership itself, recorded when
    /// `AddVoronoiRegion` executes at the region owner.
    pub fn take_join_result(&mut self, token: OpToken) -> Option<Result<ObjectId, JoinError>> {
        self.join_results.remove(&token)
    }

    /// Graceful departure of a *specific* live object (scripted
    /// [`ScenarioOp::Leave`] picks a random one): neighbourhood
    /// notifications are sent, then the object withdraws.
    pub fn request_leave(&mut self, id: ObjectId) -> Result<(), VoronetError> {
        if !self.net.contains(id) {
            return Err(VoronetError::new(ErrorKind::UnknownObject(id)));
        }
        self.depart(id);
        Ok(())
    }

    /// Starts a tracked message-driven point route from `from` towards
    /// `target`; the result is collected with
    /// [`AsyncOverlay::take_route_result`] after quiescence.
    pub fn start_query_route(
        &mut self,
        from: ObjectId,
        target: Point2,
    ) -> Result<OpToken, VoronetError> {
        if !self.net.contains(from) {
            return Err(VoronetError::new(ErrorKind::UnknownObject(from)));
        }
        let token = self.next_token;
        self.next_token += 1;
        self.start_route(from, target, RoutePurpose::Query { token });
        Ok(token)
    }

    /// `(owner, hops)` of the tracked route `token`, `None` when its
    /// answer has not reached the origin (request or answer still in
    /// flight, or lost to the network).
    pub fn take_route_result(&mut self, token: OpToken) -> Option<(ObjectId, u32)> {
        self.route_results.remove(&token)
    }

    /// Starts a tracked message-driven rectangular area query issued by
    /// `from`; the report is collected with
    /// [`AsyncOverlay::take_area_result`] after quiescence.
    pub fn start_area_query(
        &mut self,
        from: ObjectId,
        rect: Rect,
    ) -> Result<OpToken, VoronetError> {
        if !self.net.contains(from) {
            return Err(VoronetError::new(ErrorKind::UnknownObject(from)));
        }
        let token = self.next_token;
        self.next_token += 1;
        self.start_route(from, rect.center(), RoutePurpose::AreaQuery { rect, token });
        Ok(token)
    }

    /// Starts a tracked message-driven radius (disk) query issued by
    /// `from`; the report is collected with
    /// [`AsyncOverlay::take_area_result`] after quiescence.
    pub fn start_radius_query(
        &mut self,
        from: ObjectId,
        query: RadiusQuery,
    ) -> Result<OpToken, VoronetError> {
        if !self.net.contains(from) {
            return Err(VoronetError::new(ErrorKind::UnknownObject(from)));
        }
        let token = self.next_token;
        self.next_token += 1;
        self.start_route(
            from,
            query.center,
            RoutePurpose::RadiusQuery { query, token },
        );
        Ok(token)
    }

    /// The report of the tracked area/radius query `token`, `None` when
    /// its answer has not reached the origin.  Taking a token also drops
    /// any owner-side report whose answer was lost, so abandoned
    /// operations do not accumulate.
    pub fn take_area_result(&mut self, token: OpToken) -> Option<AreaQueryReport> {
        self.pending_area.remove(&token);
        self.area_results.remove(&token)
    }

    /// Consumes the overlay into a report.
    pub fn into_report(self, scenario: impl Into<String>) -> ScenarioReport {
        ScenarioReport {
            scenario: scenario.into(),
            traffic: self.runtime.traffic().clone(),
            routes: self.routes,
            delivery: self.runtime.delivery_stats(),
            counters: self.counters,
            population: self.net.len(),
            end_time: self.runtime.now(),
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Delivered<ProtocolMsg, ScenarioOp>) {
        match event {
            Delivered::Control { payload, .. } => self.inject_op(payload),
            Delivered::Message { envelope, .. } => {
                let at = ObjectId(envelope.to);
                match envelope.payload {
                    ProtocolMsg::Join { position, token } => {
                        // The bootstrap node starts routing the join request
                        // towards the region owner.
                        self.start_route(at, position, RoutePurpose::Join { position, token });
                    }
                    ProtocolMsg::RouteStep {
                        target,
                        origin,
                        hops,
                        purpose,
                    } => self.route_step(at, target, origin, hops, purpose),
                    ProtocolMsg::NeighborUpdate | ProtocolMsg::Leave => {
                        self.refresh_view(at);
                    }
                    ProtocolMsg::Ping { reply } => {
                        if reply {
                            self.counters.pongs += 1;
                        } else {
                            self.transmit(
                                at.0,
                                envelope.from,
                                MessageKind::Other,
                                ProtocolMsg::Ping { reply: true },
                            );
                        }
                    }
                    ProtocolMsg::Answer { hops, token } => {
                        self.counters.answers_received += 1;
                        if token != UNTRACKED {
                            // The operation is complete for its issuer only
                            // now that the answer has arrived.  The sender
                            // of an answer is the responsible node (the
                            // route owner).
                            match self.pending_area.remove(&token) {
                                Some(report) => {
                                    self.area_results.insert(token, report);
                                }
                                None => {
                                    self.route_results
                                        .insert(token, (ObjectId(envelope.from), hops));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Shared join-injection path: the very first object is inserted
    /// directly (it needs no network); every other join sends a
    /// [`ProtocolMsg::Join`] from a fresh provisional id to a bootstrap
    /// object drawn from the overlay's RNG (matching the synchronous
    /// [`VoroNet::insert`] draw order).
    fn inject_join(&mut self, position: Point2, token: OpToken) {
        self.counters.joins_requested += 1;
        match self.net.draw_bootstrap() {
            None => {
                // The very first object needs no network.
                match self.net.insert_from(position, None) {
                    Ok(r) => {
                        self.runtime.spawn(r.id.0);
                        self.refresh_view(r.id);
                        self.counters.joins_completed += 1;
                        self.record_join(token, Ok(r.id));
                    }
                    Err(e) => {
                        self.counters.joins_failed += 1;
                        self.record_join(token, Err(e));
                    }
                }
            }
            Some(bootstrap) => {
                let joiner = self.next_joiner;
                self.next_joiner -= 1;
                self.transmit(
                    joiner,
                    bootstrap.0,
                    MessageKind::Other,
                    ProtocolMsg::Join { position, token },
                );
            }
        }
    }

    fn record_join(&mut self, token: OpToken, outcome: Result<ObjectId, JoinError>) {
        if token != UNTRACKED {
            self.join_results.insert(token, outcome);
        }
    }

    fn inject_op(&mut self, op: ScenarioOp) {
        match op {
            ScenarioOp::Join { at } => self.inject_join(at, UNTRACKED),
            ScenarioOp::Leave => {
                if self.net.len() <= self.min_population {
                    self.counters.ops_skipped += 1;
                    return;
                }
                let departing = self.random_live();
                self.depart(departing);
            }
            ScenarioOp::Route => {
                let Some((a, b)) = self.random_live_pair() else {
                    self.counters.ops_skipped += 1;
                    return;
                };
                let target = self.net.coords(b).expect("picked live object");
                self.start_route(a, target, RoutePurpose::Query { token: UNTRACKED });
            }
            ScenarioOp::RouteTo { target } => {
                if self.net.is_empty() {
                    self.counters.ops_skipped += 1;
                    return;
                }
                let from = self.random_live();
                self.start_route(from, target, RoutePurpose::Query { token: UNTRACKED });
            }
            ScenarioOp::AreaQuery { rect } => {
                if self.net.is_empty() {
                    self.counters.ops_skipped += 1;
                    return;
                }
                let from = self.random_live();
                self.start_route(
                    from,
                    rect.center(),
                    RoutePurpose::AreaQuery {
                        rect,
                        token: UNTRACKED,
                    },
                );
            }
            ScenarioOp::Ping => {
                let Some((a, b)) = self.random_live_pair() else {
                    self.counters.ops_skipped += 1;
                    return;
                };
                self.counters.pings += 1;
                self.transmit(
                    a.0,
                    b.0,
                    MessageKind::Other,
                    ProtocolMsg::Ping { reply: false },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Routing (local decisions over cached views)
    // ------------------------------------------------------------------

    fn start_route(&mut self, from: ObjectId, target: Point2, purpose: RoutePurpose) {
        if matches!(purpose, RoutePurpose::Query { .. }) {
            self.counters.routes_started += 1;
        }
        self.route_step(from, target, from.0, 0, purpose);
    }

    /// Handles a `RouteStep` arriving at (or starting from) `cur`: either
    /// the route has arrived and the purpose completes here, or the message
    /// is forwarded to the neighbour of `cur`'s *local view* closest to the
    /// target.
    fn route_step(
        &mut self,
        cur: ObjectId,
        target: Point2,
        origin: NodeId,
        hops: u32,
        purpose: RoutePurpose,
    ) {
        let Some(state) = self.nodes.get(&cur.0) else {
            return; // Replica disappeared between delivery and handling.
        };
        let cur_coords = state.view.coords;
        let cur_d = cur_coords.distance2(target);

        if self.mode == RoutingMode::Algorithm5 && self.algorithm5_stop(cur, target) {
            let owner = self.resolve_owner_locally(cur, target);
            self.complete_route(owner, target, origin, hops, purpose);
            return;
        }

        // Greedyneighbour(Target) over the cached routing table.  The table
        // is sorted and deduplicated at refresh time, so the choice is
        // deterministic — and the scan allocates nothing.
        let state = self.nodes.get(&cur.0).expect("checked above");
        let mut best = cur;
        let mut best_d = cur_d;
        for &(nb, coords) in &state.routing {
            if nb == cur {
                continue;
            }
            let d = coords.distance2(target);
            if d < best_d {
                best = nb;
                best_d = d;
            }
        }
        if best == cur {
            self.complete_route(cur, target, origin, hops, purpose);
        } else {
            self.transmit(
                cur.0,
                best.0,
                MessageKind::RouteForward,
                ProtocolMsg::RouteStep {
                    target,
                    origin,
                    hops: hops + 1,
                    purpose,
                },
            );
        }
    }

    /// The Algorithm 5 early-stop condition, evaluated from `cur`'s own
    /// region (local information).
    fn algorithm5_stop(&self, cur: ObjectId, target: Point2) -> bool {
        let Some(vertex) = self.net.vertex_of(cur) else {
            return false;
        };
        let cur_coords = self.net.coords(cur).expect("live object");
        let d_cur = cur_coords.distance(target);
        if d_cur <= self.net.dmin() {
            return true;
        }
        let z = distance_to_region(self.net.triangulation(), vertex, target);
        z.distance(target) <= d_cur / 3.0
    }

    /// Delaunay-walk to the true owner from a stopping point (the purely
    /// local resolution of Algorithm 5's fictive-object insertion).
    fn resolve_owner_locally(&self, from: ObjectId, target: Point2) -> ObjectId {
        let mut cur = from;
        let mut cur_d = self.net.coords(cur).expect("live object").distance2(target);
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for n in self
                .net
                .view_ref(cur)
                .expect("live object")
                .voronoi_neighbours()
            {
                let d = self
                    .net
                    .coords(n)
                    .expect("live neighbour")
                    .distance2(target);
                if d < best_d {
                    best = n;
                    best_d = d;
                }
            }
            if best == cur {
                return cur;
            }
            cur = best;
            cur_d = best_d;
        }
    }

    fn complete_route(
        &mut self,
        owner: ObjectId,
        _target: Point2,
        origin: NodeId,
        hops: u32,
        purpose: RoutePurpose,
    ) {
        match purpose {
            RoutePurpose::Join { position, token } => self.complete_join(owner, position, token),
            RoutePurpose::Query { token } => {
                // `routes_completed` counts protocol-level completions at
                // the responsible node; the *issuer's* tracked result is
                // recorded only when the answer below survives the trip
                // back to the origin.
                self.routes.record(hops);
                self.counters.routes_completed += 1;
                self.transmit(
                    owner.0,
                    origin,
                    MessageKind::QueryAnswer,
                    ProtocolMsg::Answer { hops, token },
                );
            }
            RoutePurpose::AreaQuery { rect, token } => {
                let report = range_query(&mut self.net, owner, RangeQuery { rect });
                self.complete_area_query(report, owner, origin, hops, token);
            }
            RoutePurpose::RadiusQuery { query, token } => {
                let report = radius_query(&mut self.net, owner, query);
                self.complete_area_query(report, owner, origin, hops, token);
            }
        }
    }

    /// Shared completion of the flood phase of an area/radius query: the
    /// flood itself is executed synchronously (it is a local wavefront over
    /// Voronoi edges); its per-hop cost is still accounted as protocol
    /// traffic.
    fn complete_area_query(
        &mut self,
        report: Result<AreaQueryReport, crate::overlay::OverlayError>,
        owner: ObjectId,
        origin: NodeId,
        hops: u32,
        token: OpToken,
    ) {
        let Ok(mut report) = report else { return };
        // The flood skeleton was entered at the owner the message-driven
        // route already reached, so its own routing phase is trivial; the
        // report's routing hops are the hops of the message-driven route.
        report.routing_hops = hops;
        self.counters.area_queries_completed += 1;
        self.counters.area_query_matches += report.matches.len() as u64;
        for _ in 0..report.flood_messages {
            self.runtime.record_traffic(owner.0, MessageKind::Other);
        }
        if token != UNTRACKED {
            // Parked until the answer reaches the origin (see the
            // `Answer` handler); lost answers fail the query.
            self.pending_area.insert(token, report);
        }
        self.transmit(
            owner.0,
            origin,
            MessageKind::QueryAnswer,
            ProtocolMsg::Answer { hops, token },
        );
    }

    // ------------------------------------------------------------------
    // Membership changes
    // ------------------------------------------------------------------

    /// `AddVoronoiRegion` at the region owner: insert the object into the
    /// authoritative tessellation, spawn its replica with a fresh view, and
    /// notify every affected node so it refreshes its own.
    fn complete_join(&mut self, owner: ObjectId, position: Point2, token: OpToken) {
        match self.net.insert_from(position, Some(owner)) {
            Ok(report) => {
                let id = report.id;
                self.runtime.spawn(id.0);
                self.refresh_view(id);
                self.counters.joins_completed += 1;
                self.record_join(token, Ok(id));
                for peer in self.affected_by(id) {
                    self.transmit(
                        id.0,
                        peer.0,
                        MessageKind::VoronoiUpdate,
                        ProtocolMsg::NeighborUpdate,
                    );
                }
            }
            Err(e) => {
                self.counters.joins_failed += 1;
                self.record_join(token, Err(e));
            }
        }
    }

    /// `RemoveVoronoiRegion` initiated by `departing`: notify the
    /// neighbourhood, then withdraw from the authoritative tessellation and
    /// kill the replica.  The notifications race ahead through the network;
    /// peers that miss them keep routing to a dead node (dead letters).
    fn depart(&mut self, departing: ObjectId) {
        let affected = self.affected_by(departing);
        for peer in affected {
            self.transmit(
                departing.0,
                peer.0,
                MessageKind::Departure,
                ProtocolMsg::Leave,
            );
        }
        self.net.remove(departing).expect("picked a live object");
        self.runtime.kill(departing.0);
        self.nodes.remove(&departing.0);
        self.counters.leaves += 1;
    }

    /// Every node whose view is affected by the presence/absence of `id`:
    /// its Voronoi neighbours (edges created or destroyed by the region
    /// change all touch them), its close neighbours, the sources of the back
    /// links it holds, and the targets of its long links.
    fn affected_by(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut affected: BTreeSet<ObjectId> = BTreeSet::new();
        if let Ok(vr) = self.net.view_ref(id) {
            affected.extend(vr.voronoi_neighbours());
            affected.extend(vr.close_neighbours().iter().copied());
            affected.extend(vr.long_links().iter().map(|l| l.neighbour));
            affected.extend(vr.back_long_links().iter().map(|b| b.source));
        }
        affected.remove(&id);
        affected.into_iter().collect()
    }

    /// Reads through the shared arena at a refresh boundary: materialises
    /// the borrowed [`crate::ViewRef`] of `id` into the owned snapshot a
    /// `NeighborUpdate` message carries, and flattens its routing
    /// neighbours (with their immutable coordinates) into the replica's
    /// scan table.
    fn refresh_view(&mut self, id: ObjectId) {
        let Ok(vr) = self.net.view_ref(id) else {
            return; // The object is gone; a stale update arrived late.
        };
        let view = vr.to_view();
        let mut routing = Vec::new();
        for nb in view.routing_neighbours() {
            if let Some(c) = self.net.coords(nb) {
                routing.push((nb, c));
            }
        }
        self.nodes.insert(id.0, NodeState { view, routing });
    }

    // ------------------------------------------------------------------
    // Workload choices (deterministic from the runner seed)
    // ------------------------------------------------------------------

    fn random_live(&mut self) -> ObjectId {
        let idx = self.rng.random_range(0..self.net.len());
        self.net.id_at(idx).expect("index below len")
    }

    fn random_live_pair(&mut self) -> Option<(ObjectId, ObjectId)> {
        let n = self.net.len();
        if n < 2 {
            return None;
        }
        let a = self.rng.random_range(0..n);
        let mut b = self.rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        Some((
            self.net.id_at(a).expect("index below len"),
            self.net.id_at(b).expect("index below len"),
        ))
    }
}

/// Runs a scripted [`Scenario`] end-to-end on the asynchronous runtime and
/// returns its report.
pub fn run_scenario(
    config: VoroNetConfig,
    scenario: &Scenario,
    network: NetworkModel,
    mode: RoutingMode,
) -> ScenarioReport {
    let mut overlay = AsyncOverlay::new(config, network, scenario.seed).with_routing_mode(mode);
    overlay.warmup(&scenario.warmup);
    for &(t, op) in scenario.events() {
        overlay.runtime.schedule_control_at(t, op);
    }
    overlay.run_to_quiescence();
    overlay.into_report(scenario.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use voronet_sim::{LatencyModel, PartitionWindow};
    use voronet_workloads::{Distribution, PointGenerator};

    fn uniform_points(n: usize, seed: u64) -> Vec<Point2> {
        PointGenerator::new(Distribution::Uniform, seed).take_points(n)
    }

    #[test]
    fn warmup_views_match_authoritative_state() {
        let cfg = VoroNetConfig::new(200).with_seed(3);
        let mut ov = AsyncOverlay::new(cfg, NetworkModel::ideal(), 3);
        let ids = ov.warmup(&uniform_points(150, 17));
        assert_eq!(ov.population(), ids.len());
        for &id in &ids {
            let replica = &ov.nodes[&id.0];
            let fresh = ov.net.view(id).unwrap();
            assert_eq!(replica.view.voronoi_neighbours, fresh.voronoi_neighbours);
            assert_eq!(replica.view.close_neighbours, fresh.close_neighbours);
            // The flattened routing table mirrors the snapshot's routing
            // neighbours, with exact (immutable) coordinates inlined.
            let table_ids: Vec<ObjectId> = replica.routing.iter().map(|&(nb, _)| nb).collect();
            assert_eq!(table_ids, replica.view.routing_neighbours());
            for &(nb, coords) in &replica.routing {
                assert_eq!(Some(coords), ov.net.coords(nb));
            }
        }
    }

    #[test]
    fn message_driven_route_agrees_with_synchronous_route() {
        let cfg = VoroNetConfig::new(300).with_seed(5);
        let mut ov = AsyncOverlay::new(cfg, NetworkModel::ideal(), 5);
        let ids = ov.warmup(&uniform_points(250, 23));
        let mut sync_net = {
            // Rebuild the identical overlay for the synchronous fast path.
            let cfg = VoroNetConfig::new(300).with_seed(5);
            let mut net = VoroNet::new(cfg);
            for &p in &uniform_points(250, 23) {
                let _ = net.insert(p);
            }
            net
        };
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..60 {
            let a = ids[rng.random_range(0..ids.len())];
            let b = ids[rng.random_range(0..ids.len())];
            if a == b {
                continue;
            }
            let (owner, hops) = ov.measure_route(a, b).expect("loss-free route completes");
            let sync = sync_net.route_between(a, b).unwrap();
            assert_eq!(
                owner, sync.owner,
                "owners must agree on a loss-free network"
            );
            assert_eq!(hops, sync.hops, "hop counts must agree with fresh views");
        }
    }

    #[test]
    fn algorithm5_mode_reaches_the_true_owner() {
        let cfg = VoroNetConfig::new(300).with_seed(7);
        let mut ov = AsyncOverlay::new(cfg, NetworkModel::ideal(), 7)
            .with_routing_mode(RoutingMode::Algorithm5);
        let ids = ov.warmup(&uniform_points(200, 29));
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..40 {
            let a = ids[rng.random_range(0..ids.len())];
            let b = ids[rng.random_range(0..ids.len())];
            if a == b {
                continue;
            }
            let (owner, _) = ov.measure_route(a, b).expect("loss-free route completes");
            assert_eq!(owner, b, "algorithm 5 must resolve the true owner");
        }
    }

    #[test]
    fn async_join_inserts_at_the_right_region_and_propagates_views() {
        let cfg = VoroNetConfig::new(100).with_seed(11);
        let mut ov = AsyncOverlay::new(cfg, NetworkModel::ideal(), 11);
        ov.warmup(&uniform_points(60, 41));
        let before = ov.population();
        let p = Point2::new(0.123_456, 0.654_321);
        ov.runtime
            .schedule_control_at(1, ScenarioOp::Join { at: p });
        ov.run_to_quiescence();
        assert_eq!(ov.population(), before + 1);
        assert_eq!(ov.counters().joins_completed, 1);
        let id = ov.net.owner_of(p).unwrap();
        assert_eq!(ov.net.coords(id), Some(p));
        // Every affected neighbour has refreshed: its replica view equals
        // the authoritative view.
        for nb in ov.net.voronoi_neighbours(id).unwrap() {
            let replica = &ov.nodes[&nb.0];
            let fresh = ov.net.view(nb).unwrap();
            assert_eq!(replica.view.voronoi_neighbours, fresh.voronoi_neighbours);
            assert!(replica.view.voronoi_neighbours.contains(&id));
        }
    }

    #[test]
    fn async_leave_notifies_neighbours_and_kills_the_replica() {
        let cfg = VoroNetConfig::new(100).with_seed(13);
        let mut ov = AsyncOverlay::new(cfg, NetworkModel::ideal(), 13);
        let ids = ov.warmup(&uniform_points(40, 43));
        let before = ov.population();
        ov.runtime.schedule_control_at(1, ScenarioOp::Leave);
        ov.run_to_quiescence();
        assert_eq!(ov.population(), before - 1);
        assert_eq!(ov.counters().leaves, 1);
        let gone: Vec<ObjectId> = ids.into_iter().filter(|&i| !ov.net.contains(i)).collect();
        assert_eq!(gone.len(), 1);
        assert!(!ov.nodes.contains_key(&gone[0].0));
        // Survivors' views no longer mention the departed node.
        for id in ov.net.ids().collect::<Vec<_>>() {
            let replica = &ov.nodes[&id.0];
            assert!(!replica.view.routing_neighbours().contains(&gone[0]));
        }
    }

    #[test]
    fn lossy_network_loses_routes_but_never_panics() {
        let cfg = VoroNetConfig::new(200).with_seed(17);
        let network = NetworkModel::new(17, LatencyModel::Uniform { min: 1, max: 20 })
            .with_loss(0.3)
            .with_partition(PartitionWindow {
                start: 50,
                end: 150,
                groups: 3,
            });
        let scenario = Scenario::builder("lossy-churn", 17)
            .warmup(uniform_points(120, 47))
            .churn(0, 400, 120, 0.3, 0.15, {
                let mut pg = PointGenerator::new(Distribution::Uniform, 53);
                move || pg.next_point()
            })
            .build();
        let report = run_scenario(cfg, &scenario, network, RoutingMode::Greedy);
        assert!(report.delivery.dropped_loss > 0, "{:?}", report.delivery);
        assert!(
            report.counters.routes_completed <= report.counters.routes_started,
            "{:?}",
            report.counters
        );
        assert!(report.population > 0);
        assert_eq!(
            report.counters.routes_completed as usize,
            report.routes.count()
        );
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let run = || {
            let cfg = VoroNetConfig::new(150).with_seed(19);
            let network = NetworkModel::new(
                19,
                LatencyModel::Skewed {
                    min: 1,
                    max: 50,
                    alpha: 1.5,
                },
            )
            .with_loss(0.1);
            let scenario = Scenario::builder("det", 19)
                .warmup(uniform_points(80, 59))
                .churn(0, 300, 90, 0.35, 0.15, {
                    let mut pg = PointGenerator::new(Distribution::Uniform, 61);
                    move || pg.next_point()
                })
                .every(10, 25, 8, |_| ScenarioOp::Ping)
                .build();
            run_scenario(cfg, &scenario, network, RoutingMode::Greedy)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the identical report");
        assert!(a.counters.pings > 0);
    }
}
