//! Frame layer: the fixed binary header every wire message starts with,
//! the typed decode errors, and the bounds-checked cursor the payload
//! codecs read through.
//!
//! A frame is `header ‖ payload`:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  = b"VN"
//! 2       1     version = WIRE_VERSION
//! 3       1     kind   (see `wire::WireMsg` discriminants)
//! 4       8     from   (sender peer / node id, little-endian u64)
//! 12      8     to     (destination peer / node id, little-endian u64)
//! 20      4     len    (payload length in bytes, little-endian u32)
//! 24      len   payload
//! ```
//!
//! Transports parse only this header (routing, reassembly, sanity);
//! [`crate::wire`] parses payloads.  All integers are little-endian and
//! `f64` values travel as their IEEE-754 bit pattern, so encode→decode is
//! bit-exact.  Decoding is total: every malformed input yields a typed
//! [`DecodeError`], never a panic — fuzzed in `voronet-testkit`.

use std::fmt;

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"VN";

/// Current wire-format version.  Bump on any incompatible layout change;
/// decoders reject other versions with
/// [`DecodeError::UnsupportedVersion`] instead of guessing.
pub const WIRE_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 24;

/// Largest whole frame (header + payload) a transport accepts: the
/// classical loopback-UDP datagram budget, so every frame fits in one
/// datagram.
pub const MAX_FRAME_LEN: usize = 65_507;

/// Largest payload a frame may carry.
pub const MAX_PAYLOAD_LEN: usize = MAX_FRAME_LEN - HEADER_LEN;

/// Why a frame or payload failed to decode.  Every variant is a normal
/// value — decoding never panics on adversarial input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes available than the field being read requires.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known message.
    UnknownKind(u8),
    /// The header's declared payload length disagrees with the bytes
    /// actually present.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// Declared length.
        len: usize,
    },
    /// The payload decoded cleanly but left unconsumed bytes.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// An embedded tag byte (e.g. a route purpose) has no meaning.
    BadTag {
        /// Which field carried the tag.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            DecodeError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            DecodeError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length mismatch: header declares {declared}, payload has {actual}"
                )
            }
            DecodeError::Oversized { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte budget"
                )
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete payload")
            }
            DecodeError::BadTag { field, value } => {
                write!(f, "invalid {field} tag {value}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The parsed fixed header of one frame.  `kind` is the raw byte; the
/// payload layer maps it to a message variant (and reports
/// [`DecodeError::UnknownKind`] for values it does not know).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Raw message-kind byte.
    pub kind: u8,
    /// Sender peer / node id.
    pub from: u64,
    /// Destination peer / node id.
    pub to: u64,
    /// Payload length in bytes.
    pub len: u32,
}

impl FrameHeader {
    /// Parses the header at the start of `bytes`, validating magic,
    /// version and the payload-length budget (but not kind — that is the
    /// payload layer's job, so transports can forward unknown kinds).
    pub fn decode(bytes: &[u8]) -> Result<FrameHeader, DecodeError> {
        if bytes.len() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[0..2] != MAGIC {
            return Err(DecodeError::BadMagic([bytes[0], bytes[1]]));
        }
        if bytes[2] != WIRE_VERSION {
            return Err(DecodeError::UnsupportedVersion(bytes[2]));
        }
        let kind = bytes[3];
        let from = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let to = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        if len as usize > MAX_PAYLOAD_LEN {
            return Err(DecodeError::Oversized { len: len as usize });
        }
        Ok(FrameHeader {
            kind,
            from,
            to,
            len,
        })
    }

    /// Appends the encoded header to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&MAGIC);
        buf.push(WIRE_VERSION);
        buf.push(self.kind);
        buf.extend_from_slice(&self.from.to_le_bytes());
        buf.extend_from_slice(&self.to.to_le_bytes());
        buf.extend_from_slice(&self.len.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor over a payload slice.  Every read
/// either yields a value or a [`DecodeError::Truncated`]; nothing indexes
/// past the end.
#[derive(Debug, Clone, Copy)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its little-endian IEEE-754 bit pattern
    /// (bit-exact round trip).
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Borrows the next `n` bytes without copying (zero-copy list views).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Asserts the payload is fully consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }
}

/// Appends a little-endian `u32` to `buf`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to `buf`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian IEEE-754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = FrameHeader {
            kind: 7,
            from: u64::MAX - 3,
            to: 42,
            len: 1_000,
        };
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(FrameHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(matches!(
            FrameHeader::decode(&[0u8; 3]),
            Err(DecodeError::Truncated { .. })
        ));
        let mut buf = Vec::new();
        FrameHeader {
            kind: 0,
            from: 0,
            to: 0,
            len: 0,
        }
        .encode_into(&mut buf);
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            FrameHeader::decode(&bad_magic),
            Err(DecodeError::BadMagic(_))
        ));
        let mut bad_version = buf.clone();
        bad_version[2] = 99;
        assert_eq!(
            FrameHeader::decode(&bad_version),
            Err(DecodeError::UnsupportedVersion(99))
        );
        let mut oversized = buf;
        oversized[20..24].copy_from_slice(&(MAX_PAYLOAD_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(
            FrameHeader::decode(&oversized),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.u32(), Err(DecodeError::Truncated { .. })));
        assert_eq!(r.remaining(), 2);
        assert!(r.finish().is_err());
        assert_eq!(r.bytes(2).unwrap(), &[2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let mut buf = Vec::new();
        for v in [0.0, -0.0, 1.5e-300, f64::MAX, f64::MIN_POSITIVE] {
            buf.clear();
            put_f64(&mut buf, v);
            let mut r = WireReader::new(&buf);
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }
}
