//! Deterministic fault injection for any [`Transport`]: seeded link
//! faults (drop/duplicate/delay-reorder), crash-stop hosts with restart,
//! and partition windows — the substrate of the chaos harness.
//!
//! [`FaultTransport`] wraps an inner transport and perturbs its traffic
//! according to a shared [`FaultCtl`] switchboard plus a per-endpoint
//! seeded RNG, so the same seed produces the same injected faults over
//! the deterministic vnet *and* over loopback UDP/TCP.  A [`FaultPlan`]
//! is a replayable schedule of [`FaultEvent`]s keyed by operation index;
//! [`FaultyCluster`] stands up a whole in-process cluster with every
//! endpoint wrapped, ready for chaos runs and fault-mode benchmarks.
//!
//! Crash semantics are **crash-stop with amnesia-free restart**: a
//! crashed peer's endpoint blackholes every frame in both directions
//! (sends are dropped at the sender, receives are discarded at the
//! victim), which to the rest of the cluster is indistinguishable from a
//! dead process.  A restart lifts the blackhole; the driver's liveness
//! layer (see [`crate::cluster`]) detects the revival and regenerates
//! the host's state from control-plane truth, so the same machinery also
//! covers restarts that lost state.

use crate::cluster::{Driver, HostNode, HostReport, DRIVER_PEER};
use crate::transport::{PeerId, Transport, TransportError};
use crate::vnet::{VnetHub, VnetTransport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};
use voronet_core::VoroNetConfig;
use voronet_sim::TransportStats;

/// Per-link fault probabilities applied to every frame a wrapped
/// endpoint sends (all default to "off").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is sent twice.
    pub duplicate: f64,
    /// Probability a frame is held back and released after
    /// [`LinkFaults::delay_sends`] later sends (reordering).
    pub delay: f64,
    /// How many subsequent sends a delayed frame is held across.
    pub delay_sends: u32,
}

impl LinkFaults {
    /// A mildly hostile link: the profile chaos smoke runs use.
    pub fn lossy(drop: f64) -> Self {
        LinkFaults {
            drop,
            duplicate: drop / 2.0,
            delay: drop / 2.0,
            delay_sends: 3,
        }
    }
}

/// One scheduled fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash-stop the peer: blackhole its traffic in both directions.
    Crash(PeerId),
    /// Lift the peer's blackhole (restart).
    Restart(PeerId),
    /// Split the cluster into `groups` partitions by `peer % groups`;
    /// frames crossing a partition boundary are dropped.
    Partition(u64),
    /// Remove the partition.
    Heal,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::Crash(p) => write!(f, "crash({p})"),
            FaultEvent::Restart(p) => write!(f, "restart({p})"),
            FaultEvent::Partition(g) => write!(f, "partition({g})"),
            FaultEvent::Heal => write!(f, "heal"),
        }
    }
}

/// Shared mutable fault state of one cluster.
#[derive(Debug, Default)]
struct FaultState {
    crashed: BTreeSet<PeerId>,
    partition: Option<u64>,
    link: LinkFaults,
}

/// The fault switchboard every [`FaultTransport`] of a cluster shares:
/// crash/restart peers, open/heal partitions, adjust link faults — all
/// effective on the very next frame.
#[derive(Debug, Clone, Default)]
pub struct FaultCtl {
    state: Arc<Mutex<FaultState>>,
}

impl FaultCtl {
    /// A switchboard with the given link-fault profile and no host or
    /// partition faults.
    pub fn new(link: LinkFaults) -> Self {
        FaultCtl {
            state: Arc::new(Mutex::new(FaultState {
                link,
                ..FaultState::default()
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault state poisoned")
    }

    /// Crash-stops `peer`.
    pub fn crash(&self, peer: PeerId) {
        self.lock().crashed.insert(peer);
    }

    /// Restarts `peer` (lifts its blackhole).
    pub fn restart(&self, peer: PeerId) {
        self.lock().crashed.remove(&peer);
    }

    /// True while `peer` is crashed.
    pub fn is_crashed(&self, peer: PeerId) -> bool {
        self.lock().crashed.contains(&peer)
    }

    /// Splits the cluster into `groups` partitions by `peer % groups`.
    pub fn partition(&self, groups: u64) {
        self.lock().partition = Some(groups.max(2));
    }

    /// Heals any partition.
    pub fn heal(&self) {
        self.lock().partition = None;
    }

    /// Replaces the link-fault profile.
    pub fn set_link(&self, link: LinkFaults) {
        self.lock().link = link;
    }

    /// Restores a fault-free cluster: restarts every crashed peer, heals
    /// partitions and zeroes the link faults.
    pub fn heal_all(&self) {
        let mut s = self.lock();
        s.crashed.clear();
        s.partition = None;
        s.link = LinkFaults::default();
    }

    /// Applies one scheduled event.
    pub fn apply(&self, event: FaultEvent) {
        match event {
            FaultEvent::Crash(p) => self.crash(p),
            FaultEvent::Restart(p) => self.restart(p),
            FaultEvent::Partition(g) => self.partition(g),
            FaultEvent::Heal => self.heal(),
        }
    }
}

/// Counters of the faults one [`FaultTransport`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames dropped by the link-fault roll.
    pub dropped: u64,
    /// Frames sent twice by the duplicate roll.
    pub duplicated: u64,
    /// Frames held back for reordering.
    pub delayed: u64,
    /// Frames blackholed because an endpoint of the link was crashed.
    pub crash_dropped: u64,
    /// Frames dropped at a partition boundary.
    pub partition_dropped: u64,
    /// Inbound frames discarded while the local peer was crashed.
    pub crash_rx_dropped: u64,
}

/// A [`Transport`] wrapper injecting seeded, deterministic faults per
/// the shared [`FaultCtl`]; see the module docs for the semantics.
pub struct FaultTransport<T: Transport> {
    inner: T,
    ctl: FaultCtl,
    rng: StdRng,
    held: VecDeque<(u32, PeerId, Vec<u8>)>,
    fstats: FaultStats,
    extra: TransportStats,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, drawing fault rolls from `seed` mixed with the
    /// endpoint's peer id (so every endpoint rolls independently but
    /// reproducibly).
    pub fn new(inner: T, ctl: FaultCtl, seed: u64) -> Self {
        let peer = inner.local_peer();
        let rng =
            StdRng::seed_from_u64(seed ^ peer.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA01_7FA0);
        FaultTransport {
            inner,
            ctl,
            rng,
            held: VecDeque::new(),
            fstats: FaultStats::default(),
            extra: TransportStats::new(),
        }
    }

    /// The injected-fault counters of this endpoint.
    pub fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    /// The shared switchboard.
    pub fn ctl(&self) -> &FaultCtl {
        &self.ctl
    }

    /// Ages held-back frames by one send slot and releases the ripe ones
    /// into the inner transport.
    fn flush_held(&mut self) -> Result<(), TransportError> {
        for slot in self.held.iter_mut() {
            slot.0 = slot.0.saturating_sub(1);
        }
        while let Some(&(age, _, _)) = self.held.front() {
            if age > 0 {
                break;
            }
            let (_, to, frame) = self.held.pop_front().expect("front checked");
            self.inner.send(to, &frame)?;
        }
        Ok(())
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn local_peer(&self) -> PeerId {
        self.inner.local_peer()
    }

    fn register(&mut self, peer: PeerId, addr: &str) -> Result<(), TransportError> {
        self.inner.register(peer, addr)
    }

    fn send(&mut self, to: PeerId, frame: &[u8]) -> Result<(), TransportError> {
        self.flush_held()?;
        let local = self.inner.local_peer();
        let (crashed_edge, partition_cut, link) = {
            let s = self.ctl.lock();
            let crashed = s.crashed.contains(&local) || s.crashed.contains(&to);
            let cut = s
                .partition
                .map(|groups| local % groups != to % groups)
                .unwrap_or(false);
            (crashed, cut, s.link)
        };
        if crashed_edge {
            self.fstats.crash_dropped += 1;
            self.extra.frames_sent += 1;
            self.extra.dropped_loss += 1;
            return Ok(());
        }
        if partition_cut {
            self.fstats.partition_dropped += 1;
            self.extra.frames_sent += 1;
            self.extra.dropped_partition += 1;
            return Ok(());
        }
        if link.drop > 0.0 && self.rng.random_bool(link.drop) {
            self.fstats.dropped += 1;
            self.extra.frames_sent += 1;
            self.extra.dropped_loss += 1;
            return Ok(());
        }
        if link.duplicate > 0.0 && self.rng.random_bool(link.duplicate) {
            self.fstats.duplicated += 1;
            self.inner.send(to, frame)?;
        }
        if link.delay > 0.0 && self.rng.random_bool(link.delay) {
            self.fstats.delayed += 1;
            self.held
                .push_back((link.delay_sends.max(1), to, frame.to_vec()));
            return Ok(());
        }
        self.inner.send(to, frame)
    }

    fn poll(&mut self) -> Result<(), TransportError> {
        self.flush_held()?;
        self.inner.poll()
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> Result<Option<PeerId>, TransportError> {
        let local = self.inner.local_peer();
        if self.ctl.is_crashed(local) {
            // A crashed process reads nothing; drain and discard whatever
            // the inner transport delivered so a restart starts clean.
            while self.inner.recv_into(buf)?.is_some() {
                self.fstats.crash_rx_dropped += 1;
                self.extra.dead_letters += 1;
            }
            buf.clear();
            return Ok(None);
        }
        self.inner.recv_into(buf)
    }

    fn stats(&self) -> TransportStats {
        let mut stats = self.inner.stats();
        stats.merge(&self.extra);
        stats
    }
}

/// A replayable fault schedule: which [`FaultEvent`] fires before which
/// operation index, plus the link-fault profile — everything a chaos run
/// needs to reproduce bit-for-bit from the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed the schedule (and every endpoint RNG) derives from.
    pub seed: u64,
    /// Link faults in force for the whole run.
    pub link: LinkFaults,
    /// `(operation index, event)` pairs, ascending by index.
    pub events: Vec<(usize, FaultEvent)>,
}

impl FaultPlan {
    /// A plan with no scheduled events.
    pub fn quiet(seed: u64, link: LinkFaults) -> Self {
        FaultPlan {
            seed,
            link,
            events: Vec::new(),
        }
    }

    /// Generates a deterministic schedule over `ops` operations against
    /// `hosts` host peers: at most one host is down at any moment, the
    /// driver (peer 0) never crashes, and every fault is lifted by the
    /// end of the run.
    pub fn generate(seed: u64, hosts: u64, ops: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_9E0D);
        let mut events: Vec<(usize, FaultEvent)> = Vec::new();
        let mut down: Option<PeerId> = None;
        let mut split = false;
        for at in 0..ops {
            match down {
                Some(peer) => {
                    if rng.random_bool(0.22) {
                        events.push((at, FaultEvent::Restart(peer)));
                        down = None;
                    }
                }
                None => {
                    if hosts > 0 && rng.random_bool(0.05) {
                        let peer = 1 + rng.random_range(0..hosts);
                        events.push((at, FaultEvent::Crash(peer)));
                        down = Some(peer);
                    }
                }
            }
            if split {
                if rng.random_bool(0.35) {
                    events.push((at, FaultEvent::Heal));
                    split = false;
                }
            } else if rng.random_bool(0.02) {
                events.push((at, FaultEvent::Partition(2)));
                split = true;
            }
        }
        if let Some(peer) = down {
            events.push((ops, FaultEvent::Restart(peer)));
        }
        if split {
            events.push((ops, FaultEvent::Heal));
        }
        FaultPlan {
            seed,
            link: LinkFaults::default(),
            events,
        }
    }

    /// Applies every event scheduled at operation index `at` to `ctl`,
    /// returning how many fired.
    pub fn fire(&self, at: usize, ctl: &FaultCtl) -> usize {
        let mut fired = 0;
        for &(idx, event) in &self.events {
            if idx == at {
                ctl.apply(event);
                fired += 1;
            }
        }
        fired
    }
}

/// An in-process cluster (driver + host threads over one vnet hub) with
/// every endpoint wrapped in a [`FaultTransport`] sharing one
/// [`FaultCtl`] — the rig chaos runs and fault-mode benchmarks drive.
pub struct FaultyCluster {
    driver: Driver<FaultTransport<VnetTransport>>,
    ctl: FaultCtl,
    handles: Vec<std::thread::JoinHandle<HostReport>>,
}

impl FaultyCluster {
    /// Starts `hosts` host threads over an ideal vnet hub with the given
    /// link-fault profile; `seed` drives every endpoint's fault rolls.
    pub fn start(hosts: u64, config: VoroNetConfig, link: LinkFaults, seed: u64) -> Self {
        let hub = VnetHub::new(voronet_sim::NetworkModel::ideal());
        let ctl = FaultCtl::new(link);
        let driver_t = FaultTransport::new(hub.endpoint(DRIVER_PEER), ctl.clone(), seed);
        let driver = Driver::new(driver_t, hosts, config);
        let mut handles = Vec::new();
        for peer in 1..=hosts {
            let t = FaultTransport::new(hub.endpoint(peer), ctl.clone(), seed);
            handles.push(std::thread::spawn(move || {
                let mut node = HostNode::new(t, peer, hosts);
                node.run().expect("vnet transport cannot fail");
                HostReport {
                    peer,
                    stats: node.transport_stats(),
                    ops_served: node.ops_served(),
                }
            }));
        }
        FaultyCluster {
            driver,
            ctl,
            handles,
        }
    }

    /// The cluster's driver.
    pub fn driver(&mut self) -> &mut Driver<FaultTransport<VnetTransport>> {
        &mut self.driver
    }

    /// The shared fault switchboard.
    pub fn ctl(&self) -> &FaultCtl {
        &self.ctl
    }

    /// Heals every fault, shuts the hosts down and returns their final
    /// reports (a crashed host can't hear a shutdown, so the blackhole is
    /// always lifted first).
    pub fn shutdown(mut self) -> Result<Vec<HostReport>, crate::cluster::ClusterError> {
        self.ctl.heal_all();
        self.driver.shutdown_hosts()?;
        let mut reports = Vec::new();
        for handle in self.handles {
            reports.push(handle.join().expect("host thread panicked"));
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnet::VnetHub;
    use voronet_sim::NetworkModel;

    fn frame(from: u64, to: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        crate::wire::WireMsg::Hello
            .encode(from, to, &mut buf)
            .unwrap();
        buf
    }

    #[test]
    fn crashed_peers_blackhole_both_directions() {
        let hub = VnetHub::new(NetworkModel::ideal());
        let ctl = FaultCtl::new(LinkFaults::default());
        let mut a = FaultTransport::new(hub.endpoint(1), ctl.clone(), 7);
        let mut b = FaultTransport::new(hub.endpoint(2), ctl.clone(), 7);
        let mut buf = Vec::new();

        a.send(2, &frame(1, 2)).unwrap();
        assert_eq!(b.recv_into(&mut buf).unwrap(), Some(1));

        ctl.crash(2);
        a.send(2, &frame(1, 2)).unwrap(); // dropped at the sender
        assert_eq!(a.fault_stats().crash_dropped, 1);
        assert_eq!(b.recv_into(&mut buf).unwrap(), None);

        // Frames delivered by the inner transport while crashed are
        // discarded, not replayed after the restart.
        ctl.restart(2);
        a.send(2, &frame(1, 2)).unwrap();
        ctl.crash(2);
        assert_eq!(b.recv_into(&mut buf).unwrap(), None);
        assert_eq!(b.fault_stats().crash_rx_dropped, 1);
        ctl.restart(2);
        assert_eq!(b.recv_into(&mut buf).unwrap(), None);

        a.send(2, &frame(1, 2)).unwrap();
        assert_eq!(b.recv_into(&mut buf).unwrap(), Some(1));
    }

    #[test]
    fn partitions_cut_cross_group_links_only() {
        let hub = VnetHub::new(NetworkModel::ideal());
        let ctl = FaultCtl::new(LinkFaults::default());
        let mut a = FaultTransport::new(hub.endpoint(1), ctl.clone(), 7);
        let mut b = FaultTransport::new(hub.endpoint(2), ctl.clone(), 7);
        let mut c = FaultTransport::new(hub.endpoint(3), ctl.clone(), 7);
        let mut buf = Vec::new();

        ctl.partition(2);
        a.send(2, &frame(1, 2)).unwrap(); // 1 % 2 != 2 % 2: cut
        a.send(3, &frame(1, 3)).unwrap(); // 1 % 2 == 3 % 2: delivered
        assert_eq!(a.fault_stats().partition_dropped, 1);
        assert_eq!(b.recv_into(&mut buf).unwrap(), None);
        assert_eq!(c.recv_into(&mut buf).unwrap(), Some(1));

        ctl.heal();
        a.send(2, &frame(1, 2)).unwrap();
        assert_eq!(b.recv_into(&mut buf).unwrap(), Some(1));
    }

    #[test]
    fn link_faults_inject_deterministically_per_seed() {
        let run = |seed: u64| {
            let hub = VnetHub::new(NetworkModel::ideal());
            let ctl = FaultCtl::new(LinkFaults {
                drop: 0.3,
                duplicate: 0.2,
                delay: 0.2,
                delay_sends: 2,
            });
            let mut a = FaultTransport::new(hub.endpoint(1), ctl.clone(), seed);
            let mut b = FaultTransport::new(hub.endpoint(2), ctl, seed);
            for _ in 0..200 {
                a.send(2, &frame(1, 2)).unwrap();
            }
            a.poll().unwrap();
            a.poll().unwrap();
            a.poll().unwrap();
            let mut buf = Vec::new();
            let mut delivered = 0u64;
            while b.recv_into(&mut buf).unwrap().is_some() {
                delivered += 1;
            }
            (a.fault_stats(), delivered)
        };
        let (s1, d1) = run(42);
        let (s2, d2) = run(42);
        assert_eq!(s1, s2, "same seed, same injected faults");
        assert_eq!(d1, d2);
        assert!(s1.dropped > 0 && s1.duplicated > 0 && s1.delayed > 0);
        let (s3, _) = run(43);
        assert_ne!(s1, s3, "different seed, different rolls");
    }

    #[test]
    fn generated_plans_are_deterministic_and_end_healed() {
        let p1 = FaultPlan::generate(9, 4, 300);
        let p2 = FaultPlan::generate(9, 4, 300);
        assert_eq!(p1, p2);
        assert!(!p1.events.is_empty(), "300 ops should schedule something");
        // Replaying the schedule leaves no fault standing and never
        // crashes two hosts at once (nor the driver).
        let ctl = FaultCtl::new(LinkFaults::default());
        for at in 0..=300 {
            p1.fire(at, &ctl);
            let state = ctl.lock();
            assert!(state.crashed.len() <= 1, "at most one host down");
            assert!(!state.crashed.contains(&DRIVER_PEER));
        }
        let state = ctl.lock();
        assert!(state.crashed.is_empty(), "all hosts restarted by the end");
        assert!(state.partition.is_none(), "partitions healed by the end");
    }
}
