//! Wire protocol and pluggable transports: the deployable face of the
//! VoroNet overlay (Beaumont, Kermarrec, Marchal, Rivière — IPDPS'07).
//!
//! Everything below `core` speaks [`ProtocolMsg`](voronet_core::ProtocolMsg)
//! values through a simulated scheduler.  This crate gives those messages a
//! concrete byte representation and moves them over real sockets:
//!
//! * [`frame`] — the versioned frame header, decode errors and the
//!   bounds-checked reader every payload parser is built on.
//! * [`wire`] — the message codec: [`wire::WireMsg`] encodes into
//!   compact frames and decodes into zero-copy borrowed views, totally
//!   (typed errors, never panics).
//! * [`transport`] — the pluggable [`transport::Transport`] contract:
//!   datagram semantics, loss counted rather than surfaced.
//! * [`vnet`] — the deterministic in-memory transport wrapping
//!   [`NetworkModel`](voronet_sim::NetworkModel): same seed, same drops,
//!   same order, same stats.
//! * [`udp`] / [`tcp`] — real loopback/LAN transports over std sockets
//!   (one frame per datagram; length-delimited streams with reconnect).
//! * [`tap`] — [`tap::CodecTap`] round-trips the simulated runtime's
//!   messages through the codec, proving transparency.
//! * [`cluster`] — a driver + hosts deployment speaking the wire protocol
//!   over any transport, conformant with the single-process engines.
//! * [`fault`] — seeded deterministic fault injection
//!   ([`fault::FaultTransport`] wraps any transport; [`fault::FaultPlan`]
//!   schedules crashes, restarts and partitions) for chaos testing.
//!
//! The `voronet-node` binary (crate `crates/node`) builds on [`cluster`]
//! to run a live overlay over localhost sockets.

#![warn(missing_docs)]

pub mod cluster;
pub mod fault;
pub mod frame;
pub mod tap;
pub mod tcp;
pub mod transport;
pub mod udp;
pub mod vnet;
pub mod wire;

pub use cluster::{
    host_of, ClusterError, ClusterStats, Driver, HostNode, HostReport, HostState, Liveness,
    LocalCluster, OpOutcome, PipelinedRoute, RetryPolicy, DRIVER_PEER,
};
pub use fault::{
    FaultCtl, FaultEvent, FaultPlan, FaultStats, FaultTransport, FaultyCluster, LinkFaults,
};
pub use frame::{DecodeError, FrameHeader, HEADER_LEN, MAGIC, MAX_FRAME_LEN, WIRE_VERSION};
pub use tap::CodecTap;
pub use tcp::TcpTransport;
pub use transport::{PeerId, Transport, TransportError};
pub use udp::UdpTransport;
pub use vnet::{VnetHub, VnetTransport};
pub use wire::{EncodeError, EntryList, IdList, PointList, WireMsg, WirePurpose, WireQuery};
