//! TCP transport: length-delimited frames over per-peer connections,
//! with reconnect.
//!
//! Streams carry frames back to back; the fixed header's `len` field
//! delimits them, and each connection keeps a reassembly buffer for
//! frames split across reads.  Connections are opened lazily on first
//! send and announced with a [`WireMsg::Hello`] preamble, so the
//! accepting side learns the peer id from the first frame's header
//! (reconnecting peers replace their old connection).  A failed write
//! drops the connection and retries once over a fresh one — counted in
//! [`TransportStats::reconnects`]; a frame that still cannot be written
//! is counted as loss.  A corrupt stream (header that fails to decode)
//! cannot be resynchronised and closes the connection.

use crate::frame::{FrameHeader, HEADER_LEN, MAX_FRAME_LEN};
use crate::transport::{PeerId, Transport, TransportError};
use crate::wire::WireMsg;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};
use voronet_sim::TransportStats;

const KIND_HELLO: u8 = 0; // WireMsg::Hello discriminant (filtered below)

/// How long a single frame write may retry on a full send buffer before
/// the connection is considered dead.
const WRITE_DEADLINE: Duration = Duration::from_secs(2);

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Reassembly buffer for frames split across reads.
    rbuf: Vec<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
        })
    }

    /// Reads whatever the socket has; `Ok(false)` when the connection is
    /// closed or broken.
    fn pump_read(&mut self) -> bool {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return false,
                Ok(n) => self.rbuf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Pops the next complete frame from the reassembly buffer.
    /// `Err(())` marks an unrecoverable corrupt stream.
    fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ()> {
        if self.rbuf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = FrameHeader::decode(&self.rbuf).map_err(|_| ())?;
        let total = HEADER_LEN + header.len as usize;
        if self.rbuf.len() < total {
            return Ok(None);
        }
        let frame = self.rbuf[..total].to_vec();
        self.rbuf.drain(..total);
        Ok(Some(frame))
    }

    /// Writes one whole frame, retrying short writes and full buffers
    /// until [`WRITE_DEADLINE`]; `false` when the connection is dead.
    fn write_frame(&mut self, frame: &[u8]) -> bool {
        let start = Instant::now();
        let mut written = 0;
        while written < frame.len() {
            match self.stream.write(&frame[written..]) {
                Ok(0) => return false,
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if start.elapsed() > WRITE_DEADLINE {
                        return false;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }
}

/// A [`Transport`] over per-peer TCP connections.
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
    peer: PeerId,
    peers: HashMap<PeerId, SocketAddr>,
    /// Established, identified connections.
    conns: HashMap<PeerId, Conn>,
    /// Accepted inbound connections whose first frame has not arrived
    /// yet (the peer is unknown until it does).
    pending: Vec<Conn>,
    /// Peers we have connected out to before (connections beyond the
    /// first are reconnects).
    ever_connected: HashSet<PeerId>,
    inbox: VecDeque<(PeerId, Vec<u8>)>,
    stats: TransportStats,
}

impl TcpTransport {
    /// Binds a listener on `addr` (e.g. `"127.0.0.1:7200"`) as `peer`.
    pub fn bind(peer: PeerId, addr: &str) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|e| match e.kind() {
            ErrorKind::InvalidInput => TransportError::BadAddress(addr.to_string()),
            _ => TransportError::Io(e),
        })?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport {
            listener,
            peer,
            peers: HashMap::new(),
            conns: HashMap::new(),
            pending: Vec::new(),
            ever_connected: HashSet::new(),
            inbox: VecDeque::new(),
            stats: TransportStats::new(),
        })
    }

    /// The local listener address (useful when bound to port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.listener.local_addr()?)
    }

    /// Opens a fresh connection to `to` and sends the Hello preamble.
    fn connect(&mut self, to: PeerId) -> Result<Conn, TransportError> {
        let addr = *self.peers.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        if !self.ever_connected.insert(to) {
            self.stats.reconnects += 1;
        }
        let stream = TcpStream::connect(addr)?;
        let mut conn = Conn::new(stream)?;
        let mut hello = Vec::new();
        WireMsg::Hello
            .encode(self.peer, to, &mut hello)
            .expect("hello is tiny");
        if !conn.write_frame(&hello) {
            return Err(TransportError::Io(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "hello preamble failed",
            )));
        }
        Ok(conn)
    }

    /// Accepts inbound connections and pumps every connection's read
    /// side, moving complete frames into the inbox.
    fn pump(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(conn) = Conn::new(stream) {
                        self.pending.push(conn);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Identify pending connections by their first frame's header.
        let mut identified = Vec::new();
        let mut keep = Vec::new();
        for mut conn in std::mem::take(&mut self.pending) {
            let alive = conn.pump_read();
            match conn.next_frame() {
                Ok(Some(frame)) => {
                    let header = FrameHeader::decode(&frame).expect("validated by next_frame");
                    identified.push((header.from, header.kind, frame, conn));
                }
                Ok(None) => {
                    if alive {
                        keep.push(conn);
                    }
                }
                Err(()) => {
                    self.stats.decode_errors += 1;
                }
            }
        }
        self.pending = keep;
        for (from, kind, frame, conn) in identified {
            // A reconnecting peer replaces its old connection.
            self.conns.insert(from, conn);
            if kind != KIND_HELLO {
                self.stats.frames_delivered += 1;
                self.inbox.push_back((from, frame));
            }
        }

        // Pump established connections.
        let mut dead = Vec::new();
        for (&peer, conn) in self.conns.iter_mut() {
            let alive = conn.pump_read();
            loop {
                match conn.next_frame() {
                    Ok(Some(frame)) => {
                        let header = FrameHeader::decode(&frame).expect("validated");
                        if header.kind != KIND_HELLO {
                            self.stats.frames_delivered += 1;
                            self.inbox.push_back((header.from, frame));
                        }
                    }
                    Ok(None) => break,
                    Err(()) => {
                        self.stats.decode_errors += 1;
                        dead.push(peer);
                        break;
                    }
                }
            }
            if !alive {
                dead.push(peer);
            }
        }
        for peer in dead {
            self.conns.remove(&peer);
        }
    }
}

impl Transport for TcpTransport {
    fn local_peer(&self) -> PeerId {
        self.peer
    }

    fn register(&mut self, peer: PeerId, addr: &str) -> Result<(), TransportError> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|_| TransportError::BadAddress(addr.to_string()))?;
        self.peers.insert(peer, addr);
        Ok(())
    }

    fn send(&mut self, to: PeerId, frame: &[u8]) -> Result<(), TransportError> {
        if frame.len() > MAX_FRAME_LEN {
            self.stats.oversized += 1;
            return Err(TransportError::Oversized { len: frame.len() });
        }
        if !self.peers.contains_key(&to) {
            return Err(TransportError::UnknownPeer(to));
        }
        self.stats.frames_sent += 1;
        if !self.conns.contains_key(&to) {
            match self.connect(to) {
                Ok(conn) => {
                    self.conns.insert(to, conn);
                }
                Err(TransportError::Io(_)) => {
                    self.stats.dropped_loss += 1;
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        let wrote = self
            .conns
            .get_mut(&to)
            .map(|c| c.write_frame(frame))
            .unwrap_or(false);
        if wrote {
            return Ok(());
        }
        // The connection died under us: reconnect once and retry.
        self.conns.remove(&to);
        match self.connect(to) {
            Ok(mut conn) => {
                let wrote = conn.write_frame(frame);
                self.conns.insert(to, conn);
                if !wrote {
                    self.stats.dropped_loss += 1;
                }
            }
            Err(TransportError::Io(_)) => {
                self.stats.dropped_loss += 1;
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<(), TransportError> {
        self.pump();
        if self.inbox.is_empty() {
            std::thread::sleep(Duration::from_micros(200));
        }
        Ok(())
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> Result<Option<PeerId>, TransportError> {
        if self.inbox.is_empty() {
            self.pump();
        }
        match self.inbox.pop_front() {
            Some((from, frame)) => {
                buf.clear();
                buf.extend_from_slice(&frame);
                Ok(Some(from))
            }
            None => Ok(None),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_one(t: &mut TcpTransport, deadline: Duration) -> Option<(PeerId, Vec<u8>)> {
        let start = Instant::now();
        let mut buf = Vec::new();
        while start.elapsed() < deadline {
            if let Some(from) = t.recv_into(&mut buf).unwrap() {
                return Some((from, buf));
            }
            t.poll().unwrap();
        }
        None
    }

    #[test]
    fn frames_cross_the_loopback_with_reassembly() {
        let mut a = TcpTransport::bind(1, "127.0.0.1:0").unwrap();
        let mut b = TcpTransport::bind(2, "127.0.0.1:0").unwrap();
        a.register(2, &b.local_addr().unwrap().to_string()).unwrap();
        b.register(1, &a.local_addr().unwrap().to_string()).unwrap();

        // Several frames back to back on one connection, including a big
        // one that will span multiple reads.
        let mut frames = Vec::new();
        for tag in 0..3u64 {
            let mut scratch = Vec::new();
            let ids: Vec<u64> = (0..2_000).map(|i| i * (tag + 1)).collect();
            let list = crate::wire::IdList::build(&mut scratch, &ids);
            let mut frame = Vec::new();
            WireMsg::AnswerMatches {
                token: tag,
                hops: 1,
                visited: 5,
                matches: list,
            }
            .encode(1, 2, &mut frame)
            .unwrap();
            frames.push(frame);
        }
        for f in &frames {
            a.send(2, f).unwrap();
        }
        for expected in &frames {
            let (from, got) = recv_one(&mut b, Duration::from_secs(5)).expect("frame arrives");
            assert_eq!(from, 1);
            assert_eq!(&got, expected);
        }
        assert_eq!(a.stats().frames_sent, 3);
        assert_eq!(a.stats().reconnects, 0);
        assert_eq!(b.stats().frames_delivered, 3);
    }

    #[test]
    fn replies_flow_back_over_a_second_connection() {
        let mut a = TcpTransport::bind(1, "127.0.0.1:0").unwrap();
        let mut b = TcpTransport::bind(2, "127.0.0.1:0").unwrap();
        a.register(2, &b.local_addr().unwrap().to_string()).unwrap();
        b.register(1, &a.local_addr().unwrap().to_string()).unwrap();

        let mut ping = Vec::new();
        WireMsg::Ping { reply: false }
            .encode(1, 2, &mut ping)
            .unwrap();
        a.send(2, &ping).unwrap();
        let (from, _) = recv_one(&mut b, Duration::from_secs(5)).unwrap();
        assert_eq!(from, 1);

        let mut pong = Vec::new();
        WireMsg::Ping { reply: true }
            .encode(2, 1, &mut pong)
            .unwrap();
        b.send(1, &pong).unwrap();
        let (from, got) = recv_one(&mut a, Duration::from_secs(5)).unwrap();
        assert_eq!(from, 2);
        let (_, msg) = WireMsg::decode(&got).unwrap();
        assert_eq!(msg, WireMsg::Ping { reply: true });
    }

    #[test]
    fn a_restarted_peer_triggers_reconnect() {
        let mut a = TcpTransport::bind(1, "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(2, "127.0.0.1:0").unwrap();
        let b_addr = b.local_addr().unwrap().to_string();
        a.register(2, &b_addr).unwrap();

        let mut frame = Vec::new();
        WireMsg::Ping { reply: false }
            .encode(1, 2, &mut frame)
            .unwrap();
        a.send(2, &frame).unwrap();
        drop(b); // peer goes away; the established connection dies

        let mut b2 = TcpTransport::bind(2, &b_addr).expect("rebind the same port");
        b2.register(1, &a.local_addr().unwrap().to_string())
            .unwrap();
        // Keep sending until a frame makes it across the new connection;
        // the first writes may land in the dead socket's buffer.
        let start = Instant::now();
        loop {
            a.send(2, &frame).unwrap();
            if let Some((from, _)) = recv_one(&mut b2, Duration::from_millis(100)) {
                assert_eq!(from, 1);
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "no frame after restart; stats {:?}",
                a.stats()
            );
        }
        assert!(a.stats().reconnects >= 1, "{:?}", a.stats());
    }

    #[test]
    fn write_failure_reconnects_once_then_counts_loss() {
        let mut a = TcpTransport::bind(1, "127.0.0.1:0").unwrap();
        let mut b = TcpTransport::bind(2, "127.0.0.1:0").unwrap();
        a.register(2, &b.local_addr().unwrap().to_string()).unwrap();

        let mut frame = Vec::new();
        WireMsg::Ping { reply: false }
            .encode(1, 2, &mut frame)
            .unwrap();
        a.send(2, &frame).unwrap();
        assert!(recv_one(&mut b, Duration::from_secs(5)).is_some());
        assert_eq!(a.stats().reconnects, 0);
        drop(b); // the peer dies for good: nothing listens there any more

        // Until the kernel reports the dead connection, writes may still
        // land in the socket buffer; once it does, each send must attempt
        // exactly one reconnect (refused) and count the frame as loss —
        // never surface an error, never retry beyond that one reconnect.
        let start = Instant::now();
        let mut sends = 1u64;
        while a.stats().dropped_loss == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "the dead connection never failed a write: {:?}",
                a.stats()
            );
            a.send(2, &frame).unwrap();
            sends += 1;
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = a.stats();
        assert!(stats.dropped_loss >= 1, "{stats:?}");
        assert!(stats.reconnects >= 1, "{stats:?}");
        assert!(
            stats.reconnects <= sends,
            "more than one reconnect per failed send: {stats:?}"
        );
        assert_eq!(stats.frames_sent, sends);
    }
}
