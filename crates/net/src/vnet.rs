//! The deterministic in-memory transport: today's simulated network
//! ([`NetworkModel`]) behind the [`Transport`] trait.
//!
//! A [`VnetHub`] is a shared switch all endpoints of one virtual network
//! hang off.  `send` consults the hub's `NetworkModel` exactly like the
//! discrete-event simulator does — partitions first, then one latency
//! draw, then the loss coin, in that fixed RNG order — and a surviving
//! frame is timestamped `now + delay` in the hub's virtual clock (one
//! tick per submission).  `recv_into` drains frames in
//! `(delivery time, submission sequence)` order, so a single-threaded
//! session is bit-deterministic per seed: same sends → same drops, same
//! ordering, same [`TransportStats`].  Endpoints are `Send` (the hub is a
//! mutex-shared switch), so a multi-threaded demo can reuse them; only
//! single-threaded use carries the determinism guarantee.
//!
//! Frames addressed to a peer with no open endpoint are dead letters —
//! counted, never delivered, like the simulator's departed-node handling.

use crate::frame::MAX_FRAME_LEN;
use crate::transport::{PeerId, Transport, TransportError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Mutex};
use voronet_sim::{Delivery, NetworkModel, SimTime, TransportStats};

/// One frame waiting in a peer's mailbox, ordered by
/// `(delivery time, submission sequence)`.
#[derive(Debug)]
struct InFlight {
    at: SimTime,
    seq: u64,
    from: PeerId,
    frame: Vec<u8>,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
struct HubInner {
    network: NetworkModel,
    /// Virtual clock: one tick per submission, so latency draws shape the
    /// delivery order exactly as they shape the simulator's event order.
    now: SimTime,
    /// Submission sequence breaking delivery-time ties deterministically.
    seq: u64,
    /// Per-destination mailboxes of frames in flight.
    mailboxes: HashMap<PeerId, BinaryHeap<Reverse<InFlight>>>,
    /// Peers with an open endpoint; frames to anyone else dead-letter.
    open: HashMap<PeerId, TransportStats>,
}

/// The shared switch of one virtual network.  Create endpoints with
/// [`VnetHub::endpoint`]; drop an endpoint to close its mailbox (later
/// frames to it count as dead letters).
#[derive(Debug, Clone)]
pub struct VnetHub {
    inner: Arc<Mutex<HubInner>>,
}

impl VnetHub {
    /// Creates a hub over the given network conditions.
    pub fn new(network: NetworkModel) -> Self {
        VnetHub {
            inner: Arc::new(Mutex::new(HubInner {
                network,
                now: 0,
                seq: 0,
                mailboxes: HashMap::new(),
                open: HashMap::new(),
            })),
        }
    }

    /// Opens the endpoint of `peer` on this hub.  Re-opening a peer id
    /// resets its mailbox and counters.
    pub fn endpoint(&self, peer: PeerId) -> VnetTransport {
        let mut inner = self.inner.lock().expect("hub poisoned");
        inner.open.insert(peer, TransportStats::new());
        inner.mailboxes.insert(peer, BinaryHeap::new());
        VnetTransport {
            hub: self.inner.clone(),
            peer,
        }
    }

    /// Aggregated counters over every endpoint ever opened on this hub.
    pub fn total_stats(&self) -> TransportStats {
        let inner = self.inner.lock().expect("hub poisoned");
        let mut total = TransportStats::new();
        for stats in inner.open.values() {
            total.merge(stats);
        }
        total
    }
}

/// One peer's endpoint on a [`VnetHub`].
#[derive(Debug)]
pub struct VnetTransport {
    hub: Arc<Mutex<HubInner>>,
    peer: PeerId,
}

impl Drop for VnetTransport {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.hub.lock() {
            // Keep the stats entry (for `total_stats`) but close the
            // mailbox: the peer no longer receives.
            inner.mailboxes.remove(&self.peer);
        }
    }
}

impl Transport for VnetTransport {
    fn local_peer(&self) -> PeerId {
        self.peer
    }

    fn register(&mut self, _peer: PeerId, _addr: &str) -> Result<(), TransportError> {
        // Hub membership is the address book.
        Ok(())
    }

    fn send(&mut self, to: PeerId, frame: &[u8]) -> Result<(), TransportError> {
        let mut inner = self.hub.lock().expect("hub poisoned");
        let inner = &mut *inner;
        let stats = inner.open.entry(self.peer).or_default();
        if frame.len() > MAX_FRAME_LEN {
            stats.oversized += 1;
            return Err(TransportError::Oversized { len: frame.len() });
        }
        stats.frames_sent += 1;
        inner.now += 1;
        let now = inner.now;
        match inner.network.delivery(self.peer, to, now) {
            Delivery::DroppedLoss => {
                inner.open.entry(self.peer).or_default().dropped_loss += 1;
            }
            Delivery::DroppedPartition => {
                inner.open.entry(self.peer).or_default().dropped_partition += 1;
            }
            Delivery::Deliver { delay } => match inner.mailboxes.get_mut(&to) {
                Some(mailbox) => {
                    inner.seq += 1;
                    mailbox.push(Reverse(InFlight {
                        at: now + delay,
                        seq: inner.seq,
                        from: self.peer,
                        frame: frame.to_vec(),
                    }));
                }
                None => {
                    inner.open.entry(self.peer).or_default().dead_letters += 1;
                }
            },
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<(), TransportError> {
        // Delivery order is already fixed at send time; nothing to pump.
        // Yield so co-scheduled endpoint threads can make progress.
        std::thread::yield_now();
        Ok(())
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> Result<Option<PeerId>, TransportError> {
        let mut inner = self.hub.lock().expect("hub poisoned");
        let inner = &mut *inner;
        let Some(mailbox) = inner.mailboxes.get_mut(&self.peer) else {
            return Ok(None);
        };
        match mailbox.pop() {
            Some(Reverse(in_flight)) => {
                buf.clear();
                buf.extend_from_slice(&in_flight.frame);
                inner.open.entry(self.peer).or_default().frames_delivered += 1;
                Ok(Some(in_flight.from))
            }
            None => Ok(None),
        }
    }

    fn stats(&self) -> TransportStats {
        let inner = self.hub.lock().expect("hub poisoned");
        inner.open.get(&self.peer).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voronet_sim::LatencyModel;

    fn frame(tag: u8) -> Vec<u8> {
        vec![tag; 8]
    }

    #[test]
    fn ideal_hub_delivers_in_order() {
        let hub = VnetHub::new(NetworkModel::ideal());
        let mut a = hub.endpoint(1);
        let mut b = hub.endpoint(2);
        for tag in 0..5u8 {
            a.send(2, &frame(tag)).unwrap();
        }
        let mut buf = Vec::new();
        for tag in 0..5u8 {
            let from = b.recv_into(&mut buf).unwrap();
            assert_eq!(from, Some(1));
            assert_eq!(buf, frame(tag));
        }
        assert_eq!(b.recv_into(&mut buf).unwrap(), None);
        assert_eq!(a.stats().frames_sent, 5);
        assert_eq!(b.stats().frames_delivered, 5);
    }

    #[test]
    fn identical_sessions_are_bit_deterministic() {
        let session = || {
            let hub = VnetHub::new(
                NetworkModel::new(42, LatencyModel::Uniform { min: 1, max: 30 }).with_loss(0.3),
            );
            let mut a = hub.endpoint(1);
            let mut b = hub.endpoint(2);
            for tag in 0..100u8 {
                a.send(2, &frame(tag)).unwrap();
            }
            let mut got = Vec::new();
            let mut buf = Vec::new();
            while b.recv_into(&mut buf).unwrap().is_some() {
                got.push(buf[0]);
            }
            (got, a.stats(), b.stats())
        };
        let (got1, a1, b1) = session();
        let (got2, a2, b2) = session();
        assert_eq!(got1, got2);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert!(a1.dropped_loss > 0, "{a1:?}");
        assert_eq!(
            a1.frames_sent,
            a1.dropped_loss + b1.frames_delivered,
            "every frame is delivered or counted"
        );
    }

    #[test]
    fn latency_reorders_across_senders_deterministically() {
        // Two senders with skewed latency: delivery order is by
        // (timestamp, submission seq), not submission order alone.
        let hub = VnetHub::new(NetworkModel::new(
            7,
            LatencyModel::Uniform { min: 1, max: 50 },
        ));
        let mut a = hub.endpoint(1);
        let mut b = hub.endpoint(2);
        let mut c = hub.endpoint(3);
        for tag in 0..20u8 {
            a.send(3, &frame(tag)).unwrap();
            b.send(3, &frame(100 + tag)).unwrap();
        }
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while c.recv_into(&mut buf).unwrap().is_some() {
            got.push(buf[0]);
        }
        assert_eq!(got.len(), 40);
        assert_ne!(
            got,
            (0..20u8).flat_map(|t| [t, 100 + t]).collect::<Vec<_>>(),
            "uniform latency in [1, 50] must reorder at least once"
        );
    }

    #[test]
    fn closed_endpoints_dead_letter() {
        let hub = VnetHub::new(NetworkModel::ideal());
        let mut a = hub.endpoint(1);
        {
            let _b = hub.endpoint(2);
        } // dropped: mailbox closed
        a.send(2, &frame(0)).unwrap();
        a.send(99, &frame(1)).unwrap(); // never opened
        assert_eq!(a.stats().dead_letters, 2);
        assert_eq!(a.stats().frames_sent, 2);
    }

    #[test]
    fn oversized_frames_are_rejected_and_counted() {
        let hub = VnetHub::new(NetworkModel::ideal());
        let mut a = hub.endpoint(1);
        let _b = hub.endpoint(2);
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            a.send(2, &big),
            Err(TransportError::Oversized { .. })
        ));
        assert_eq!(a.stats().oversized, 1);
        assert_eq!(a.stats().frames_sent, 0);
    }

    #[test]
    fn partition_windows_sever_groups() {
        use voronet_sim::PartitionWindow;
        let hub = VnetHub::new(NetworkModel::ideal().with_partition(PartitionWindow {
            start: 0,
            end: SimTime::MAX,
            groups: 2,
        }));
        let mut a = hub.endpoint(0);
        let _b = hub.endpoint(1);
        let _c = hub.endpoint(2);
        a.send(1, &frame(0)).unwrap(); // 0 vs 1: different groups
        a.send(2, &frame(1)).unwrap(); // 0 vs 2: same group
        let stats = a.stats();
        assert_eq!(stats.dropped_partition, 1, "{stats:?}");
    }
}
