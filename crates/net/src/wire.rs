//! Payload codec: every message the overlay exchanges, as a compact
//! little-endian binary layout behind the [`crate::frame`] header.
//!
//! [`WireMsg`] covers two families sharing one kind-byte space:
//!
//! * the **protocol mirror** — one variant per [`ProtocolMsg`] of the
//!   asynchronous runtime (`Join`/`RouteStep`/`NeighborUpdate`/`Leave`/
//!   `Ping`/`Answer`), so the simulated path can round-trip its traffic
//!   through the real codec (see [`crate::tap::CodecTap`]);
//! * the **cluster protocol** — the control- and data-plane messages of a
//!   deployed overlay (`ViewUpdate`/`RouteReq`/`FloodProbe`/… — see
//!   [`crate::cluster`]).
//!
//! Decode is **zero-copy**: list-valued fields ([`EntryList`],
//! [`IdList`], [`PointList`]) borrow the frame buffer and parse items
//! lazily on iteration; no allocation happens until the caller keeps
//! something.  Decoding is total — malformed bytes yield a typed
//! [`DecodeError`], never a panic.

use crate::frame::{
    put_f64, put_u32, put_u64, DecodeError, FrameHeader, WireReader, HEADER_LEN, MAX_PAYLOAD_LEN,
};
use std::fmt;
use voronet_core::{ProtocolMsg, RoutePurpose};
use voronet_geom::{Point2, Rect};
use voronet_sim::TransportStats;
use voronet_workloads::RadiusQuery;

/// Encoding failed (the only possible reason: the payload exceeds the
/// frame budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The encoded payload would exceed [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// Encoded payload length.
        len: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::Oversized { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte budget"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

const ENTRY_SIZE: usize = 24; // u64 id + 2 × f64 coords
const POINT_SIZE: usize = 16; // 2 × f64
const ID_SIZE: usize = 8; // u64

macro_rules! wire_list {
    ($(#[$doc:meta])* $name:ident, $iter:ident, $item:ty, $size:expr,
     $parse:expr, $write:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name<'a> {
            bytes: &'a [u8],
        }

        impl<'a> $name<'a> {
            /// An empty list.
            pub fn empty() -> Self {
                $name { bytes: &[] }
            }

            /// Serialises `items` into the caller's scratch buffer and
            /// returns a view borrowing it (the encode-side counterpart
            /// of zero-copy decoding).
            pub fn build(scratch: &'a mut Vec<u8>, items: &[$item]) -> Self {
                scratch.clear();
                for item in items {
                    let write: fn(&mut Vec<u8>, &$item) = $write;
                    write(scratch, item);
                }
                $name { bytes: scratch }
            }

            /// Number of items.
            pub fn len(&self) -> usize {
                self.bytes.len() / $size
            }

            /// True when the list has no items.
            pub fn is_empty(&self) -> bool {
                self.bytes.is_empty()
            }

            /// Iterates the items, parsing them out of the borrowed bytes.
            pub fn iter(&self) -> $iter<'a> {
                $iter { bytes: self.bytes }
            }

            /// Collects the items into an owned vector.
            pub fn to_vec(&self) -> Vec<$item> {
                self.iter().collect()
            }

            fn decode(r: &mut WireReader<'a>) -> Result<Self, DecodeError> {
                let count = r.u32()? as usize;
                let bytes = r.bytes(count * $size)?;
                Ok($name { bytes })
            }

            fn encode(&self, buf: &mut Vec<u8>) {
                put_u32(buf, self.len() as u32);
                buf.extend_from_slice(self.bytes);
            }
        }

        /// Iterator over a borrowed list view.
        #[derive(Debug, Clone)]
        pub struct $iter<'a> {
            bytes: &'a [u8],
        }

        impl<'a> Iterator for $iter<'a> {
            type Item = $item;

            fn next(&mut self) -> Option<$item> {
                if self.bytes.len() < $size {
                    return None;
                }
                let (head, tail) = self.bytes.split_at($size);
                self.bytes = tail;
                let parse: fn(&[u8]) -> $item = $parse;
                Some(parse(head))
            }
        }
    };
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

fn read_f64(b: &[u8]) -> f64 {
    f64::from_bits(read_u64(b))
}

wire_list!(
    /// Borrowed list of `(node id, coordinates)` routing-table entries.
    EntryList,
    EntryIter,
    (u64, Point2),
    ENTRY_SIZE,
    |b| (
        read_u64(b),
        Point2::new(read_f64(&b[8..]), read_f64(&b[16..]))
    ),
    |buf, &(id, p)| {
        put_u64(buf, id);
        put_f64(buf, p.x);
        put_f64(buf, p.y);
    }
);

wire_list!(
    /// Borrowed list of points (e.g. a Voronoi cell polygon).
    PointList,
    PointIter,
    Point2,
    POINT_SIZE,
    |b| Point2::new(read_f64(b), read_f64(&b[8..])),
    |buf, &p| {
        put_f64(buf, p.x);
        put_f64(buf, p.y);
    }
);

wire_list!(
    /// Borrowed list of node ids.
    IdList,
    IdIter,
    u64,
    ID_SIZE,
    |b| read_u64(b),
    |buf, &id| put_u64(buf, id)
);

/// Why a [`WireMsg::RouteStep`] is travelling (mirror of
/// [`RoutePurpose`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WirePurpose {
    /// Locate the region owner for a joining object.
    Join {
        /// Position of the joining object.
        position: Point2,
        /// Result-correlation token.
        token: u64,
    },
    /// A point query.
    Query {
        /// Result-correlation token.
        token: u64,
    },
    /// A rectangular area query.
    Area {
        /// Queried rectangle.
        rect: Rect,
        /// Result-correlation token.
        token: u64,
    },
    /// A radius (disk) query.
    Radius {
        /// Disk centre.
        center: Point2,
        /// Disk radius.
        radius: f64,
        /// Result-correlation token.
        token: u64,
    },
}

/// The predicate parameters a flood probe evaluates against one object's
/// Voronoi cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireQuery {
    /// Rectangular range query.
    Rect(
        /// Queried rectangle.
        Rect,
    ),
    /// Radius (disk) query.
    Disk {
        /// Disk centre.
        center: Point2,
        /// Disk radius.
        radius: f64,
    },
}

/// One decoded wire message.  List-valued fields borrow the frame buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireMsg<'a> {
    /// Transport-level preamble identifying the sending peer (TCP sends
    /// it first on every new connection; header `from` carries the id).
    Hello,
    /// Join request from a not-yet-joined object to its bootstrap node.
    Join {
        /// Position the new object wants to publish.
        position: Point2,
        /// Result-correlation token.
        token: u64,
    },
    /// One greedy forwarding step.
    RouteStep {
        /// Point the route converges towards.
        target: Point2,
        /// Peer that initiated the route (receives the answer).
        origin: u64,
        /// Forwarding steps taken so far.
        hops: u32,
        /// What to do on arrival.
        purpose: WirePurpose,
    },
    /// "Your neighbourhood changed — refresh your view."
    NeighborUpdate,
    /// Departure notification.
    Leave,
    /// Liveness probe.
    Ping {
        /// True on the echo leg.
        reply: bool,
    },
    /// Route answer delivered back to the origin.
    Answer {
        /// Hop count of the completed route.
        hops: u32,
        /// Result-correlation token.
        token: u64,
    },
    /// Installs / refreshes one hosted object's view on its host: the
    /// object's coordinates, its flattened routing table, its Voronoi
    /// neighbours (the flood graph) and its clipped Voronoi cell polygon
    /// (the flood-eligibility geometry).
    ViewUpdate {
        /// The object whose view this is.
        object: u64,
        /// Monotonic per-object sequence number (acked by `ViewAck`).
        seq: u64,
        /// The object's attribute coordinates.
        coords: Point2,
        /// Flattened routing neighbours with their coordinates.
        routing: EntryList<'a>,
        /// Voronoi neighbours (subset of `routing` ids).
        vn: IdList<'a>,
        /// Vertices of the object's Voronoi cell clipped to the domain.
        cell: PointList<'a>,
    },
    /// Acknowledges a `ViewUpdate`.
    ViewAck {
        /// Acknowledged object.
        object: u64,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Removes one hosted object from its host.
    Evict {
        /// The departing object.
        object: u64,
        /// Monotonic per-object sequence number (acked by `EvictAck`).
        seq: u64,
    },
    /// Acknowledges an `Evict`.
    EvictAck {
        /// Acknowledged object.
        object: u64,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Asks the host of `from_object` to start a greedy point route.
    RouteReq {
        /// Result-correlation token (fresh per attempt).
        token: u64,
        /// Hosted object the route starts from.
        from_object: u64,
        /// Route target.
        target: Point2,
    },
    /// Asks the host of `from_object` to start a rectangular area query.
    AreaReq {
        /// Result-correlation token (fresh per attempt).
        token: u64,
        /// Hosted object the query starts from.
        from_object: u64,
        /// Queried rectangle.
        rect: Rect,
    },
    /// Asks the host of `from_object` to start a radius query.
    RadiusReq {
        /// Result-correlation token (fresh per attempt).
        token: u64,
        /// Hosted object the query starts from.
        from_object: u64,
        /// Disk centre.
        center: Point2,
        /// Disk radius.
        radius: f64,
    },
    /// Point-route result: the owner the greedy walk arrived at.
    AnswerOwner {
        /// Token of the answered request.
        token: u64,
        /// Owner object.
        owner: u64,
        /// Hops of the greedy walk.
        hops: u32,
    },
    /// Area/radius-query result.
    AnswerMatches {
        /// Token of the answered request.
        token: u64,
        /// Hops of the initial greedy route.
        hops: u32,
        /// Objects visited by the flood.
        visited: u32,
        /// Matching objects, sorted ascending.
        matches: IdList<'a>,
    },
    /// Flood visit: "evaluate `query` at `object` and report".
    FloodProbe {
        /// Token of the area/radius query being flooded.
        token: u64,
        /// Object to evaluate.
        object: u64,
        /// The query predicate parameters.
        query: WireQuery,
    },
    /// Reply to a `FloodProbe`.
    FloodReply {
        /// Token of the area/radius query being flooded.
        token: u64,
        /// Evaluated object.
        object: u64,
        /// True when the object's cell touches the queried area (the
        /// flood expands through it).
        eligible: bool,
        /// True when the object's coordinates satisfy the predicate.
        is_match: bool,
        /// The object's Voronoi neighbours (expansion set).
        neighbours: IdList<'a>,
    },
    /// Installs / replaces one hosted object's region subscription
    /// (driver → host service push, acked by `SvcAck`).
    SvcSubscribe {
        /// The subscribing object.
        object: u64,
        /// Monotonic per-object service push sequence number.
        seq: u64,
        /// The subscribed region.
        region: Rect,
    },
    /// Drops one hosted object's region subscription.
    SvcUnsubscribe {
        /// The unsubscribing object.
        object: u64,
        /// Monotonic per-object service push sequence number.
        seq: u64,
    },
    /// Delivers one publication to a subscribed object on its host.
    SvcDeliver {
        /// The subscriber being delivered to.
        object: u64,
        /// Monotonic per-object service push sequence number.
        seq: u64,
        /// Topic key of the published region (its corner bit patterns).
        topic: [u64; 4],
        /// Per-topic publication sequence number (drives the host's
        /// duplicate-delivery ledger).
        topic_seq: u64,
        /// Opaque payload.
        payload: u64,
    },
    /// Stores one KV entry at the host of its owning object.
    SvcKvStore {
        /// The cell owner the entry belongs to.
        object: u64,
        /// Monotonic per-object service push sequence number.
        seq: u64,
        /// The entry's key.
        key: u64,
        /// The entry's value.
        value: u64,
    },
    /// Drops one KV entry from the host of its (former) owning object.
    SvcKvDrop {
        /// The cell owner the entry belonged to.
        object: u64,
        /// Monotonic per-object service push sequence number.
        seq: u64,
        /// The entry's key.
        key: u64,
    },
    /// Asks the host of `object` for the value it stores under `key` on
    /// behalf of that object (answered by `SvcKvValue`).
    SvcKvFetch {
        /// Result-correlation token (fresh per attempt).
        token: u64,
        /// The cell owner to read from.
        object: u64,
        /// The queried key.
        key: u64,
    },
    /// Answer to a `SvcKvFetch`.
    SvcKvValue {
        /// Token of the answered fetch.
        token: u64,
        /// The stored value, `None` when the host holds no entry.
        value: Option<u64>,
    },
    /// Acknowledges one service push (`SvcSubscribe`/`SvcUnsubscribe`/
    /// `SvcDeliver`/`SvcKvStore`/`SvcKvDrop`/`SvcKvReplicate`).
    SvcAck {
        /// Acknowledged object.
        object: u64,
        /// Acknowledged service push sequence number.
        seq: u64,
    },
    /// Stores one KV entry's *replica copy* at the host of a Voronoi
    /// neighbour of the owning object, stamped with the entry's write
    /// sequence number so degraded reads can judge freshness.
    SvcKvReplicate {
        /// The replica-holding object (a Voronoi neighbour of the owner).
        object: u64,
        /// Monotonic per-object service push sequence number.
        seq: u64,
        /// The entry's key.
        key: u64,
        /// The entry's value.
        value: u64,
        /// The write's global sequence number (freshness stamp).
        entry_seq: u64,
    },
    /// Asks the host of `object` for the replica copy it stores under
    /// `key` (answered by `SvcKvReplicaValue`); issued when the owning
    /// object's host is suspected or dead.
    SvcKvFetchReplica {
        /// Result-correlation token (fresh per attempt).
        token: u64,
        /// The replica-holding object to read from.
        object: u64,
        /// The queried key.
        key: u64,
    },
    /// Answer to a `SvcKvFetchReplica`.
    SvcKvReplicaValue {
        /// Token of the answered fetch.
        token: u64,
        /// Freshness stamp of the replica copy (0 when absent).
        entry_seq: u64,
        /// The stored value, `None` when the host holds no replica.
        value: Option<u64>,
    },
    /// Asks a peer for its stats.
    StatsReq,
    /// Stats snapshot of one peer.
    StatsReply {
        /// Transport-level counters.
        stats: TransportStats,
        /// Protocol operations served by the peer.
        ops_served: u64,
    },
    /// Asks a peer to exit its serve loop.
    Shutdown,
}

const KIND_HELLO: u8 = 0;
const KIND_JOIN: u8 = 1;
const KIND_ROUTE_STEP: u8 = 2;
const KIND_NEIGHBOR_UPDATE: u8 = 3;
const KIND_LEAVE: u8 = 4;
const KIND_PING: u8 = 5;
const KIND_ANSWER: u8 = 6;
const KIND_VIEW_UPDATE: u8 = 7;
const KIND_VIEW_ACK: u8 = 8;
const KIND_EVICT: u8 = 9;
const KIND_EVICT_ACK: u8 = 10;
const KIND_ROUTE_REQ: u8 = 11;
const KIND_AREA_REQ: u8 = 12;
const KIND_RADIUS_REQ: u8 = 13;
const KIND_ANSWER_OWNER: u8 = 14;
const KIND_ANSWER_MATCHES: u8 = 15;
const KIND_FLOOD_PROBE: u8 = 16;
const KIND_FLOOD_REPLY: u8 = 17;
const KIND_STATS_REQ: u8 = 18;
const KIND_STATS_REPLY: u8 = 19;
const KIND_SHUTDOWN: u8 = 20;
const KIND_SVC_SUBSCRIBE: u8 = 21;
const KIND_SVC_UNSUBSCRIBE: u8 = 22;
const KIND_SVC_DELIVER: u8 = 23;
const KIND_SVC_KV_STORE: u8 = 24;
const KIND_SVC_KV_DROP: u8 = 25;
const KIND_SVC_KV_FETCH: u8 = 26;
const KIND_SVC_KV_VALUE: u8 = 27;
const KIND_SVC_ACK: u8 = 28;
const KIND_SVC_KV_REPLICATE: u8 = 29;
const KIND_SVC_KV_FETCH_REPLICA: u8 = 30;
const KIND_SVC_KV_REPLICA_VALUE: u8 = 31;

const PURPOSE_JOIN: u8 = 0;
const PURPOSE_QUERY: u8 = 1;
const PURPOSE_AREA: u8 = 2;
const PURPOSE_RADIUS: u8 = 3;

const QUERY_RECT: u8 = 0;
const QUERY_DISK: u8 = 1;

fn put_point(buf: &mut Vec<u8>, p: Point2) {
    put_f64(buf, p.x);
    put_f64(buf, p.y);
}

fn read_point(r: &mut WireReader<'_>) -> Result<Point2, DecodeError> {
    Ok(Point2::new(r.f64()?, r.f64()?))
}

fn put_rect(buf: &mut Vec<u8>, rect: Rect) {
    put_point(buf, rect.min);
    put_point(buf, rect.max);
}

fn read_rect(r: &mut WireReader<'_>) -> Result<Rect, DecodeError> {
    Ok(Rect::new(read_point(r)?, read_point(r)?))
}

impl<'a> WireMsg<'a> {
    /// The kind byte this message encodes under.
    pub fn kind(&self) -> u8 {
        match self {
            WireMsg::Hello => KIND_HELLO,
            WireMsg::Join { .. } => KIND_JOIN,
            WireMsg::RouteStep { .. } => KIND_ROUTE_STEP,
            WireMsg::NeighborUpdate => KIND_NEIGHBOR_UPDATE,
            WireMsg::Leave => KIND_LEAVE,
            WireMsg::Ping { .. } => KIND_PING,
            WireMsg::Answer { .. } => KIND_ANSWER,
            WireMsg::ViewUpdate { .. } => KIND_VIEW_UPDATE,
            WireMsg::ViewAck { .. } => KIND_VIEW_ACK,
            WireMsg::Evict { .. } => KIND_EVICT,
            WireMsg::EvictAck { .. } => KIND_EVICT_ACK,
            WireMsg::RouteReq { .. } => KIND_ROUTE_REQ,
            WireMsg::AreaReq { .. } => KIND_AREA_REQ,
            WireMsg::RadiusReq { .. } => KIND_RADIUS_REQ,
            WireMsg::AnswerOwner { .. } => KIND_ANSWER_OWNER,
            WireMsg::AnswerMatches { .. } => KIND_ANSWER_MATCHES,
            WireMsg::FloodProbe { .. } => KIND_FLOOD_PROBE,
            WireMsg::FloodReply { .. } => KIND_FLOOD_REPLY,
            WireMsg::SvcSubscribe { .. } => KIND_SVC_SUBSCRIBE,
            WireMsg::SvcUnsubscribe { .. } => KIND_SVC_UNSUBSCRIBE,
            WireMsg::SvcDeliver { .. } => KIND_SVC_DELIVER,
            WireMsg::SvcKvStore { .. } => KIND_SVC_KV_STORE,
            WireMsg::SvcKvDrop { .. } => KIND_SVC_KV_DROP,
            WireMsg::SvcKvFetch { .. } => KIND_SVC_KV_FETCH,
            WireMsg::SvcKvValue { .. } => KIND_SVC_KV_VALUE,
            WireMsg::SvcAck { .. } => KIND_SVC_ACK,
            WireMsg::SvcKvReplicate { .. } => KIND_SVC_KV_REPLICATE,
            WireMsg::SvcKvFetchReplica { .. } => KIND_SVC_KV_FETCH_REPLICA,
            WireMsg::SvcKvReplicaValue { .. } => KIND_SVC_KV_REPLICA_VALUE,
            WireMsg::StatsReq => KIND_STATS_REQ,
            WireMsg::StatsReply { .. } => KIND_STATS_REPLY,
            WireMsg::Shutdown => KIND_SHUTDOWN,
        }
    }

    /// Encodes `header ‖ payload` into `buf` (cleared first).
    pub fn encode(&self, from: u64, to: u64, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
        buf.clear();
        FrameHeader {
            kind: self.kind(),
            from,
            to,
            len: 0,
        }
        .encode_into(buf);
        match *self {
            WireMsg::Hello | WireMsg::NeighborUpdate | WireMsg::Leave => {}
            WireMsg::StatsReq | WireMsg::Shutdown => {}
            WireMsg::Join { position, token } => {
                put_point(buf, position);
                put_u64(buf, token);
            }
            WireMsg::RouteStep {
                target,
                origin,
                hops,
                purpose,
            } => {
                put_point(buf, target);
                put_u64(buf, origin);
                put_u32(buf, hops);
                match purpose {
                    WirePurpose::Join { position, token } => {
                        buf.push(PURPOSE_JOIN);
                        put_point(buf, position);
                        put_u64(buf, token);
                    }
                    WirePurpose::Query { token } => {
                        buf.push(PURPOSE_QUERY);
                        put_u64(buf, token);
                    }
                    WirePurpose::Area { rect, token } => {
                        buf.push(PURPOSE_AREA);
                        put_rect(buf, rect);
                        put_u64(buf, token);
                    }
                    WirePurpose::Radius {
                        center,
                        radius,
                        token,
                    } => {
                        buf.push(PURPOSE_RADIUS);
                        put_point(buf, center);
                        put_f64(buf, radius);
                        put_u64(buf, token);
                    }
                }
            }
            WireMsg::Ping { reply } => buf.push(reply as u8),
            WireMsg::Answer { hops, token } => {
                put_u32(buf, hops);
                put_u64(buf, token);
            }
            WireMsg::ViewUpdate {
                object,
                seq,
                coords,
                routing,
                vn,
                cell,
            } => {
                put_u64(buf, object);
                put_u64(buf, seq);
                put_point(buf, coords);
                routing.encode(buf);
                vn.encode(buf);
                cell.encode(buf);
            }
            WireMsg::ViewAck { object, seq }
            | WireMsg::Evict { object, seq }
            | WireMsg::EvictAck { object, seq } => {
                put_u64(buf, object);
                put_u64(buf, seq);
            }
            WireMsg::RouteReq {
                token,
                from_object,
                target,
            } => {
                put_u64(buf, token);
                put_u64(buf, from_object);
                put_point(buf, target);
            }
            WireMsg::AreaReq {
                token,
                from_object,
                rect,
            } => {
                put_u64(buf, token);
                put_u64(buf, from_object);
                put_rect(buf, rect);
            }
            WireMsg::RadiusReq {
                token,
                from_object,
                center,
                radius,
            } => {
                put_u64(buf, token);
                put_u64(buf, from_object);
                put_point(buf, center);
                put_f64(buf, radius);
            }
            WireMsg::AnswerOwner { token, owner, hops } => {
                put_u64(buf, token);
                put_u64(buf, owner);
                put_u32(buf, hops);
            }
            WireMsg::AnswerMatches {
                token,
                hops,
                visited,
                matches,
            } => {
                put_u64(buf, token);
                put_u32(buf, hops);
                put_u32(buf, visited);
                matches.encode(buf);
            }
            WireMsg::FloodProbe {
                token,
                object,
                query,
            } => {
                put_u64(buf, token);
                put_u64(buf, object);
                match query {
                    WireQuery::Rect(rect) => {
                        buf.push(QUERY_RECT);
                        put_rect(buf, rect);
                    }
                    WireQuery::Disk { center, radius } => {
                        buf.push(QUERY_DISK);
                        put_point(buf, center);
                        put_f64(buf, radius);
                    }
                }
            }
            WireMsg::FloodReply {
                token,
                object,
                eligible,
                is_match,
                neighbours,
            } => {
                put_u64(buf, token);
                put_u64(buf, object);
                buf.push(eligible as u8);
                buf.push(is_match as u8);
                neighbours.encode(buf);
            }
            WireMsg::SvcSubscribe {
                object,
                seq,
                region,
            } => {
                put_u64(buf, object);
                put_u64(buf, seq);
                put_rect(buf, region);
            }
            WireMsg::SvcUnsubscribe { object, seq } | WireMsg::SvcAck { object, seq } => {
                put_u64(buf, object);
                put_u64(buf, seq);
            }
            WireMsg::SvcDeliver {
                object,
                seq,
                topic,
                topic_seq,
                payload,
            } => {
                put_u64(buf, object);
                put_u64(buf, seq);
                for word in topic {
                    put_u64(buf, word);
                }
                put_u64(buf, topic_seq);
                put_u64(buf, payload);
            }
            WireMsg::SvcKvStore {
                object,
                seq,
                key,
                value,
            } => {
                put_u64(buf, object);
                put_u64(buf, seq);
                put_u64(buf, key);
                put_u64(buf, value);
            }
            WireMsg::SvcKvDrop { object, seq, key } => {
                put_u64(buf, object);
                put_u64(buf, seq);
                put_u64(buf, key);
            }
            WireMsg::SvcKvFetch { token, object, key } => {
                put_u64(buf, token);
                put_u64(buf, object);
                put_u64(buf, key);
            }
            WireMsg::SvcKvValue { token, value } => {
                put_u64(buf, token);
                match value {
                    Some(v) => {
                        buf.push(1);
                        put_u64(buf, v);
                    }
                    None => buf.push(0),
                }
            }
            WireMsg::SvcKvReplicate {
                object,
                seq,
                key,
                value,
                entry_seq,
            } => {
                put_u64(buf, object);
                put_u64(buf, seq);
                put_u64(buf, key);
                put_u64(buf, value);
                put_u64(buf, entry_seq);
            }
            WireMsg::SvcKvFetchReplica { token, object, key } => {
                put_u64(buf, token);
                put_u64(buf, object);
                put_u64(buf, key);
            }
            WireMsg::SvcKvReplicaValue {
                token,
                entry_seq,
                value,
            } => {
                put_u64(buf, token);
                put_u64(buf, entry_seq);
                match value {
                    Some(v) => {
                        buf.push(1);
                        put_u64(buf, v);
                    }
                    None => buf.push(0),
                }
            }
            WireMsg::StatsReply { stats, ops_served } => {
                put_u64(buf, stats.frames_sent);
                put_u64(buf, stats.frames_delivered);
                put_u64(buf, stats.dropped_loss);
                put_u64(buf, stats.dropped_partition);
                put_u64(buf, stats.dead_letters);
                put_u64(buf, stats.oversized);
                put_u64(buf, stats.decode_errors);
                put_u64(buf, stats.reconnects);
                put_u64(buf, ops_served);
            }
        }
        let len = buf.len() - HEADER_LEN;
        if len > MAX_PAYLOAD_LEN {
            return Err(EncodeError::Oversized { len });
        }
        buf[20..24].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    }

    /// Decodes one whole frame (`header ‖ payload`): validates the
    /// header, the declared length against the bytes present, parses the
    /// payload and rejects trailing bytes.
    pub fn decode(frame: &'a [u8]) -> Result<(FrameHeader, WireMsg<'a>), DecodeError> {
        let header = FrameHeader::decode(frame)?;
        let payload = &frame[HEADER_LEN.min(frame.len())..];
        if payload.len() != header.len as usize {
            return Err(DecodeError::LengthMismatch {
                declared: header.len as usize,
                actual: payload.len(),
            });
        }
        let mut r = WireReader::new(payload);
        let msg = match header.kind {
            KIND_HELLO => WireMsg::Hello,
            KIND_JOIN => WireMsg::Join {
                position: read_point(&mut r)?,
                token: r.u64()?,
            },
            KIND_ROUTE_STEP => {
                let target = read_point(&mut r)?;
                let origin = r.u64()?;
                let hops = r.u32()?;
                let purpose = match r.u8()? {
                    PURPOSE_JOIN => WirePurpose::Join {
                        position: read_point(&mut r)?,
                        token: r.u64()?,
                    },
                    PURPOSE_QUERY => WirePurpose::Query { token: r.u64()? },
                    PURPOSE_AREA => WirePurpose::Area {
                        rect: read_rect(&mut r)?,
                        token: r.u64()?,
                    },
                    PURPOSE_RADIUS => WirePurpose::Radius {
                        center: read_point(&mut r)?,
                        radius: r.f64()?,
                        token: r.u64()?,
                    },
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "route purpose",
                            value,
                        })
                    }
                };
                WireMsg::RouteStep {
                    target,
                    origin,
                    hops,
                    purpose,
                }
            }
            KIND_NEIGHBOR_UPDATE => WireMsg::NeighborUpdate,
            KIND_LEAVE => WireMsg::Leave,
            KIND_PING => WireMsg::Ping {
                reply: match r.u8()? {
                    0 => false,
                    1 => true,
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "ping reply",
                            value,
                        })
                    }
                },
            },
            KIND_ANSWER => WireMsg::Answer {
                hops: r.u32()?,
                token: r.u64()?,
            },
            KIND_VIEW_UPDATE => WireMsg::ViewUpdate {
                object: r.u64()?,
                seq: r.u64()?,
                coords: read_point(&mut r)?,
                routing: EntryList::decode(&mut r)?,
                vn: IdList::decode(&mut r)?,
                cell: PointList::decode(&mut r)?,
            },
            KIND_VIEW_ACK => WireMsg::ViewAck {
                object: r.u64()?,
                seq: r.u64()?,
            },
            KIND_EVICT => WireMsg::Evict {
                object: r.u64()?,
                seq: r.u64()?,
            },
            KIND_EVICT_ACK => WireMsg::EvictAck {
                object: r.u64()?,
                seq: r.u64()?,
            },
            KIND_ROUTE_REQ => WireMsg::RouteReq {
                token: r.u64()?,
                from_object: r.u64()?,
                target: read_point(&mut r)?,
            },
            KIND_AREA_REQ => WireMsg::AreaReq {
                token: r.u64()?,
                from_object: r.u64()?,
                rect: read_rect(&mut r)?,
            },
            KIND_RADIUS_REQ => WireMsg::RadiusReq {
                token: r.u64()?,
                from_object: r.u64()?,
                center: read_point(&mut r)?,
                radius: r.f64()?,
            },
            KIND_ANSWER_OWNER => WireMsg::AnswerOwner {
                token: r.u64()?,
                owner: r.u64()?,
                hops: r.u32()?,
            },
            KIND_ANSWER_MATCHES => WireMsg::AnswerMatches {
                token: r.u64()?,
                hops: r.u32()?,
                visited: r.u32()?,
                matches: IdList::decode(&mut r)?,
            },
            KIND_FLOOD_PROBE => WireMsg::FloodProbe {
                token: r.u64()?,
                object: r.u64()?,
                query: match r.u8()? {
                    QUERY_RECT => WireQuery::Rect(read_rect(&mut r)?),
                    QUERY_DISK => WireQuery::Disk {
                        center: read_point(&mut r)?,
                        radius: r.f64()?,
                    },
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "flood query",
                            value,
                        })
                    }
                },
            },
            KIND_FLOOD_REPLY => {
                let token = r.u64()?;
                let object = r.u64()?;
                let eligible = match r.u8()? {
                    0 => false,
                    1 => true,
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "flood eligible",
                            value,
                        })
                    }
                };
                let is_match = match r.u8()? {
                    0 => false,
                    1 => true,
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "flood match",
                            value,
                        })
                    }
                };
                WireMsg::FloodReply {
                    token,
                    object,
                    eligible,
                    is_match,
                    neighbours: IdList::decode(&mut r)?,
                }
            }
            KIND_SVC_SUBSCRIBE => WireMsg::SvcSubscribe {
                object: r.u64()?,
                seq: r.u64()?,
                region: read_rect(&mut r)?,
            },
            KIND_SVC_UNSUBSCRIBE => WireMsg::SvcUnsubscribe {
                object: r.u64()?,
                seq: r.u64()?,
            },
            KIND_SVC_DELIVER => WireMsg::SvcDeliver {
                object: r.u64()?,
                seq: r.u64()?,
                topic: [r.u64()?, r.u64()?, r.u64()?, r.u64()?],
                topic_seq: r.u64()?,
                payload: r.u64()?,
            },
            KIND_SVC_KV_STORE => WireMsg::SvcKvStore {
                object: r.u64()?,
                seq: r.u64()?,
                key: r.u64()?,
                value: r.u64()?,
            },
            KIND_SVC_KV_DROP => WireMsg::SvcKvDrop {
                object: r.u64()?,
                seq: r.u64()?,
                key: r.u64()?,
            },
            KIND_SVC_KV_FETCH => WireMsg::SvcKvFetch {
                token: r.u64()?,
                object: r.u64()?,
                key: r.u64()?,
            },
            KIND_SVC_KV_VALUE => WireMsg::SvcKvValue {
                token: r.u64()?,
                value: match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "kv value presence",
                            value,
                        })
                    }
                },
            },
            KIND_SVC_ACK => WireMsg::SvcAck {
                object: r.u64()?,
                seq: r.u64()?,
            },
            KIND_SVC_KV_REPLICATE => WireMsg::SvcKvReplicate {
                object: r.u64()?,
                seq: r.u64()?,
                key: r.u64()?,
                value: r.u64()?,
                entry_seq: r.u64()?,
            },
            KIND_SVC_KV_FETCH_REPLICA => WireMsg::SvcKvFetchReplica {
                token: r.u64()?,
                object: r.u64()?,
                key: r.u64()?,
            },
            KIND_SVC_KV_REPLICA_VALUE => WireMsg::SvcKvReplicaValue {
                token: r.u64()?,
                entry_seq: r.u64()?,
                value: match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "kv replica value presence",
                            value,
                        })
                    }
                },
            },
            KIND_STATS_REQ => WireMsg::StatsReq,
            KIND_STATS_REPLY => WireMsg::StatsReply {
                stats: TransportStats {
                    frames_sent: r.u64()?,
                    frames_delivered: r.u64()?,
                    dropped_loss: r.u64()?,
                    dropped_partition: r.u64()?,
                    dead_letters: r.u64()?,
                    oversized: r.u64()?,
                    decode_errors: r.u64()?,
                    reconnects: r.u64()?,
                },
                ops_served: r.u64()?,
            },
            KIND_SHUTDOWN => WireMsg::Shutdown,
            kind => return Err(DecodeError::UnknownKind(kind)),
        };
        r.finish()?;
        Ok((header, msg))
    }
}

impl From<ProtocolMsg> for WireMsg<'static> {
    fn from(msg: ProtocolMsg) -> Self {
        match msg {
            ProtocolMsg::Join { position, token } => WireMsg::Join { position, token },
            ProtocolMsg::RouteStep {
                target,
                origin,
                hops,
                purpose,
            } => WireMsg::RouteStep {
                target,
                origin,
                hops,
                purpose: match purpose {
                    RoutePurpose::Join { position, token } => WirePurpose::Join { position, token },
                    RoutePurpose::Query { token } => WirePurpose::Query { token },
                    RoutePurpose::AreaQuery { rect, token } => WirePurpose::Area { rect, token },
                    RoutePurpose::RadiusQuery { query, token } => WirePurpose::Radius {
                        center: query.center,
                        radius: query.radius,
                        token,
                    },
                },
            },
            ProtocolMsg::NeighborUpdate => WireMsg::NeighborUpdate,
            ProtocolMsg::Leave => WireMsg::Leave,
            ProtocolMsg::Ping { reply } => WireMsg::Ping { reply },
            ProtocolMsg::Answer { hops, token } => WireMsg::Answer { hops, token },
        }
    }
}

impl<'a> WireMsg<'a> {
    /// Converts a protocol-mirror variant back into the runtime's
    /// [`ProtocolMsg`]; `None` for cluster-protocol messages the runtime
    /// never exchanges.
    pub fn to_protocol(&self) -> Option<ProtocolMsg> {
        Some(match *self {
            WireMsg::Join { position, token } => ProtocolMsg::Join { position, token },
            WireMsg::RouteStep {
                target,
                origin,
                hops,
                purpose,
            } => ProtocolMsg::RouteStep {
                target,
                origin,
                hops,
                purpose: match purpose {
                    WirePurpose::Join { position, token } => RoutePurpose::Join { position, token },
                    WirePurpose::Query { token } => RoutePurpose::Query { token },
                    WirePurpose::Area { rect, token } => RoutePurpose::AreaQuery { rect, token },
                    WirePurpose::Radius {
                        center,
                        radius,
                        token,
                    } => RoutePurpose::RadiusQuery {
                        query: RadiusQuery { center, radius },
                        token,
                    },
                },
            },
            WireMsg::NeighborUpdate => ProtocolMsg::NeighborUpdate,
            WireMsg::Leave => ProtocolMsg::Leave,
            WireMsg::Ping { reply } => ProtocolMsg::Ping { reply },
            WireMsg::Answer { hops, token } => ProtocolMsg::Answer { hops, token },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MAX_FRAME_LEN;

    fn roundtrip(msg: WireMsg<'_>, from: u64, to: u64) {
        let mut buf = Vec::new();
        msg.encode(from, to, &mut buf).unwrap();
        assert!(buf.len() <= MAX_FRAME_LEN);
        let (header, decoded) = WireMsg::decode(&buf).unwrap();
        assert_eq!(header.from, from);
        assert_eq!(header.to, to);
        assert_eq!(header.kind, msg.kind());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn every_variant_round_trips() {
        let mut routing_scratch = Vec::new();
        let mut vn_scratch = Vec::new();
        let mut cell_scratch = Vec::new();
        let mut ids_scratch = Vec::new();
        let routing = EntryList::build(
            &mut routing_scratch,
            &[(3, Point2::new(0.25, 0.75)), (9, Point2::new(0.5, 0.125))],
        );
        let vn = IdList::build(&mut vn_scratch, &[3, 9, 27]);
        let cell = PointList::build(
            &mut cell_scratch,
            &[
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.5, 1.0),
            ],
        );
        let matches = IdList::build(&mut ids_scratch, &[1, 2, 3, 5, 8]);
        let rect = Rect::new(Point2::new(0.1, 0.2), Point2::new(0.6, 0.7));
        let msgs: Vec<WireMsg<'_>> = vec![
            WireMsg::Hello,
            WireMsg::Join {
                position: Point2::new(0.3, 0.4),
                token: 77,
            },
            WireMsg::RouteStep {
                target: Point2::new(0.9, 0.1),
                origin: u64::MAX - 5,
                hops: 12,
                purpose: WirePurpose::Join {
                    position: Point2::new(0.9, 0.1),
                    token: 5,
                },
            },
            WireMsg::RouteStep {
                target: Point2::new(0.2, 0.2),
                origin: 4,
                hops: 0,
                purpose: WirePurpose::Query { token: 0 },
            },
            WireMsg::RouteStep {
                target: rect.center(),
                origin: 4,
                hops: 3,
                purpose: WirePurpose::Area { rect, token: 9 },
            },
            WireMsg::RouteStep {
                target: Point2::new(0.5, 0.5),
                origin: 4,
                hops: 3,
                purpose: WirePurpose::Radius {
                    center: Point2::new(0.5, 0.5),
                    radius: 0.1,
                    token: 9,
                },
            },
            WireMsg::NeighborUpdate,
            WireMsg::Leave,
            WireMsg::Ping { reply: true },
            WireMsg::Ping { reply: false },
            WireMsg::Answer { hops: 9, token: 3 },
            WireMsg::ViewUpdate {
                object: 17,
                seq: 4,
                coords: Point2::new(0.33, 0.66),
                routing,
                vn,
                cell,
            },
            WireMsg::ViewAck { object: 17, seq: 4 },
            WireMsg::Evict { object: 17, seq: 5 },
            WireMsg::EvictAck { object: 17, seq: 5 },
            WireMsg::RouteReq {
                token: 11,
                from_object: 2,
                target: Point2::new(0.8, 0.2),
            },
            WireMsg::AreaReq {
                token: 12,
                from_object: 2,
                rect,
            },
            WireMsg::RadiusReq {
                token: 13,
                from_object: 2,
                center: Point2::new(0.4, 0.6),
                radius: 0.05,
            },
            WireMsg::AnswerOwner {
                token: 11,
                owner: 40,
                hops: 6,
            },
            WireMsg::AnswerMatches {
                token: 12,
                hops: 6,
                visited: 30,
                matches,
            },
            WireMsg::FloodProbe {
                token: 12,
                object: 8,
                query: WireQuery::Rect(rect),
            },
            WireMsg::FloodProbe {
                token: 13,
                object: 8,
                query: WireQuery::Disk {
                    center: Point2::new(0.4, 0.6),
                    radius: 0.05,
                },
            },
            WireMsg::FloodReply {
                token: 12,
                object: 8,
                eligible: true,
                is_match: false,
                neighbours: vn,
            },
            WireMsg::SvcSubscribe {
                object: 7,
                seq: 3,
                region: rect,
            },
            WireMsg::SvcUnsubscribe { object: 7, seq: 4 },
            WireMsg::SvcDeliver {
                object: 7,
                seq: 5,
                topic: [1, u64::MAX, 0, 42],
                topic_seq: 9,
                payload: 0xDEAD_BEEF,
            },
            WireMsg::SvcKvStore {
                object: 8,
                seq: 6,
                key: 123,
                value: 456,
            },
            WireMsg::SvcKvDrop {
                object: 8,
                seq: 7,
                key: 123,
            },
            WireMsg::SvcKvFetch {
                token: 14,
                object: 8,
                key: 123,
            },
            WireMsg::SvcKvValue {
                token: 14,
                value: Some(456),
            },
            WireMsg::SvcKvValue {
                token: 15,
                value: None,
            },
            WireMsg::SvcAck { object: 8, seq: 7 },
            WireMsg::SvcKvReplicate {
                object: 9,
                seq: 8,
                key: 123,
                value: 456,
                entry_seq: 77,
            },
            WireMsg::SvcKvFetchReplica {
                token: 16,
                object: 9,
                key: 123,
            },
            WireMsg::SvcKvReplicaValue {
                token: 16,
                entry_seq: 77,
                value: Some(456),
            },
            WireMsg::SvcKvReplicaValue {
                token: 17,
                entry_seq: 0,
                value: None,
            },
            WireMsg::StatsReq,
            WireMsg::StatsReply {
                stats: TransportStats {
                    frames_sent: 1,
                    frames_delivered: 2,
                    dropped_loss: 3,
                    dropped_partition: 4,
                    dead_letters: 5,
                    oversized: 6,
                    decode_errors: 7,
                    reconnects: 8,
                },
                ops_served: 99,
            },
            WireMsg::Shutdown,
        ];
        for msg in msgs {
            roundtrip(msg, 0, 1);
            roundtrip(msg, u64::MAX, u64::MAX - 1);
        }
    }

    #[test]
    fn list_views_are_zero_copy_and_lazy() {
        let mut scratch = Vec::new();
        let items = [(1u64, Point2::new(0.1, 0.9)), (2, Point2::new(0.2, 0.8))];
        let list = EntryList::build(&mut scratch, &items);
        assert_eq!(list.len(), 2);
        assert_eq!(list.to_vec(), items);
        let empty = EntryList::empty();
        assert!(empty.is_empty());
        assert_eq!(empty.iter().count(), 0);
    }

    #[test]
    fn truncation_yields_typed_errors() {
        let mut buf = Vec::new();
        WireMsg::Join {
            position: Point2::new(0.5, 0.5),
            token: 1,
        }
        .encode(3, 4, &mut buf)
        .unwrap();
        // Chop the frame at every length: always an error, never a panic.
        for cut in 0..buf.len() {
            let err = WireMsg::decode(&buf[..cut]).unwrap_err();
            match err {
                DecodeError::Truncated { .. } | DecodeError::LengthMismatch { .. } => {}
                other => panic!("unexpected error {other:?} at cut {cut}"),
            }
        }
        assert!(WireMsg::decode(&buf).is_ok());
    }

    #[test]
    fn unknown_kind_and_bad_tags_are_rejected() {
        let mut buf = Vec::new();
        WireMsg::Shutdown.encode(0, 1, &mut buf).unwrap();
        buf[3] = 250;
        assert_eq!(WireMsg::decode(&buf), Err(DecodeError::UnknownKind(250)));

        let mut buf = Vec::new();
        WireMsg::Ping { reply: false }
            .encode(0, 1, &mut buf)
            .unwrap();
        buf[HEADER_LEN] = 7;
        assert!(matches!(
            WireMsg::decode(&buf),
            Err(DecodeError::BadTag {
                field: "ping reply",
                value: 7
            })
        ));
    }

    #[test]
    fn protocol_messages_map_through_the_wire_enum() {
        let msgs = [
            ProtocolMsg::Join {
                position: Point2::new(0.1, 0.2),
                token: 3,
            },
            ProtocolMsg::RouteStep {
                target: Point2::new(0.5, 0.5),
                origin: 7,
                hops: 2,
                purpose: RoutePurpose::RadiusQuery {
                    query: RadiusQuery {
                        center: Point2::new(0.5, 0.5),
                        radius: 0.25,
                    },
                    token: 8,
                },
            },
            ProtocolMsg::NeighborUpdate,
            ProtocolMsg::Leave,
            ProtocolMsg::Ping { reply: false },
            ProtocolMsg::Answer { hops: 4, token: 9 },
        ];
        for msg in msgs {
            let wire: WireMsg<'static> = msg.into();
            assert_eq!(wire.to_protocol(), Some(msg));
        }
        assert_eq!(WireMsg::Hello.to_protocol(), None);
    }
}
