//! A deployable overlay cluster over any [`Transport`]: a controller
//! ("driver") plus K object-hosting peers exchanging wire frames.
//!
//! ## Roles
//!
//! * The **driver** (peer 0) owns the authoritative [`VoroNet`]
//!   tessellation — the control plane.  Membership changes execute there;
//!   after each one the driver diffs every live object's materialised
//!   view against what was last shipped and pushes [`WireMsg::ViewUpdate`]
//!   frames (routing table, Voronoi neighbours, cell polygon) to the
//!   hosts, waiting for acks.  This is the same refresh-boundary model as
//!   `core::runtime`: hosts route **purely from shipped snapshots**.
//! * Each **host** (peers `1..=K`) holds the objects with
//!   `host_of(id) = 1 + id mod K` — the data plane.  Greedy routing
//!   ([`WireMsg::RouteStep`]) and area-query flooding
//!   ([`WireMsg::FloodProbe`]/[`WireMsg::FloodReply`]) run peer-to-peer
//!   between hosts; only the final answer returns to the driver.
//!
//! ## Conformance
//!
//! Because hosts receive the exact routing tables, Voronoi neighbour
//! sets and cell polygons of the authoritative tessellation (as f64 bit
//! patterns over the wire), the distributed greedy walk and the
//! distributed flood reproduce the single-process results bit-for-bit on
//! a synchronised cluster: same owners, same hop counts, same match
//! sets — asserted by the in-process tests below and by the
//! multi-process loopback-UDP test in `crates/node`.
//!
//! ## Services
//!
//! The cluster also hosts the geo-scoped service plane of
//! `voronet-services`: region subscriptions live on the subscriber's
//! host ([`WireMsg::SvcSubscribe`]), publications resolve through the
//! distributed area flood and are delivered host-by-host
//! ([`WireMsg::SvcDeliver`], deduplicated by a per-topic ledger), and
//! coordinate-keyed KV entries are physically stored at the host of the
//! owning cell's object ([`WireMsg::SvcKvStore`]) and *migrate over the
//! wire* when churn moves the owning cell — a [`WireMsg::SvcKvFetch`]
//! always reads from whatever host currently owns the key's coordinates.
//! Driver-side control state mirrors the single-process
//! `ServiceEngine` semantics, so the simulated and deployed paths agree.
//!
//! ## Loss and fault tolerance
//!
//! Every request the driver issues carries a fresh correlation token per
//! attempt and is retried per a configurable [`RetryPolicy`] (exponential
//! backoff, seeded jitter, per-op attempt and time budgets); view pushes
//! and service pushes are resent until acked; flood coordinators
//! retransmit unanswered probes.  Handlers are idempotent, so duplication
//! from retries is harmless.
//!
//! Beyond loss, the driver runs a failure detector ([`Liveness`]):
//! piggybacked acks and periodic [`WireMsg::Ping`]s feed a missed-window
//! counter per host, moving it `Alive → Suspected → Dead`
//! ([`HostState`], surfaced in [`ClusterStats`]).  Push barriers drop
//! pushes to dead hosts instead of stalling, ops that must be served by
//! a dead host fail fast with [`ClusterError::Unavailable`], KV reads
//! whose owner is unreachable degrade to the Voronoi-neighbour replica
//! set (validated by a per-entry sequence so a stale copy is never
//! returned), and a host heard from again after being declared dead is
//! regenerated from driver control state before the next operation.

use crate::transport::{PeerId, Transport, TransportError};
use crate::wire::{EntryList, IdList, PointList, WireMsg, WirePurpose, WireQuery};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::{Duration, Instant};
use voronet_core::{JoinError, VoroNet, VoroNetConfig};
use voronet_geom::{voronoi_cell, Point2, Polygon, Rect};
use voronet_services::{key_point, topic_key};
use voronet_sim::TransportStats;
use voronet_workloads::{RadiusQuery, RangeQuery, WorkloadOp};

/// The driver's peer id.
pub const DRIVER_PEER: PeerId = 0;

/// The host peer responsible for an object.
pub fn host_of(object: u64, hosts: u64) -> PeerId {
    1 + object % hosts.max(1)
}

const ACK_RESEND: Duration = Duration::from_millis(200);
const SYNC_DEADLINE: Duration = Duration::from_secs(60);
const PROBE_RESEND: Duration = Duration::from_millis(150);
const PROBE_MAX_ATTEMPTS: u32 = 40;

/// Why a cluster operation failed.
#[derive(Debug)]
pub enum ClusterError {
    /// The underlying transport failed.
    Transport(TransportError),
    /// A request exhausted its retries without an answer.
    Timeout(&'static str),
    /// The host that must serve the operation is dead per the failure
    /// detector; the operation failed fast instead of burning its
    /// retry budget.
    Unavailable(&'static str),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Transport(e) => write!(f, "cluster transport error: {e}"),
            ClusterError::Timeout(what) => write!(f, "cluster timeout waiting for {what}"),
            ClusterError::Unavailable(what) => {
                write!(f, "cluster host unavailable (suspected or dead) for {what}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<TransportError> for ClusterError {
    fn from(e: TransportError) -> Self {
        ClusterError::Transport(e)
    }
}

impl ClusterError {
    /// Maps onto the overlay API's unified taxonomy.
    pub fn kind(&self) -> voronet_core::ErrorKind {
        match self {
            ClusterError::Transport(_) | ClusterError::Timeout(_) => {
                voronet_core::ErrorKind::OperationLost
            }
            ClusterError::Unavailable(_) => voronet_core::ErrorKind::Unavailable,
        }
    }
}

/// Retry discipline of driver-issued requests: exponential backoff with
/// deterministic seeded jitter, bounded per attempt and per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Timeout of the first attempt.
    pub base: Duration,
    /// Multiplier applied to each further attempt's timeout.
    pub factor: f64,
    /// Ceiling of any single attempt's timeout.
    pub max_timeout: Duration,
    /// Maximum number of attempts per operation.
    pub attempts: u32,
    /// Wall-clock budget of the whole operation across attempts: once
    /// exceeded the operation fails even if attempts remain.
    pub budget: Duration,
    /// Jitter amplitude: each attempt's timeout is scaled by a factor
    /// drawn uniformly from `1 ± jitter/2` (`0.0` disables jitter).
    pub jitter: f64,
    /// Seed of the jitter stream, so retry timing replays exactly.
    pub seed: u64,
    /// Fast-retransmit interval *within* an attempt: while waiting for
    /// an answer the driver re-sends the pending request frame on this
    /// cadence instead of eating the whole attempt timeout when a single
    /// frame is lost.  Every request the driver issues is idempotent
    /// (token-matched answers, stateless route restarts, seq-filtered
    /// pushes), so a duplicate delivery is harmless.
    pub resend: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_secs(2),
            factor: 2.0,
            max_timeout: Duration::from_secs(8),
            attempts: 5,
            budget: Duration::from_secs(30),
            jitter: 0.0,
            seed: 0x5EED,
            resend: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// A tight policy for chaos runs and tests: small timeouts, small
    /// budget, jittered — fails fast instead of stalling a scenario.
    /// The retransmit cadence is sub-millisecond, matched to in-process
    /// transports where a healthy round trip is microseconds.
    pub fn tight() -> Self {
        RetryPolicy {
            base: Duration::from_millis(120),
            factor: 2.0,
            max_timeout: Duration::from_millis(500),
            attempts: 4,
            budget: Duration::from_secs(3),
            jitter: 0.25,
            seed: 0x5EED,
            resend: Duration::from_micros(250),
        }
    }

    /// The fast-retransmit interval floored so a zeroed knob can never
    /// spin the transport at full speed.
    fn resend_every(&self) -> Duration {
        self.resend.max(Duration::from_micros(50))
    }
}

/// Driver-side liveness verdict about one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// Answering within its ping windows.
    Alive,
    /// Missed enough windows to be suspected: KV reads owned by it are
    /// served from replicas, but it is still retried.
    Suspected,
    /// Missed enough windows to be excluded: pushes to it are skipped
    /// and ops it must serve fail fast with
    /// [`ClusterError::Unavailable`].  Still pinged, so a restart is
    /// detected and the host regenerated.
    Dead,
}

/// Knobs of the driver's failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Liveness {
    /// Consecutive unanswered ping windows before a host turns
    /// [`HostState::Suspected`].
    pub suspect_after: u32,
    /// Consecutive unanswered ping windows before a host turns
    /// [`HostState::Dead`].
    pub dead_after: u32,
    /// Gap between liveness pings to one host; any frame received from
    /// the host counts as an answer (piggybacked acks).
    pub ping_interval: Duration,
}

impl Default for Liveness {
    fn default() -> Self {
        Liveness {
            suspect_after: 3,
            dead_after: 6,
            ping_interval: Duration::from_millis(500),
        }
    }
}

impl Liveness {
    /// A fast-converging detector for chaos runs and tests.
    pub fn tight() -> Self {
        Liveness {
            suspect_after: 2,
            dead_after: 4,
            ping_interval: Duration::from_millis(60),
        }
    }
}

/// Liveness states and fault counters of a cluster driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// Every host's current [`HostState`], ascending by peer.
    pub hosts: Vec<(PeerId, HostState)>,
    /// Retried request attempts (beyond each op's first).
    pub retries: u64,
    /// Operations refused fast because their host was dead.
    pub fail_fast: u64,
    /// KV reads served through the replica fallback.
    pub degraded_reads: u64,
    /// `Alive → Suspected` transitions observed.
    pub suspicions: u64,
    /// `→ Dead` transitions observed.
    pub deaths: u64,
    /// `Dead → Alive` transitions observed (host regenerated).
    pub revivals: u64,
    /// View/service pushes dropped because their target was dead.
    pub skipped_pushes: u64,
    /// Request frames re-sent by the fast-retransmit timer *within* an
    /// attempt window (not counted as retries — the attempt ladder never
    /// advanced).
    pub fast_resends: u64,
}

/// Driver-side health record of one host.
#[derive(Debug)]
struct HostHealth {
    missed: u32,
    state: HostState,
    last_ping: Instant,
    last_heard: Instant,
}

/// Spin-then-sleep waiter for the driver's receive loops: the first
/// iterations only yield (sub-millisecond answers stay fast), then it
/// sleeps with exponential growth so a lossy wait doesn't burn a core.
#[derive(Debug)]
struct Backoff {
    idle: u32,
    sleep: Duration,
    ceiling: Duration,
}

const BACKOFF_SPINS: u32 = 64;
const BACKOFF_SLEEP_FLOOR: Duration = Duration::from_micros(50);
const BACKOFF_SLEEP_CEIL: Duration = Duration::from_millis(1);

impl Backoff {
    fn new() -> Self {
        Self::with_ceiling(BACKOFF_SLEEP_CEIL)
    }

    /// A waiter whose sleeps never exceed `ceiling` — the receive loops
    /// that run a retransmit timer cap their sleeps below the timer so
    /// a due resend is never slept past.
    fn with_ceiling(ceiling: Duration) -> Self {
        let ceiling = ceiling.max(Duration::from_micros(10));
        Backoff {
            idle: 0,
            sleep: BACKOFF_SLEEP_FLOOR.min(ceiling),
            ceiling,
        }
    }

    fn reset(&mut self) {
        self.idle = 0;
        self.sleep = BACKOFF_SLEEP_FLOOR.min(self.ceiling);
    }

    fn wait(&mut self) {
        if self.idle < BACKOFF_SPINS {
            self.idle += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(self.sleep);
            self.sleep = (self.sleep * 2).min(self.ceiling);
        }
    }
}

/// Which ack family clears a pending push in [`Driver::await_acks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AckKind {
    View,
    Svc,
}

/// Outcome of one applied [`WorkloadOp`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome {
    /// Insert: the new object's id, `None` when the overlay rejected it.
    Inserted(Option<u64>),
    /// Remove: the departed object's id, `None` when skipped.
    Removed(Option<u64>),
    /// Point route: owner of the target's region and greedy hop count.
    Route {
        /// Owner object.
        owner: u64,
        /// Greedy hops.
        hops: u32,
    },
    /// Area/radius query: sorted match set, routing hops, flood footprint.
    Matches {
        /// Matching objects, ascending.
        matches: Vec<u64>,
        /// Hops of the initial greedy route.
        hops: u32,
        /// Objects visited by the flood.
        visited: u32,
    },
    /// Subscribe: the subscriber's id and whether a previous
    /// subscription was replaced.
    Subscribed {
        /// Subscribing object.
        id: u64,
        /// True when the object was already subscribed.
        replaced: bool,
    },
    /// Unsubscribe: the object's id and whether a subscription existed.
    Unsubscribed {
        /// Unsubscribing object.
        id: u64,
        /// True when a subscription was dropped.
        existed: bool,
    },
    /// Publish: the per-topic sequence number and the resolved
    /// subscriber split.
    Published {
        /// Sequence number of this publication on its topic.
        topic_seq: u64,
        /// Subscribers delivered to (ascending by id).
        delivered: Vec<u64>,
        /// Subscribers whose region intersects the publication but whose
        /// own coordinates fall outside it (ascending by id).
        missed: Vec<u64>,
        /// Hops of the initial greedy route of the resolution flood.
        hops: u32,
        /// Objects visited by the resolution flood.
        visited: u32,
    },
    /// KV put: where the entry now lives.
    KvStored {
        /// The entry's key.
        key: u64,
        /// The owning cell's object.
        owner: u64,
        /// True when an existing entry was overwritten.
        replaced: bool,
        /// Voronoi-neighbour replicas the entry was mirrored to.
        replicas: u32,
    },
    /// KV get: the value fetched from the owning cell's host.
    KvFetched {
        /// The queried key.
        key: u64,
        /// The owning cell's object.
        owner: u64,
        /// The stored value, `None` when the key is absent.
        value: Option<u64>,
        /// True when the owner's host was unreachable and the value was
        /// served by a Voronoi-neighbour replica instead.
        degraded: bool,
    },
    /// KV delete: whether an entry was dropped.
    KvDropped {
        /// The deleted key.
        key: u64,
        /// The owning cell's object.
        owner: u64,
        /// True when an entry existed.
        existed: bool,
    },
    /// The operation does not apply to a cluster (e.g. `Snapshot`).
    Skipped,
}

/// Stats snapshot returned by a host at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostReport {
    /// The reporting peer.
    pub peer: PeerId,
    /// Its transport counters.
    pub stats: TransportStats,
    /// Protocol operations it served.
    pub ops_served: u64,
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// What was last shipped to a host for one object; views are re-pushed
/// only when this differs from the freshly materialised state.
#[derive(Debug, Clone, PartialEq)]
struct ShippedView {
    coords: Point2,
    routing: Vec<(u64, Point2)>,
    vn: Vec<u64>,
    cell: Vec<Point2>,
}

/// A pending push awaiting its ack, pre-encoded for cheap resends.
#[derive(Debug)]
struct PendingPush {
    peer: PeerId,
    frame: Vec<u8>,
}

/// Driver-side control record of one coordinate-keyed entry: its value,
/// the object whose Voronoi cell currently stores it, that object's
/// replica set (its Voronoi neighbours), and the entry's write sequence
/// used to validate replica freshness on degraded reads.
#[derive(Debug, Clone, PartialEq)]
struct KvPlacement {
    value: u64,
    owner: u64,
    entry_seq: u64,
    replicas: Vec<u64>,
}

/// The cluster controller: authoritative tessellation + view
/// distribution + request/answer correlation.  Generic over the
/// transport, so the same driver runs on vnet, UDP and TCP.
pub struct Driver<T: Transport> {
    t: T,
    hosts: u64,
    net: VoroNet,
    shipped: HashMap<u64, ShippedView>,
    seqs: HashMap<u64, u64>,
    next_token: u64,
    buf: Vec<u8>,
    subs: HashMap<u64, Rect>,
    topic_seqs: HashMap<[u64; 4], u64>,
    kv: HashMap<u64, KvPlacement>,
    svc_seqs: HashMap<u64, u64>,
    kv_seq: u64,
    policy: RetryPolicy,
    liveness: Liveness,
    jitter_rng: StdRng,
    health: HashMap<PeerId, HostHealth>,
    revived: Vec<PeerId>,
    in_revival: bool,
    retries: u64,
    fail_fast: u64,
    degraded_reads: u64,
    suspicions: u64,
    deaths: u64,
    revivals: u64,
    skipped_pushes: u64,
    fast_resends: u64,
}

impl<T: Transport> Driver<T> {
    /// Creates a driver over an already-bound transport (peers must be
    /// registered by the caller) controlling `hosts` host peers.
    pub fn new(transport: T, hosts: u64, config: VoroNetConfig) -> Self {
        let policy = RetryPolicy::default();
        Driver {
            t: transport,
            hosts,
            net: VoroNet::new(config),
            shipped: HashMap::new(),
            seqs: HashMap::new(),
            next_token: 1,
            buf: Vec::new(),
            subs: HashMap::new(),
            topic_seqs: HashMap::new(),
            kv: HashMap::new(),
            svc_seqs: HashMap::new(),
            kv_seq: 0,
            jitter_rng: StdRng::seed_from_u64(policy.seed),
            policy,
            liveness: Liveness::default(),
            health: HashMap::new(),
            revived: Vec::new(),
            in_revival: false,
            retries: 0,
            fail_fast: 0,
            degraded_reads: 0,
            suspicions: 0,
            deaths: 0,
            revivals: 0,
            skipped_pushes: 0,
            fast_resends: 0,
        }
    }

    /// Replaces the retry policy, reseeding the jitter stream.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.jitter_rng = StdRng::seed_from_u64(policy.seed);
        self.policy = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Replaces the failure-detector knobs.
    pub fn set_liveness(&mut self, liveness: Liveness) {
        self.liveness = liveness;
    }

    /// The driver's current liveness verdict about one host.
    pub fn host_state(&self, peer: PeerId) -> HostState {
        self.health
            .get(&peer)
            .map(|h| h.state)
            .unwrap_or(HostState::Alive)
    }

    /// Liveness states and fault counters.
    pub fn cluster_stats(&self) -> ClusterStats {
        ClusterStats {
            hosts: (1..=self.hosts)
                .map(|peer| (peer, self.host_state(peer)))
                .collect(),
            retries: self.retries,
            fail_fast: self.fail_fast,
            degraded_reads: self.degraded_reads,
            suspicions: self.suspicions,
            deaths: self.deaths,
            revivals: self.revivals,
            skipped_pushes: self.skipped_pushes,
            fast_resends: self.fast_resends,
        }
    }

    /// One failure-detector round without an overlay operation: pings
    /// due hosts and drains pending frames, updating host states.  A
    /// chaos harness calls this in a loop to converge detection of a
    /// crash or of a restart.
    pub fn heartbeat(&mut self) -> Result<(), ClusterError> {
        self.maybe_ping()?;
        self.t.poll()?;
        let mut buf = std::mem::take(&mut self.buf);
        while self.recv_noted(&mut buf)?.is_some() {}
        self.buf = buf;
        Ok(())
    }

    fn host_dead(&self, peer: PeerId) -> bool {
        matches!(self.host_state(peer), HostState::Dead)
    }

    fn health_entry(&mut self, peer: PeerId) -> &mut HostHealth {
        self.health.entry(peer).or_insert_with(|| HostHealth {
            missed: 0,
            state: HostState::Alive,
            last_ping: Instant::now(),
            last_heard: Instant::now(),
        })
    }

    /// Any frame from a host is a liveness proof: resets its missed
    /// counter and, when it was declared dead, queues it for
    /// regeneration before the next operation.
    fn note_heard(&mut self, peer: PeerId) {
        if peer < 1 || peer > self.hosts {
            return;
        }
        let h = self.health_entry(peer);
        h.last_heard = Instant::now();
        h.missed = 0;
        match h.state {
            HostState::Alive => {}
            HostState::Suspected => h.state = HostState::Alive,
            HostState::Dead => {
                h.state = HostState::Alive;
                self.revivals += 1;
                self.revived.push(peer);
            }
        }
    }

    /// One missed window: advances the host along
    /// `Alive → Suspected → Dead`.
    fn note_timeout(&mut self, peer: PeerId) {
        let Liveness {
            suspect_after,
            dead_after,
            ..
        } = self.liveness;
        let h = self.health_entry(peer);
        h.missed = h.missed.saturating_add(1);
        if h.missed >= dead_after && h.state != HostState::Dead {
            h.state = HostState::Dead;
            self.deaths += 1;
        } else if h.missed >= suspect_after && h.state == HostState::Alive {
            h.state = HostState::Suspected;
            self.suspicions += 1;
        }
    }

    /// `recv_into` with the piggybacked-liveness hook: every received
    /// frame marks its sender heard.
    fn recv_noted(&mut self, buf: &mut Vec<u8>) -> Result<Option<PeerId>, ClusterError> {
        let from = self.t.recv_into(buf)?;
        if let Some(peer) = from {
            self.note_heard(peer);
        }
        Ok(from)
    }

    /// Sends a liveness ping to every host whose ping window elapsed;
    /// a window that passed without hearing from the host counts
    /// against it.  Dead hosts keep being pinged so a restart is
    /// detected.
    fn maybe_ping(&mut self) -> Result<(), ClusterError> {
        let interval = self.liveness.ping_interval;
        let mut due: Vec<(PeerId, bool)> = Vec::new();
        for peer in 1..=self.hosts {
            let h = self.health_entry(peer);
            if h.last_ping.elapsed() >= interval {
                let unanswered = h.last_heard < h.last_ping;
                h.last_ping = Instant::now();
                due.push((peer, unanswered));
            }
        }
        for (peer, unanswered) in due {
            if unanswered {
                self.note_timeout(peer);
            }
            let mut frame = std::mem::take(&mut self.buf);
            WireMsg::Ping { reply: false }
                .encode(DRIVER_PEER, peer, &mut frame)
                .expect("ping is tiny");
            self.t.send(peer, &frame)?;
            self.buf = frame;
        }
        Ok(())
    }

    /// The per-attempt timeout of the retry policy: exponential in the
    /// attempt number, capped, jittered from the seeded stream.
    fn attempt_timeout(&mut self, attempt: u32) -> Duration {
        let exp = self.policy.base.as_secs_f64() * self.policy.factor.powi(attempt.min(20) as i32);
        let capped = exp.min(self.policy.max_timeout.as_secs_f64());
        let scaled = if self.policy.jitter > 0.0 {
            capped * (1.0 + self.policy.jitter * (self.jitter_rng.random::<f64>() - 0.5))
        } else {
            capped
        };
        Duration::from_secs_f64(scaled.max(1e-4))
    }

    /// Read access to the authoritative overlay.
    pub fn net(&self) -> &VoroNet {
        &self.net
    }

    /// Live population.
    pub fn population(&self) -> usize {
        self.net.len()
    }

    /// The driver endpoint's transport counters.
    pub fn transport_stats(&self) -> TransportStats {
        self.t.stats()
    }

    fn fresh_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Materialises the current shippable state of one live object.
    fn current_view(&self, id: u64) -> ShippedView {
        let oid = voronet_core::ObjectId(id);
        let view = self.net.view(oid).expect("live object");
        let coords = view.coords;
        let mut routing = Vec::new();
        for nb in view.routing_neighbours() {
            if let Some(c) = self.net.coords(nb) {
                routing.push((nb.0, c));
            }
        }
        let vn: Vec<u64> = view.voronoi_neighbours.iter().map(|n| n.0).collect();
        let cell = match self.net.vertex_of(oid) {
            Some(v) => voronoi_cell(self.net.triangulation(), v).polygon.vertices,
            None => Vec::new(),
        };
        ShippedView {
            coords,
            routing,
            vn,
            cell,
        }
    }

    /// Pushes view diffs (and the given evictions) to the hosts and
    /// blocks until every push is acked, resending on a timer.
    fn sync_views(&mut self, evicted: &[u64]) -> Result<(), ClusterError> {
        let mut pending: HashMap<(u64, u64), PendingPush> = HashMap::new();
        for &object in evicted {
            self.shipped.remove(&object);
            let seq = self.seqs.entry(object).or_insert(0);
            *seq += 1;
            let seq = *seq;
            let peer = host_of(object, self.hosts);
            let mut frame = Vec::new();
            WireMsg::Evict { object, seq }
                .encode(DRIVER_PEER, peer, &mut frame)
                .expect("evict is tiny");
            pending.insert((object, seq), PendingPush { peer, frame });
        }
        let live: Vec<u64> = self.net.ids().map(|id| id.0).collect();
        for object in live {
            let current = self.current_view(object);
            if self.shipped.get(&object) == Some(&current) {
                continue;
            }
            let seq = self.seqs.entry(object).or_insert(0);
            *seq += 1;
            let seq = *seq;
            let peer = host_of(object, self.hosts);
            let mut frame = Vec::new();
            let mut routing_scratch = Vec::new();
            let mut vn_scratch = Vec::new();
            let mut cell_scratch = Vec::new();
            WireMsg::ViewUpdate {
                object,
                seq,
                coords: current.coords,
                routing: EntryList::build(&mut routing_scratch, &current.routing),
                vn: IdList::build(&mut vn_scratch, &current.vn),
                cell: PointList::build(&mut cell_scratch, &current.cell),
            }
            .encode(DRIVER_PEER, peer, &mut frame)
            .expect("views of a bounded-degree node fit one frame");
            pending.insert((object, seq), PendingPush { peer, frame });
            self.shipped.insert(object, current);
        }

        self.await_acks(pending, AckKind::View, "view acks")
    }

    /// Removes pending pushes whose target host is dead (the barrier
    /// must not stall on a host that cannot ack); the driver re-ships
    /// dropped state if the host ever comes back.
    fn drop_dead_pushes(&mut self, pending: &mut HashMap<(u64, u64), PendingPush>) {
        let before = pending.len();
        pending.retain(|_, push| !matches!(self.host_state(push.peer), HostState::Dead));
        self.skipped_pushes += (before - pending.len()) as u64;
    }

    /// Sends every queued push and blocks until each one is acked or
    /// dropped (its target died), resending on a timer and running the
    /// failure detector while waiting.
    fn await_acks(
        &mut self,
        mut pending: HashMap<(u64, u64), PendingPush>,
        kind: AckKind,
        what: &'static str,
    ) -> Result<(), ClusterError> {
        self.drop_dead_pushes(&mut pending);
        for push in pending.values() {
            self.t.send(push.peer, &push.frame)?;
        }
        let overall = Instant::now();
        let mut last_resend = Instant::now();
        let mut buf = Vec::new();
        let mut backoff = Backoff::new();
        while !pending.is_empty() {
            if overall.elapsed() > SYNC_DEADLINE {
                return Err(ClusterError::Timeout(what));
            }
            match self.recv_noted(&mut buf)? {
                Some(_) => {
                    backoff.reset();
                    // Anything else here is a stale answer from an
                    // abandoned attempt; ignore it.
                    if let Ok((_, msg)) = WireMsg::decode(&buf) {
                        match (kind, msg) {
                            (
                                AckKind::View,
                                WireMsg::ViewAck { object, seq }
                                | WireMsg::EvictAck { object, seq },
                            )
                            | (AckKind::Svc, WireMsg::SvcAck { object, seq }) => {
                                pending.remove(&(object, seq));
                            }
                            _ => {}
                        }
                    }
                }
                None => {
                    self.maybe_ping()?;
                    self.drop_dead_pushes(&mut pending);
                    // Resend on the policy's fast-retransmit cadence (but
                    // never slower than the legacy ACK_RESEND timer) so a
                    // single dropped push doesn't stall the barrier for a
                    // whole resend window.
                    let resend = self
                        .policy
                        .resend
                        .max(Duration::from_millis(2))
                        .min(ACK_RESEND);
                    if last_resend.elapsed() > resend {
                        for push in pending.values() {
                            self.t.send(push.peer, &push.frame)?;
                            self.fast_resends += 1;
                        }
                        last_resend = Instant::now();
                    }
                    self.t.poll()?;
                    backoff.wait();
                }
            }
        }
        Ok(())
    }

    /// Waits up to `timeout` for a frame `accept`s, running the failure
    /// detector and backoff while idle.  Returns `Ok(None)` when the
    /// window closes, `peer` is declared dead, or `deadline` (the op's
    /// budget) passes — the caller decides whether to retry.
    ///
    /// While waiting, the pending `request` frame is retransmitted on the
    /// policy's fast-resend cadence.  Every request handler on the hosts
    /// is idempotent (answers are token-matched, route restarts are
    /// stateless, flood coordinators ignore stale tokens), so a duplicate
    /// costs one frame — while a dropped frame without retransmit used to
    /// cost the entire attempt timeout (~100ms under the tight policy).
    fn await_reply<R>(
        &mut self,
        peer: PeerId,
        request: &[u8],
        timeout: Duration,
        deadline: Instant,
        accept: &mut dyn FnMut(PeerId, &[u8]) -> Option<R>,
    ) -> Result<Option<R>, ClusterError> {
        let start = Instant::now();
        let mut buf = Vec::new();
        let resend = self.policy.resend_every();
        // Cap the idle sleep below the resend cadence so the backoff
        // never sleeps through a retransmit slot.
        let mut backoff = Backoff::with_ceiling(resend / 2);
        let mut last_send = Instant::now();
        while start.elapsed() < timeout {
            match self.recv_noted(&mut buf)? {
                Some(from) => {
                    backoff.reset();
                    if let Some(r) = accept(from, &buf) {
                        return Ok(Some(r));
                    }
                }
                None => {
                    self.maybe_ping()?;
                    if self.host_dead(peer) {
                        return Ok(None);
                    }
                    if !request.is_empty() && last_send.elapsed() >= resend {
                        self.t.send(peer, request)?;
                        self.fast_resends += 1;
                        last_send = Instant::now();
                    }
                    self.t.poll()?;
                    backoff.wait();
                }
            }
            if Instant::now() > deadline {
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// Regenerates hosts that came back from the dead before the next
    /// operation touches them: re-ships their view snapshots (and evicts
    /// stale ones), then replays their service state — subscriptions,
    /// owned KV entries and replica copies — from driver control state.
    /// Monotonic push sequences make the replay idempotent for a host
    /// that kept its state and restorative for one that lost it.
    fn service_revivals(&mut self) -> Result<(), ClusterError> {
        if self.revived.is_empty() || self.in_revival {
            return Ok(());
        }
        self.in_revival = true;
        let result = self.regenerate_revived();
        self.in_revival = false;
        result
    }

    fn regenerate_revived(&mut self) -> Result<(), ClusterError> {
        while let Some(peer) = self.revived.pop() {
            let hosts = self.hosts;
            // Forget what was shipped to the revived host so sync_views
            // re-pushes every view it must hold, and re-evict departed
            // objects whose eviction it may have missed.
            self.shipped
                .retain(|&object, _| host_of(object, hosts) != peer);
            let stale: Vec<u64> = self
                .seqs
                .keys()
                .copied()
                .filter(|&object| {
                    host_of(object, hosts) == peer
                        && self.net.coords(voronet_core::ObjectId(object)).is_none()
                })
                .collect();
            self.sync_views(&stale)?;

            let subs: Vec<(u64, Rect)> = self
                .subs
                .iter()
                .filter(|&(&id, _)| host_of(id, hosts) == peer)
                .map(|(&id, &region)| (id, region))
                .collect();
            let entries: Vec<(u64, KvPlacement)> =
                self.kv.iter().map(|(&k, p)| (k, p.clone())).collect();
            let mut pending = HashMap::new();
            for (id, region) in subs {
                self.queue_service_push(&mut pending, id, |seq| WireMsg::SvcSubscribe {
                    object: id,
                    seq,
                    region,
                });
            }
            for (key, p) in entries {
                if host_of(p.owner, hosts) == peer {
                    let (object, value) = (p.owner, p.value);
                    self.queue_service_push(&mut pending, object, |seq| WireMsg::SvcKvStore {
                        object,
                        seq,
                        key,
                        value,
                    });
                }
                for &replica in &p.replicas {
                    if replica != p.owner && host_of(replica, hosts) == peer {
                        let (value, entry_seq) = (p.value, p.entry_seq);
                        self.queue_service_push(&mut pending, replica, |seq| {
                            WireMsg::SvcKvReplicate {
                                object: replica,
                                seq,
                                key,
                                value,
                                entry_seq,
                            }
                        });
                    }
                }
            }
            self.flush_service_pushes(pending)?;
        }
        Ok(())
    }

    /// Inserts an object at `position` into the overlay and synchronises
    /// every affected view.  `Ok(None)` when the overlay rejects the
    /// position (duplicate).
    pub fn insert(&mut self, position: Point2) -> Result<Option<u64>, ClusterError> {
        self.service_revivals()?;
        match self.net.insert(position) {
            Ok(report) => {
                let id = report.id.0;
                self.sync_views(&[])?;
                self.rebalance_kv()?;
                Ok(Some(id))
            }
            Err(JoinError::DuplicatePosition(_)) => Ok(None),
            Err(_) => Ok(None),
        }
    }

    /// Removes the `index`-th live object (modulo the population) and
    /// synchronises the survivors' views.  `Ok(None)` when the overlay
    /// refuses the departure (population floor).
    pub fn remove_index(&mut self, index: usize) -> Result<Option<u64>, ClusterError> {
        if self.net.is_empty() {
            return Ok(None);
        }
        self.service_revivals()?;
        let id = self
            .net
            .id_at(index % self.net.len())
            .expect("index below len");
        match self.net.remove(id) {
            Ok(_) => {
                self.sync_views(&[id.0])?;
                // The evicted host dropped the departed object's service
                // state with it; the driver's control state follows.
                self.subs.remove(&id.0);
                self.rebalance_kv()?;
                Ok(Some(id.0))
            }
            Err(_) => Ok(None),
        }
    }

    /// Sends one request frame and waits for the answer matching
    /// `token`, retrying the whole request (with the same pre-encoded
    /// frame) per the retry policy.  Fails fast with
    /// [`ClusterError::Unavailable`] when the serving host is dead —
    /// before sending, or as soon as the failure detector declares it
    /// mid-wait.
    fn request(
        &mut self,
        peer: PeerId,
        request: &[u8],
        token: u64,
        what: &'static str,
    ) -> Result<(u32, OpOutcome), ClusterError> {
        if self.host_dead(peer) {
            self.fail_fast += 1;
            return Err(ClusterError::Unavailable(what));
        }
        let deadline = Instant::now() + self.policy.budget;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                self.retries += 1;
            }
            self.t.send(peer, request)?;
            let timeout = self.attempt_timeout(attempt);
            let got = self.await_reply(peer, request, timeout, deadline, &mut |_, frame| {
                match WireMsg::decode(frame) {
                    Ok((
                        _,
                        WireMsg::AnswerOwner {
                            token: t,
                            owner,
                            hops,
                        },
                    )) if t == token => Some((hops, OpOutcome::Route { owner, hops })),
                    Ok((
                        _,
                        WireMsg::AnswerMatches {
                            token: t,
                            hops,
                            visited,
                            matches,
                        },
                    )) if t == token => Some((
                        hops,
                        OpOutcome::Matches {
                            matches: matches.to_vec(),
                            hops,
                            visited,
                        },
                    )),
                    _ => None, // stale token or late ack
                }
            })?;
            if let Some(answer) = got {
                return Ok(answer);
            }
            if self.host_dead(peer) || Instant::now() > deadline {
                break;
            }
        }
        if self.host_dead(peer) {
            self.fail_fast += 1;
            Err(ClusterError::Unavailable(what))
        } else {
            Err(ClusterError::Timeout(what))
        }
    }

    /// Routes from the `from`-th live object towards the `to`-th one's
    /// coordinates through the distributed overlay.
    pub fn route_indices(&mut self, from: usize, to: usize) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let n = self.net.len();
        let from_id = self.net.id_at(from % n).expect("index below len").0;
        let to_id = self.net.id_at(to % n).expect("index below len");
        let target = self.net.coords(to_id).expect("live object");
        let token = self.fresh_token();
        let mut frame = Vec::new();
        WireMsg::RouteReq {
            token,
            from_object: from_id,
            target,
        }
        .encode(DRIVER_PEER, host_of(from_id, self.hosts), &mut frame)
        .expect("route request is tiny");
        let (_, outcome) = self.request(host_of(from_id, self.hosts), &frame, token, "route")?;
        Ok(outcome)
    }

    /// Routes a batch of `(from, to)` index pairs with up to `window`
    /// operations in flight at once, sharing one receive pump.
    ///
    /// Unlike issuing [`Self::route_indices`] in a loop — where one
    /// operation waiting out its attempt timeout head-of-line-blocks
    /// every operation behind it — each in-flight route here keeps its
    /// own attempt ladder, fast-resend timer and budget, so a single
    /// route stalled on a lossy or crashed hop cannot stall the rest of
    /// the batch.  Results come back in input order; an entry whose
    /// route never answered within its budget (or whose origin host was
    /// dead) carries `owner_hops: None` plus the time spent on it.
    pub fn route_indices_pipelined(
        &mut self,
        pairs: &[(usize, usize)],
        window: usize,
    ) -> Result<Vec<PipelinedRoute>, ClusterError> {
        let mut results: Vec<PipelinedRoute> = pairs
            .iter()
            .map(|_| PipelinedRoute {
                owner_hops: None,
                latency: Duration::ZERO,
            })
            .collect();
        if self.net.is_empty() || pairs.is_empty() {
            return Ok(results);
        }
        self.service_revivals()?;
        let window = window.max(1);
        let resend = self.policy.resend_every();
        let mut backoff = Backoff::with_ceiling(resend / 2);
        let mut inflight: Vec<InFlightRoute> = Vec::new();
        let mut next = 0usize;
        let mut buf = Vec::new();
        while next < pairs.len() || !inflight.is_empty() {
            while inflight.len() < window && next < pairs.len() {
                let slot = next;
                next += 1;
                let (from, to) = pairs[slot];
                let n = self.net.len();
                let from_id = self.net.id_at(from % n).expect("index below len").0;
                let to_id = self.net.id_at(to % n).expect("index below len");
                let target = self.net.coords(to_id).expect("live object");
                let peer = host_of(from_id, self.hosts);
                let issued = Instant::now();
                if self.host_dead(peer) {
                    self.fail_fast += 1;
                    results[slot].latency = issued.elapsed();
                    continue;
                }
                let token = self.fresh_token();
                let mut frame = Vec::new();
                WireMsg::RouteReq {
                    token,
                    from_object: from_id,
                    target,
                }
                .encode(DRIVER_PEER, peer, &mut frame)
                .expect("route request is tiny");
                self.t.send(peer, &frame)?;
                let timeout = self.attempt_timeout(0);
                inflight.push(InFlightRoute {
                    slot,
                    peer,
                    frame,
                    token,
                    attempt: 0,
                    issued,
                    attempt_started: issued,
                    timeout,
                    deadline: issued + self.policy.budget,
                    last_send: issued,
                });
            }
            if inflight.is_empty() {
                continue;
            }
            match self.recv_noted(&mut buf)? {
                Some(_) => {
                    backoff.reset();
                    if let Ok((_, WireMsg::AnswerOwner { token, owner, hops })) =
                        WireMsg::decode(&buf)
                    {
                        if let Some(pos) = inflight.iter().position(|op| op.token == token) {
                            let op = inflight.swap_remove(pos);
                            results[op.slot] = PipelinedRoute {
                                owner_hops: Some((owner, hops)),
                                latency: op.issued.elapsed(),
                            };
                        }
                    }
                }
                None => {
                    self.maybe_ping()?;
                    let now = Instant::now();
                    let max_attempts = self.policy.attempts.max(1);
                    let mut i = 0;
                    while i < inflight.len() {
                        if self.host_dead(inflight[i].peer) || now > inflight[i].deadline {
                            if self.host_dead(inflight[i].peer) {
                                self.fail_fast += 1;
                            }
                            let op = inflight.swap_remove(i);
                            results[op.slot].latency = op.issued.elapsed();
                            continue;
                        }
                        if now.duration_since(inflight[i].attempt_started) >= inflight[i].timeout {
                            if inflight[i].attempt + 1 >= max_attempts {
                                let op = inflight.swap_remove(i);
                                results[op.slot].latency = op.issued.elapsed();
                                continue;
                            }
                            self.retries += 1;
                            let timeout = self.attempt_timeout(inflight[i].attempt + 1);
                            let op = &mut inflight[i];
                            op.attempt += 1;
                            op.timeout = timeout;
                            op.attempt_started = now;
                            let (peer, frame) = (op.peer, std::mem::take(&mut op.frame));
                            self.t.send(peer, &frame)?;
                            inflight[i].frame = frame;
                            inflight[i].last_send = now;
                        } else if now.duration_since(inflight[i].last_send) >= resend {
                            let (peer, frame) =
                                (inflight[i].peer, std::mem::take(&mut inflight[i].frame));
                            self.t.send(peer, &frame)?;
                            self.fast_resends += 1;
                            inflight[i].frame = frame;
                            inflight[i].last_send = now;
                        }
                        i += 1;
                    }
                    self.t.poll()?;
                    backoff.wait();
                }
            }
        }
        Ok(results)
    }

    /// Executes a distributed rectangular range query issued by the
    /// `from`-th live object.
    pub fn range_query(
        &mut self,
        from: usize,
        query: RangeQuery,
    ) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let from_id = self.net.id_at(from % self.net.len()).expect("live").0;
        let token = self.fresh_token();
        let mut frame = Vec::new();
        WireMsg::AreaReq {
            token,
            from_object: from_id,
            rect: query.rect,
        }
        .encode(DRIVER_PEER, host_of(from_id, self.hosts), &mut frame)
        .expect("area request is tiny");
        let (_, outcome) =
            self.request(host_of(from_id, self.hosts), &frame, token, "range query")?;
        Ok(outcome)
    }

    /// Executes a distributed radius query issued by the `from`-th live
    /// object.
    pub fn radius_query(
        &mut self,
        from: usize,
        query: RadiusQuery,
    ) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let from_id = self.net.id_at(from % self.net.len()).expect("live").0;
        let token = self.fresh_token();
        let mut frame = Vec::new();
        WireMsg::RadiusReq {
            token,
            from_object: from_id,
            center: query.center,
            radius: query.radius,
        }
        .encode(DRIVER_PEER, host_of(from_id, self.hosts), &mut frame)
        .expect("radius request is tiny");
        let (_, outcome) =
            self.request(host_of(from_id, self.hosts), &frame, token, "radius query")?;
        Ok(outcome)
    }

    // -- service plane ------------------------------------------------

    /// Bumps and returns the service push sequence number of one object.
    fn svc_seq(&mut self, object: u64) -> u64 {
        let seq = self.svc_seqs.entry(object).or_insert(0);
        *seq += 1;
        *seq
    }

    /// Queues one pre-encoded service push for [`Self::flush_service_pushes`].
    fn queue_service_push(
        &mut self,
        pending: &mut HashMap<(u64, u64), PendingPush>,
        object: u64,
        build: impl FnOnce(u64) -> WireMsg<'static>,
    ) {
        let seq = self.svc_seq(object);
        let peer = host_of(object, self.hosts);
        let mut frame = Vec::new();
        build(seq)
            .encode(DRIVER_PEER, peer, &mut frame)
            .expect("service pushes are tiny");
        pending.insert((object, seq), PendingPush { peer, frame });
    }

    /// Sends queued service pushes and blocks until every one is acked
    /// or dropped (its target died), resending on a timer (the
    /// `sync_views` discipline).
    fn flush_service_pushes(
        &mut self,
        pending: HashMap<(u64, u64), PendingPush>,
    ) -> Result<(), ClusterError> {
        self.await_acks(pending, AckKind::Svc, "service push acks")
    }

    /// Routes from a live object towards an arbitrary point through the
    /// distributed overlay, returning the owning object and hop count.
    fn route_point_from(
        &mut self,
        from_id: u64,
        target: Point2,
    ) -> Result<(u64, u32), ClusterError> {
        let token = self.fresh_token();
        let mut frame = Vec::new();
        WireMsg::RouteReq {
            token,
            from_object: from_id,
            target,
        }
        .encode(DRIVER_PEER, host_of(from_id, self.hosts), &mut frame)
        .expect("route request is tiny");
        match self.request(host_of(from_id, self.hosts), &frame, token, "kv route")? {
            (_, OpOutcome::Route { owner, hops }) => Ok((owner, hops)),
            _ => Err(ClusterError::Timeout("kv route")),
        }
    }

    /// Subscribes the `index`-th live object (modulo the population) to a
    /// region, installing the subscription on the object's host.
    pub fn subscribe(&mut self, index: usize, region: Rect) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let id = self.net.id_at(index % self.net.len()).expect("live").0;
        let replaced = self.subs.insert(id, region).is_some();
        let mut pending = HashMap::new();
        self.queue_service_push(&mut pending, id, |seq| WireMsg::SvcSubscribe {
            object: id,
            seq,
            region,
        });
        self.flush_service_pushes(pending)?;
        Ok(OpOutcome::Subscribed { id, replaced })
    }

    /// Drops the `index`-th live object's subscription.
    pub fn unsubscribe(&mut self, index: usize) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let id = self.net.id_at(index % self.net.len()).expect("live").0;
        let existed = self.subs.remove(&id).is_some();
        let mut pending = HashMap::new();
        self.queue_service_push(&mut pending, id, |seq| WireMsg::SvcUnsubscribe {
            object: id,
            seq,
        });
        self.flush_service_pushes(pending)?;
        Ok(OpOutcome::Unsubscribed { id, existed })
    }

    /// Publishes a payload to every subscriber inside `region`: resolves
    /// the recipients through the distributed area flood, then delivers
    /// host-by-host.  Subscribers whose subscribed region intersects the
    /// publication but who sit outside it are reported as missed.
    pub fn publish(
        &mut self,
        from: usize,
        region: Rect,
        payload: u64,
    ) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        let OpOutcome::Matches {
            matches,
            hops,
            visited,
        } = self.range_query(from, RangeQuery { rect: region })?
        else {
            return Ok(OpOutcome::Skipped);
        };
        let topic = topic_key(&region);
        let seq = self.topic_seqs.entry(topic).or_insert(0);
        *seq += 1;
        let topic_seq = *seq;
        let mut subscribers: Vec<(u64, Rect)> = self.subs.iter().map(|(&id, &r)| (id, r)).collect();
        subscribers.sort_unstable_by_key(|&(id, _)| id);
        let mut delivered = Vec::new();
        let mut missed = Vec::new();
        for (id, sub_region) in subscribers {
            if !sub_region.intersects(&region) {
                continue;
            }
            if matches.binary_search(&id).is_ok() {
                delivered.push(id);
            } else {
                missed.push(id);
            }
        }
        let mut pending = HashMap::new();
        for &id in &delivered {
            self.queue_service_push(&mut pending, id, |seq| WireMsg::SvcDeliver {
                object: id,
                seq,
                topic,
                topic_seq,
                payload,
            });
        }
        self.flush_service_pushes(pending)?;
        Ok(OpOutcome::Published {
            topic_seq,
            delivered,
            missed,
            hops,
            visited,
        })
    }

    /// The replica set of one owner object — its Voronoi neighbours,
    /// the exact rule of the single-process `ServiceEngine`.
    fn replicas_of(&self, owner: u64) -> Vec<u64> {
        let Ok(view) = self.net.view(voronet_core::ObjectId(owner)) else {
            return Vec::new();
        };
        let mut replicas: Vec<u64> = view.voronoi_neighbours.iter().map(|n| n.0).collect();
        replicas.sort_unstable();
        replicas
    }

    /// The owning object of a point per the authoritative tessellation
    /// (min squared distance, ties to the lower id — the `rebalance_kv`
    /// rule).
    fn local_owner_of(&self, target: Point2) -> Option<u64> {
        self.net
            .ids()
            .map(|id| (self.net.coords(id).expect("live").distance2(target), id.0))
            .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
            .map(|(_, id)| id)
    }

    /// True when every host is currently `Alive` per the failure
    /// detector — the precondition for a distributed route to complete
    /// without burning its retry budget on a dead hop.
    fn all_hosts_alive(&self) -> bool {
        (1..=self.hosts).all(|peer| matches!(self.host_state(peer), HostState::Alive))
    }

    /// Locates the owner of a point: the distributed greedy route
    /// decides on the healthy path; when any host is suspected or dead,
    /// the authoritative tessellation decides directly (the same owner
    /// the healthy route converges to) instead of letting the route burn
    /// its full retry ladder on a hop through the dead host first.
    fn owner_of_point(&mut self, from_id: u64, target: Point2) -> Result<u64, ClusterError> {
        if !self.all_hosts_alive() {
            return self
                .local_owner_of(target)
                .ok_or(ClusterError::Unavailable("kv owner"));
        }
        match self.route_point_from(from_id, target) {
            Ok((owner, _)) => Ok(owner),
            Err(ClusterError::Timeout(_) | ClusterError::Unavailable(_)) => self
                .local_owner_of(target)
                .ok_or(ClusterError::Unavailable("kv owner")),
            Err(e) => Err(e),
        }
    }

    /// Queues the final replication layout of one entry: the owner
    /// stores, each replica mirrors, and every previously involved live
    /// object no longer in the layout drops.  At most one push per
    /// `(object, key)`, so the host-side sequence filter can never let a
    /// reordered resend leave a stale role behind.
    fn queue_kv_layout(
        &mut self,
        pending: &mut HashMap<(u64, u64), PendingPush>,
        key: u64,
        placement: &KvPlacement,
        previous: &[u64],
    ) {
        let mut dropped: BTreeSet<u64> = previous.iter().copied().collect();
        dropped.remove(&placement.owner);
        for replica in &placement.replicas {
            dropped.remove(replica);
        }
        let (owner, value, entry_seq) = (placement.owner, placement.value, placement.entry_seq);
        self.queue_service_push(pending, owner, |seq| WireMsg::SvcKvStore {
            object: owner,
            seq,
            key,
            value,
        });
        for &replica in &placement.replicas {
            if replica == owner {
                continue;
            }
            self.queue_service_push(pending, replica, |seq| WireMsg::SvcKvReplicate {
                object: replica,
                seq,
                key,
                value,
                entry_seq,
            });
        }
        for object in dropped {
            // A departed object's host already dropped the entry when
            // the object was evicted; only live former roles need it.
            if self.net.coords(voronet_core::ObjectId(object)).is_none() {
                continue;
            }
            self.queue_service_push(pending, object, |seq| WireMsg::SvcKvDrop {
                object,
                seq,
                key,
            });
        }
    }

    /// Stores `key → value` at the host of the object whose Voronoi cell
    /// contains the key's coordinates (located by a distributed route
    /// from the `from`-th live object) and mirrors it to the owner's
    /// Voronoi-neighbour replica set, so an acked write survives any
    /// single-host crash.
    pub fn kv_put(&mut self, from: usize, key: u64, value: u64) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let from_id = self.net.id_at(from % self.net.len()).expect("live").0;
        let target = key_point(key, self.net.config().domain);
        let owner = self.owner_of_point(from_id, target)?;
        self.kv_seq += 1;
        let placement = KvPlacement {
            value,
            owner,
            entry_seq: self.kv_seq,
            replicas: self.replicas_of(owner),
        };
        let replicas = placement.replicas.len() as u32;
        let old = self.kv.insert(key, placement.clone());
        let mut previous = Vec::new();
        if let Some(old) = &old {
            previous.push(old.owner);
            previous.extend(old.replicas.iter().copied());
        }
        let mut pending = HashMap::new();
        self.queue_kv_layout(&mut pending, key, &placement, &previous);
        self.flush_service_pushes(pending)?;
        Ok(OpOutcome::KvStored {
            key,
            owner,
            replaced: old.is_some(),
            replicas,
        })
    }

    /// Reads `key` from the host of the owning cell's object — the route
    /// decides the owner, so a get issued after churn reads from
    /// wherever the entry migrated to.  When the owner's host is
    /// suspected or dead (or stops answering mid-read), the read
    /// degrades to the replica set instead of failing.
    pub fn kv_get(&mut self, from: usize, key: u64) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let from_id = self.net.id_at(from % self.net.len()).expect("live").0;
        let target = key_point(key, self.net.config().domain);
        let owner = self.owner_of_point(from_id, target)?;
        if matches!(
            self.host_state(host_of(owner, self.hosts)),
            HostState::Alive
        ) {
            match self.fetch_value(owner, key) {
                Ok(value) => {
                    return Ok(OpOutcome::KvFetched {
                        key,
                        owner,
                        value,
                        degraded: false,
                    })
                }
                Err(ClusterError::Timeout(_) | ClusterError::Unavailable(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.degraded_kv_get(key, owner)
    }

    /// Serves a read whose owner host is unreachable from the replica
    /// set, accepting only a replica whose entry sequence matches the
    /// driver's record — a stale copy is never returned.
    fn degraded_kv_get(&mut self, key: u64, owner: u64) -> Result<OpOutcome, ClusterError> {
        self.degraded_reads += 1;
        let Some(placement) = self.kv.get(&key).cloned() else {
            // No acked write for this key: absence is an exact answer
            // even while the owning host is down.
            return Ok(OpOutcome::KvFetched {
                key,
                owner,
                value: None,
                degraded: true,
            });
        };
        for &replica in &placement.replicas {
            if self.host_dead(host_of(replica, self.hosts)) {
                continue;
            }
            if let Ok(Some((value, entry_seq))) = self.fetch_replica(replica, key) {
                if entry_seq == placement.entry_seq {
                    return Ok(OpOutcome::KvFetched {
                        key,
                        owner: placement.owner,
                        value: Some(value),
                        degraded: true,
                    });
                }
            }
        }
        self.fail_fast += 1;
        Err(ClusterError::Unavailable("kv degraded read"))
    }

    /// Deletes `key` from the host of the owning cell's object and from
    /// every replica.
    pub fn kv_delete(&mut self, from: usize, key: u64) -> Result<OpOutcome, ClusterError> {
        if self.net.is_empty() {
            return Ok(OpOutcome::Skipped);
        }
        self.service_revivals()?;
        let from_id = self.net.id_at(from % self.net.len()).expect("live").0;
        let target = key_point(key, self.net.config().domain);
        let owner = self.owner_of_point(from_id, target)?;
        let old = self.kv.remove(&key);
        let mut parties: BTreeSet<u64> = BTreeSet::new();
        parties.insert(owner);
        if let Some(old) = &old {
            parties.insert(old.owner);
            parties.extend(old.replicas.iter().copied());
        }
        let mut pending = HashMap::new();
        for object in parties {
            if self.net.coords(voronet_core::ObjectId(object)).is_none() {
                continue;
            }
            self.queue_service_push(&mut pending, object, |seq| WireMsg::SvcKvDrop {
                object,
                seq,
                key,
            });
        }
        self.flush_service_pushes(pending)?;
        Ok(OpOutcome::KvDropped {
            key,
            owner,
            existed: old.is_some(),
        })
    }

    /// Issues one `SvcKvFetch` and waits for its token-matched
    /// `SvcKvValue`, retrying with a fresh token per the policy.
    fn fetch_value(&mut self, owner: u64, key: u64) -> Result<Option<u64>, ClusterError> {
        let peer = host_of(owner, self.hosts);
        if self.host_dead(peer) {
            self.fail_fast += 1;
            return Err(ClusterError::Unavailable("kv fetch"));
        }
        let deadline = Instant::now() + self.policy.budget;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                self.retries += 1;
            }
            let token = self.fresh_token();
            let mut frame = Vec::new();
            WireMsg::SvcKvFetch {
                token,
                object: owner,
                key,
            }
            .encode(DRIVER_PEER, peer, &mut frame)
            .expect("kv fetch is tiny");
            self.t.send(peer, &frame)?;
            let timeout = self.attempt_timeout(attempt);
            let got = self.await_reply(peer, &frame, timeout, deadline, &mut |_, frame| {
                match WireMsg::decode(frame) {
                    Ok((_, WireMsg::SvcKvValue { token: t, value })) if t == token => Some(value),
                    _ => None,
                }
            })?;
            if let Some(value) = got {
                return Ok(value);
            }
            if self.host_dead(peer) || Instant::now() > deadline {
                break;
            }
        }
        if self.host_dead(peer) {
            self.fail_fast += 1;
            Err(ClusterError::Unavailable("kv fetch"))
        } else {
            Err(ClusterError::Timeout("kv fetch"))
        }
    }

    /// Issues one `SvcKvFetchReplica` and waits for its token-matched
    /// `SvcKvReplicaValue`: `Ok(Some((value, entry_seq)))` when the
    /// replica holds a copy.  Capped at two attempts — a degraded read
    /// tries the next replica instead of burning the full budget here.
    fn fetch_replica(&mut self, object: u64, key: u64) -> Result<Option<(u64, u64)>, ClusterError> {
        let peer = host_of(object, self.hosts);
        if self.host_dead(peer) {
            return Err(ClusterError::Unavailable("kv replica fetch"));
        }
        let deadline = Instant::now() + self.policy.budget;
        for attempt in 0..self.policy.attempts.clamp(1, 2) {
            if attempt > 0 {
                self.retries += 1;
            }
            let token = self.fresh_token();
            let mut frame = Vec::new();
            WireMsg::SvcKvFetchReplica { token, object, key }
                .encode(DRIVER_PEER, peer, &mut frame)
                .expect("replica fetch is tiny");
            self.t.send(peer, &frame)?;
            let timeout = self.attempt_timeout(attempt);
            let got = self.await_reply(peer, &frame, timeout, deadline, &mut |_, frame| {
                match WireMsg::decode(frame) {
                    Ok((
                        _,
                        WireMsg::SvcKvReplicaValue {
                            token: t,
                            entry_seq,
                            value,
                        },
                    )) if t == token => Some(value.map(|v| (v, entry_seq))),
                    _ => None,
                }
            })?;
            if let Some(answer) = got {
                return Ok(answer);
            }
            if self.host_dead(peer) || Instant::now() > deadline {
                break;
            }
        }
        Err(ClusterError::Timeout("kv replica fetch"))
    }

    /// Recomputes every KV entry's owning cell and replica set against
    /// the authoritative tessellation after churn and migrates entries
    /// whose layout changed: the value is re-stored at the new owner's
    /// host, mirrored to the new replicas, and dropped from former
    /// roles (handoff).  Owner ties break towards the lower id, the
    /// exact rule of the single-process `ServiceEngine`.
    fn rebalance_kv(&mut self) -> Result<(), ClusterError> {
        if self.kv.is_empty() && self.subs.is_empty() {
            return Ok(());
        }
        if self.net.is_empty() {
            // Mirror the service-engine rule: an emptied overlay drops
            // all membership-derived state (topic sequences persist).
            self.kv.clear();
            self.subs.clear();
            return Ok(());
        }
        let domain = self.net.config().domain;
        let live: Vec<(u64, Point2)> = self
            .net
            .ids()
            .map(|id| (id.0, self.net.coords(id).expect("live")))
            .collect();
        let mut moves: Vec<(u64, KvPlacement, Vec<u64>)> = Vec::new(); // (key, new placement, previous roles)
        for (&key, placement) in &self.kv {
            let kp = key_point(key, domain);
            let new_owner = live
                .iter()
                .map(|&(id, c)| (c.distance2(kp), id))
                .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
                .expect("non-empty overlay")
                .1;
            let new_replicas = self.replicas_of(new_owner);
            if new_owner != placement.owner || new_replicas != placement.replicas {
                let mut previous = vec![placement.owner];
                previous.extend(placement.replicas.iter().copied());
                moves.push((
                    key,
                    KvPlacement {
                        value: placement.value,
                        owner: new_owner,
                        entry_seq: placement.entry_seq,
                        replicas: new_replicas,
                    },
                    previous,
                ));
            }
        }
        if moves.is_empty() {
            return Ok(());
        }
        let mut pending = HashMap::new();
        for (key, placement, previous) in moves {
            self.queue_kv_layout(&mut pending, key, &placement, &previous);
            self.kv.insert(key, placement);
        }
        self.flush_service_pushes(pending)
    }

    /// Applies one scripted [`WorkloadOp`] to the cluster.
    pub fn apply(&mut self, op: &WorkloadOp) -> Result<OpOutcome, ClusterError> {
        match *op {
            WorkloadOp::Insert { position } => Ok(OpOutcome::Inserted(self.insert(position)?)),
            WorkloadOp::Remove { index } => Ok(OpOutcome::Removed(self.remove_index(index)?)),
            WorkloadOp::Route { from, to } => self.route_indices(from, to),
            WorkloadOp::Range { from, query } => self.range_query(from, query),
            WorkloadOp::Radius { from, query } => self.radius_query(from, query),
            WorkloadOp::Snapshot { .. } => Ok(OpOutcome::Skipped),
            WorkloadOp::Subscribe { index, region } => self.subscribe(index, region),
            WorkloadOp::Unsubscribe { index } => self.unsubscribe(index),
            WorkloadOp::Publish {
                from,
                region,
                payload,
            } => self.publish(from, region, payload),
            WorkloadOp::KvPut { from, key, value } => self.kv_put(from, key, value),
            WorkloadOp::KvGet { from, key } => self.kv_get(from, key),
            WorkloadOp::KvDelete { from, key } => self.kv_delete(from, key),
        }
    }

    /// Collects every host's stats snapshot.  Fails fast with
    /// [`ClusterError::Unavailable`] when a host is dead — heal and
    /// heartbeat first to audit a post-chaos cluster.
    pub fn collect_stats(&mut self) -> Result<Vec<HostReport>, ClusterError> {
        let mut reports = Vec::new();
        for peer in 1..=self.hosts {
            if self.host_dead(peer) {
                self.fail_fast += 1;
                return Err(ClusterError::Unavailable("host stats"));
            }
            let mut frame = Vec::new();
            WireMsg::StatsReq
                .encode(DRIVER_PEER, peer, &mut frame)
                .expect("stats request is tiny");
            let deadline = Instant::now() + self.policy.budget;
            let mut got = None;
            for attempt in 0..self.policy.attempts.max(1) {
                if attempt > 0 {
                    self.retries += 1;
                }
                self.t.send(peer, &frame)?;
                let timeout = self.attempt_timeout(attempt);
                got = self.await_reply(peer, &frame, timeout, deadline, &mut |from, frame| {
                    if from != peer {
                        return None;
                    }
                    match WireMsg::decode(frame) {
                        Ok((_, WireMsg::StatsReply { stats, ops_served })) => Some(HostReport {
                            peer,
                            stats,
                            ops_served,
                        }),
                        _ => None,
                    }
                })?;
                if got.is_some() || self.host_dead(peer) || Instant::now() > deadline {
                    break;
                }
            }
            reports.push(got.ok_or(ClusterError::Timeout("host stats"))?);
        }
        Ok(reports)
    }

    /// Tells every host to exit its serve loop (best-effort; sent a few
    /// times to survive datagram loss).
    pub fn shutdown_hosts(&mut self) -> Result<(), ClusterError> {
        for _ in 0..3 {
            for peer in 1..=self.hosts {
                let mut frame = std::mem::take(&mut self.buf);
                WireMsg::Shutdown
                    .encode(DRIVER_PEER, peer, &mut frame)
                    .expect("shutdown is tiny");
                self.t.send(peer, &frame)?;
                self.buf = frame;
            }
        }
        Ok(())
    }
}

/// One completed route of a [`Driver::route_indices_pipelined`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedRoute {
    /// `Some((owner, hops))` when the route answered within its budget;
    /// `None` when it timed out or its origin host was dead.
    pub owner_hops: Option<(u64, u32)>,
    /// Wall-clock time from issuing the operation to its completion (or
    /// abandonment).
    pub latency: Duration,
}

/// Driver-side state of one in-flight pipelined route.
struct InFlightRoute {
    slot: usize,
    peer: PeerId,
    frame: Vec<u8>,
    token: u64,
    attempt: u32,
    issued: Instant,
    attempt_started: Instant,
    timeout: Duration,
    deadline: Instant,
    last_send: Instant,
}

// ---------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------

/// One hosted object's shipped snapshot: everything a host needs to
/// route through it and evaluate flood predicates at it.
#[derive(Debug, Clone)]
struct Hosted {
    seq: u64,
    coords: Point2,
    routing: Vec<(u64, Point2)>,
    vn: Vec<u64>,
    cell: Vec<Point2>,
}

impl Hosted {
    /// Mirrors `core::queries`: the coordinate predicate (match) and the
    /// cell-touches-area predicate (flood expansion), computed from the
    /// shipped geometry with the exact same f64 operations as the
    /// single-process oracle.
    fn evaluate(&self, query: &WireQuery) -> (bool, bool) {
        match *query {
            WireQuery::Rect(rect) => {
                let is_match = rect.contains(self.coords);
                let eligible = is_match
                    || !Polygon::new(self.cell.clone())
                        .clip_to_rect(rect)
                        .is_empty();
                (eligible, is_match)
            }
            WireQuery::Disk { center, radius } => {
                let is_match = self.coords.distance2(center) <= radius * radius;
                let eligible = if self.coords.distance(center) <= radius {
                    true
                } else if self.cell.len() < 2 {
                    false
                } else {
                    let n = self.cell.len();
                    (0..n).any(|i| {
                        center.distance_to_segment(self.cell[i], self.cell[(i + 1) % n]) <= radius
                    })
                };
                (eligible, is_match)
            }
        }
    }
}

/// An outstanding flood probe awaiting its reply.
#[derive(Debug)]
struct ProbeState {
    sent_at: Instant,
    attempts: u32,
}

/// Coordinator state of one in-progress distributed flood (lives on the
/// host of the area's owner object).
#[derive(Debug)]
struct Flood {
    origin: PeerId,
    hops: u32,
    query: WireQuery,
    visited: BTreeSet<u64>,
    matches: Vec<u64>,
    frontier: Vec<u64>,
    outstanding: HashMap<u64, ProbeState>,
}

/// One object-hosting peer: applies view pushes, forwards greedy route
/// steps, evaluates and coordinates floods, answers the driver.
pub struct HostNode<T: Transport> {
    t: T,
    peer: PeerId,
    hosts: u64,
    objects: HashMap<u64, Hosted>,
    floods: HashMap<u64, Flood>,
    subs: HashMap<u64, Rect>,
    seen: HashMap<(u64, [u64; 4]), u64>,
    kv: HashMap<(u64, u64), u64>,
    kv_replicas: HashMap<(u64, u64), (u64, u64)>,
    svc_applied: HashMap<u64, u64>,
    kv_applied: HashMap<(u64, u64), u64>,
    deliveries: u64,
    duplicates: u64,
    ops_served: u64,
    shutdown: bool,
}

impl<T: Transport> HostNode<T> {
    /// Creates a host over an already-bound transport (peers registered
    /// by the caller).
    pub fn new(transport: T, peer: PeerId, hosts: u64) -> Self {
        HostNode {
            t: transport,
            peer,
            hosts,
            objects: HashMap::new(),
            floods: HashMap::new(),
            subs: HashMap::new(),
            seen: HashMap::new(),
            kv: HashMap::new(),
            kv_replicas: HashMap::new(),
            svc_applied: HashMap::new(),
            kv_applied: HashMap::new(),
            deliveries: 0,
            duplicates: 0,
            ops_served: 0,
            shutdown: false,
        }
    }

    /// Number of objects currently hosted here.
    pub fn hosted(&self) -> usize {
        self.objects.len()
    }

    /// Publications delivered first-time to objects hosted here.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Duplicate deliveries filtered by the per-topic ledger.
    pub fn duplicate_deliveries(&self) -> u64 {
        self.duplicates
    }

    /// KV entries currently stored here on behalf of hosted owners.
    pub fn kv_entries(&self) -> usize {
        self.kv.len()
    }

    /// Replica copies currently mirrored here on behalf of hosted
    /// Voronoi neighbours of entry owners.
    pub fn kv_replica_entries(&self) -> usize {
        self.kv_replicas.len()
    }

    /// Protocol operations served so far.
    pub fn ops_served(&self) -> u64 {
        self.ops_served
    }

    /// This host's transport counters.
    pub fn transport_stats(&self) -> TransportStats {
        self.t.stats()
    }

    /// True once a [`WireMsg::Shutdown`] has been handled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Serves until shutdown: the loop of the `voronet-node` binary and
    /// of in-process cluster threads.
    pub fn run(&mut self) -> Result<(), ClusterError> {
        let mut buf = Vec::new();
        while !self.shutdown {
            if !self.step(&mut buf)? {
                self.t.poll()?;
            }
        }
        Ok(())
    }

    /// Handles at most one pending frame plus flood retransmissions;
    /// returns whether a frame was processed.
    pub fn step(&mut self, buf: &mut Vec<u8>) -> Result<bool, ClusterError> {
        self.tick()?;
        match self.t.recv_into(buf)? {
            Some(_) => {
                self.handle_frame(buf)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Retransmits unanswered flood probes and finishes floods whose
    /// probes exhausted their attempts.
    fn tick(&mut self) -> Result<(), ClusterError> {
        let tokens: Vec<u64> = self.floods.keys().copied().collect();
        for token in tokens {
            let mut resend: Vec<u64> = Vec::new();
            let mut abandon: Vec<u64> = Vec::new();
            if let Some(flood) = self.floods.get_mut(&token) {
                for (&object, probe) in flood.outstanding.iter_mut() {
                    if probe.sent_at.elapsed() > PROBE_RESEND {
                        probe.attempts += 1;
                        probe.sent_at = Instant::now();
                        if probe.attempts > PROBE_MAX_ATTEMPTS {
                            abandon.push(object);
                        } else {
                            resend.push(object);
                        }
                    }
                }
            }
            for object in resend {
                let query = self.floods[&token].query;
                self.send_probe(token, object, query)?;
            }
            if !abandon.is_empty() {
                // Give up on unreachable objects so the flood terminates;
                // the driver's fresh-token retry is the outer safety net.
                if let Some(flood) = self.floods.get_mut(&token) {
                    for object in abandon {
                        flood.outstanding.remove(&object);
                    }
                }
                self.pump_flood(token)?;
            }
        }
        Ok(())
    }

    fn send_probe(
        &mut self,
        token: u64,
        object: u64,
        query: WireQuery,
    ) -> Result<(), ClusterError> {
        let peer = host_of(object, self.hosts);
        let mut frame = Vec::new();
        WireMsg::FloodProbe {
            token,
            object,
            query,
        }
        .encode(self.peer, object, &mut frame)
        .expect("probe is tiny");
        self.t.send(peer, &frame)?;
        Ok(())
    }

    fn handle_frame(&mut self, frame: &[u8]) -> Result<(), ClusterError> {
        let Ok((header, msg)) = WireMsg::decode(frame) else {
            return Ok(()); // malformed payload: drop (headers were checked by the transport)
        };
        match msg {
            WireMsg::Hello => {}
            WireMsg::ViewUpdate {
                object,
                seq,
                coords,
                routing,
                vn,
                cell,
            } => {
                let stale = self
                    .objects
                    .get(&object)
                    .map(|h| h.seq >= seq)
                    .unwrap_or(false);
                if !stale {
                    self.objects.insert(
                        object,
                        Hosted {
                            seq,
                            coords,
                            routing: routing.to_vec(),
                            vn: vn.to_vec(),
                            cell: cell.to_vec(),
                        },
                    );
                }
                self.reply(header.from, WireMsg::ViewAck { object, seq })?;
            }
            WireMsg::Evict { object, seq } => {
                if self
                    .objects
                    .get(&object)
                    .map(|h| h.seq < seq)
                    .unwrap_or(false)
                {
                    self.objects.remove(&object);
                }
                // The departed object's service state leaves with it:
                // subscription, delivery ledger, and the KV entries its
                // cell stored (ids are never reused, so clearing on a
                // duplicate evict is harmless).
                self.subs.remove(&object);
                self.seen.retain(|&(o, _), _| o != object);
                self.kv.retain(|&(o, _), _| o != object);
                self.kv_replicas.retain(|&(o, _), _| o != object);
                self.kv_applied.retain(|&(o, _), _| o != object);
                self.reply(header.from, WireMsg::EvictAck { object, seq })?;
            }
            WireMsg::RouteReq {
                token,
                from_object,
                target,
            } => {
                if self.objects.contains_key(&from_object) {
                    self.ops_served += 1;
                    self.route_step(
                        from_object,
                        target,
                        header.from,
                        0,
                        WirePurpose::Query { token },
                    )?;
                }
            }
            WireMsg::AreaReq {
                token,
                from_object,
                rect,
            } => {
                if self.objects.contains_key(&from_object) {
                    self.ops_served += 1;
                    self.route_step(
                        from_object,
                        rect.center(),
                        header.from,
                        0,
                        WirePurpose::Area { rect, token },
                    )?;
                }
            }
            WireMsg::RadiusReq {
                token,
                from_object,
                center,
                radius,
            } => {
                if self.objects.contains_key(&from_object) {
                    self.ops_served += 1;
                    self.route_step(
                        from_object,
                        center,
                        header.from,
                        0,
                        WirePurpose::Radius {
                            center,
                            radius,
                            token,
                        },
                    )?;
                }
            }
            WireMsg::RouteStep {
                target,
                origin,
                hops,
                purpose,
            } => {
                // The destination object travels in the frame header,
                // exactly as in the simulated runtime's envelopes.
                if self.objects.contains_key(&header.to) {
                    self.ops_served += 1;
                    self.route_step(header.to, target, origin, hops, purpose)?;
                }
            }
            WireMsg::FloodProbe {
                token,
                object,
                query,
            } => {
                self.ops_served += 1;
                let (eligible, is_match, neighbours) = match self.objects.get(&object) {
                    Some(h) => {
                        let (eligible, is_match) = h.evaluate(&query);
                        (eligible, is_match, h.vn.clone())
                    }
                    None => (false, false, Vec::new()),
                };
                let mut scratch = Vec::new();
                let mut frame = Vec::new();
                WireMsg::FloodReply {
                    token,
                    object,
                    eligible,
                    is_match,
                    neighbours: IdList::build(&mut scratch, &neighbours),
                }
                .encode(self.peer, header.from, &mut frame)
                .expect("bounded-degree neighbour list fits a frame");
                self.t.send(header.from, &frame)?;
            }
            WireMsg::FloodReply {
                token,
                object,
                eligible,
                is_match,
                neighbours,
            } => {
                // A reply for an unknown token belongs to an abandoned
                // flood; one whose probe is no longer outstanding is a
                // duplicate from a retransmission.  Both are ignored.
                let incorporated = self.floods.get_mut(&token).is_some_and(|flood| {
                    let fresh = flood.outstanding.remove(&object).is_some();
                    if fresh {
                        incorporate(flood, object, eligible, is_match, &neighbours.to_vec());
                    }
                    fresh
                });
                if incorporated {
                    self.pump_flood(token)?;
                }
            }
            WireMsg::SvcSubscribe {
                object,
                seq,
                region,
            } => {
                if self.fresh_service_push(object, seq) {
                    self.ops_served += 1;
                    self.subs.insert(object, region);
                }
                self.reply(header.from, WireMsg::SvcAck { object, seq })?;
            }
            WireMsg::SvcUnsubscribe { object, seq } => {
                if self.fresh_service_push(object, seq) {
                    self.ops_served += 1;
                    self.subs.remove(&object);
                }
                self.reply(header.from, WireMsg::SvcAck { object, seq })?;
            }
            WireMsg::SvcDeliver {
                object,
                seq,
                topic,
                topic_seq,
                payload: _,
            } => {
                if self.fresh_service_push(object, seq) {
                    self.ops_served += 1;
                    let entry = self.seen.entry((object, topic)).or_insert(0);
                    if topic_seq > *entry {
                        *entry = topic_seq;
                        self.deliveries += 1;
                    } else {
                        self.duplicates += 1;
                    }
                }
                self.reply(header.from, WireMsg::SvcAck { object, seq })?;
            }
            WireMsg::SvcKvStore {
                object,
                seq,
                key,
                value,
            } => {
                if self.fresh_kv_push(object, key, seq) {
                    self.ops_served += 1;
                    self.kv.insert((object, key), value);
                    // An object holds one role per key: owning an entry
                    // supersedes mirroring it.
                    self.kv_replicas.remove(&(object, key));
                }
                self.reply(header.from, WireMsg::SvcAck { object, seq })?;
            }
            WireMsg::SvcKvReplicate {
                object,
                seq,
                key,
                value,
                entry_seq,
            } => {
                if self.fresh_kv_push(object, key, seq) {
                    self.ops_served += 1;
                    self.kv_replicas.insert((object, key), (entry_seq, value));
                    self.kv.remove(&(object, key));
                }
                self.reply(header.from, WireMsg::SvcAck { object, seq })?;
            }
            WireMsg::SvcKvDrop { object, seq, key } => {
                if self.fresh_kv_push(object, key, seq) {
                    self.ops_served += 1;
                    self.kv.remove(&(object, key));
                    self.kv_replicas.remove(&(object, key));
                }
                self.reply(header.from, WireMsg::SvcAck { object, seq })?;
            }
            WireMsg::SvcKvFetch { token, object, key } => {
                self.ops_served += 1;
                let value = self.kv.get(&(object, key)).copied();
                self.reply(header.from, WireMsg::SvcKvValue { token, value })?;
            }
            WireMsg::SvcKvFetchReplica { token, object, key } => {
                self.ops_served += 1;
                let (entry_seq, value) = match self.kv_replicas.get(&(object, key)) {
                    Some(&(entry_seq, value)) => (entry_seq, Some(value)),
                    None => (0, None),
                };
                self.reply(
                    header.from,
                    WireMsg::SvcKvReplicaValue {
                        token,
                        entry_seq,
                        value,
                    },
                )?;
            }
            WireMsg::Ping { reply } => {
                // The driver's liveness probe: echo it so silence means
                // the host (or its link) is down, not that it was busy.
                if !reply {
                    self.reply(header.from, WireMsg::Ping { reply: true })?;
                }
            }
            WireMsg::StatsReq => {
                self.reply(
                    header.from,
                    WireMsg::StatsReply {
                        stats: self.t.stats(),
                        ops_served: self.ops_served,
                    },
                )?;
            }
            WireMsg::Shutdown => self.shutdown = true,
            // Driver-bound or simulated-runtime-only messages: not ours.
            WireMsg::ViewAck { .. }
            | WireMsg::EvictAck { .. }
            | WireMsg::AnswerOwner { .. }
            | WireMsg::AnswerMatches { .. }
            | WireMsg::StatsReply { .. }
            | WireMsg::SvcKvValue { .. }
            | WireMsg::SvcKvReplicaValue { .. }
            | WireMsg::SvcAck { .. }
            | WireMsg::Join { .. }
            | WireMsg::NeighborUpdate
            | WireMsg::Leave
            | WireMsg::Answer { .. } => {}
        }
        Ok(())
    }

    /// The per-object push-sequence filter: true exactly once per push,
    /// false for duplicates from ack-timeout resends.
    fn fresh_service_push(&mut self, object: u64, seq: u64) -> bool {
        let applied = self.svc_applied.entry(object).or_insert(0);
        if seq > *applied {
            *applied = seq;
            true
        } else {
            false
        }
    }

    /// Freshness for the KV plane is per `(object, key)`, not per
    /// object: one rebalance flush may push several *different* keys to
    /// the same object, and under delay faults those frames can arrive
    /// reordered.  A per-object high-water mark would reject the
    /// lower-seq key's push as stale (while still acking it), silently
    /// losing an acked write; per-entry marks only ever reject true
    /// duplicates and superseded pushes for that same key.
    fn fresh_kv_push(&mut self, object: u64, key: u64, seq: u64) -> bool {
        let applied = self.kv_applied.entry((object, key)).or_insert(0);
        if seq > *applied {
            *applied = seq;
            true
        } else {
            false
        }
    }

    fn reply(&mut self, to: PeerId, msg: WireMsg<'_>) -> Result<(), ClusterError> {
        let mut frame = Vec::new();
        msg.encode(self.peer, to, &mut frame)
            .expect("replies fit a frame");
        self.t.send(to, &frame)?;
        Ok(())
    }

    /// The greedy walk over shipped routing tables: hops within this
    /// host advance locally; a hop to an object hosted elsewhere becomes
    /// a [`WireMsg::RouteStep`] frame.  Mirrors
    /// `core::runtime::AsyncOverlay::route_step` decision for decision.
    fn route_step(
        &mut self,
        at: u64,
        target: Point2,
        origin: PeerId,
        hops: u32,
        purpose: WirePurpose,
    ) -> Result<(), ClusterError> {
        let mut cur = at;
        let mut hops = hops;
        loop {
            let Some(state) = self.objects.get(&cur) else {
                return Ok(()); // stale routing entry: the driver will retry
            };
            let cur_d = state.coords.distance2(target);
            let mut best = cur;
            let mut best_d = cur_d;
            for &(nb, coords) in &state.routing {
                if nb == cur {
                    continue;
                }
                let d = coords.distance2(target);
                if d < best_d {
                    best = nb;
                    best_d = d;
                }
            }
            if best == cur {
                return self.arrive(cur, origin, hops, purpose);
            }
            hops += 1;
            if host_of(best, self.hosts) == self.peer {
                cur = best;
                continue;
            }
            let mut frame = Vec::new();
            WireMsg::RouteStep {
                target,
                origin,
                hops,
                purpose,
            }
            .encode(cur, best, &mut frame)
            .expect("route step is tiny");
            self.t.send(host_of(best, self.hosts), &frame)?;
            return Ok(());
        }
    }

    /// The greedy walk arrived: answer a point route, or become the
    /// flood coordinator of an area/radius query.
    fn arrive(
        &mut self,
        owner: u64,
        origin: PeerId,
        hops: u32,
        purpose: WirePurpose,
    ) -> Result<(), ClusterError> {
        match purpose {
            WirePurpose::Query { token } => {
                self.reply(origin, WireMsg::AnswerOwner { token, owner, hops })
            }
            WirePurpose::Area { rect, token } => {
                self.start_flood(token, origin, hops, owner, WireQuery::Rect(rect))
            }
            WirePurpose::Radius {
                center,
                radius,
                token,
            } => self.start_flood(
                token,
                origin,
                hops,
                owner,
                WireQuery::Disk { center, radius },
            ),
            // Distributed joins are driver-side in this cluster.
            WirePurpose::Join { .. } => Ok(()),
        }
    }

    fn start_flood(
        &mut self,
        token: u64,
        origin: PeerId,
        hops: u32,
        owner: u64,
        query: WireQuery,
    ) -> Result<(), ClusterError> {
        let mut visited = BTreeSet::new();
        visited.insert(owner);
        self.floods.insert(
            token,
            Flood {
                origin,
                hops,
                query,
                visited,
                matches: Vec::new(),
                frontier: vec![owner],
                outstanding: HashMap::new(),
            },
        );
        self.pump_flood(token)
    }

    /// Drains the flood frontier: locally hosted objects are evaluated
    /// in place, remote ones get a probe.  When frontier and outstanding
    /// probes are both empty the flood is done and the answer goes back
    /// to the driver.
    fn pump_flood(&mut self, token: u64) -> Result<(), ClusterError> {
        loop {
            let Some(flood) = self.floods.get_mut(&token) else {
                return Ok(());
            };
            let Some(object) = flood.frontier.pop() else {
                break;
            };
            match self.objects.get(&object) {
                Some(h) => {
                    let (eligible, is_match) = h.evaluate(&flood.query);
                    let neighbours = h.vn.clone();
                    incorporate(flood, object, eligible, is_match, &neighbours);
                }
                None => {
                    let query = flood.query;
                    flood.outstanding.insert(
                        object,
                        ProbeState {
                            sent_at: Instant::now(),
                            attempts: 0,
                        },
                    );
                    self.send_probe(token, object, query)?;
                }
            }
        }
        let done = self
            .floods
            .get(&token)
            .map(|f| f.outstanding.is_empty())
            .unwrap_or(false);
        if done {
            let mut flood = self.floods.remove(&token).expect("checked above");
            flood.matches.sort_unstable();
            let mut scratch = Vec::new();
            let mut frame = Vec::new();
            WireMsg::AnswerMatches {
                token,
                hops: flood.hops,
                visited: flood.visited.len() as u32,
                matches: IdList::build(&mut scratch, &flood.matches),
            }
            .encode(self.peer, flood.origin, &mut frame)
            .expect("match sets of local floods fit a frame");
            self.t.send(flood.origin, &frame)?;
        }
        Ok(())
    }
}

/// Records one evaluated flood object, expanding through it when its
/// cell touches the queried area — the exact visit rule of
/// `core::queries::area_query_in`.
fn incorporate(flood: &mut Flood, object: u64, eligible: bool, is_match: bool, neighbours: &[u64]) {
    if is_match {
        flood.matches.push(object);
    }
    if !eligible {
        return;
    }
    for &n in neighbours {
        if flood.visited.insert(n) {
            flood.frontier.push(n);
        }
    }
}

// ---------------------------------------------------------------------
// In-process cluster over vnet
// ---------------------------------------------------------------------

/// A whole cluster in one process: the driver on the calling thread and
/// every host on its own thread, all over one [`crate::vnet::VnetHub`].
/// The in-process twin of the multi-process `voronet-node` deployment —
/// used by its `demo` subcommand and the conformance tests.
pub struct LocalCluster {
    driver: Driver<crate::vnet::VnetTransport>,
    handles: Vec<std::thread::JoinHandle<HostReport>>,
}

impl LocalCluster {
    /// Starts `hosts` host threads on a hub with the given network model
    /// (use [`voronet_sim::NetworkModel::ideal`] for a lossless cluster;
    /// the ack/retry machinery tolerates lossy models at the cost of
    /// wall-clock time).
    pub fn start(hosts: u64, config: VoroNetConfig, network: voronet_sim::NetworkModel) -> Self {
        let hub = crate::vnet::VnetHub::new(network);
        let driver = Driver::new(hub.endpoint(DRIVER_PEER), hosts, config);
        let mut handles = Vec::new();
        for peer in 1..=hosts {
            let endpoint = hub.endpoint(peer);
            handles.push(std::thread::spawn(move || {
                let mut node = HostNode::new(endpoint, peer, hosts);
                node.run().expect("vnet transport cannot fail");
                HostReport {
                    peer,
                    stats: node.transport_stats(),
                    ops_served: node.ops_served(),
                }
            }));
        }
        LocalCluster { driver, handles }
    }

    /// The cluster's driver.
    pub fn driver(&mut self) -> &mut Driver<crate::vnet::VnetTransport> {
        &mut self.driver
    }

    /// Shuts the hosts down and returns their final reports.
    pub fn shutdown(mut self) -> Result<Vec<HostReport>, ClusterError> {
        self.driver.shutdown_hosts()?;
        let mut reports = Vec::new();
        for handle in self.handles {
            reports.push(handle.join().expect("host thread panicked"));
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use voronet_core::queries;
    use voronet_geom::Rect;
    use voronet_sim::NetworkModel;
    use voronet_workloads::{Distribution, PointGenerator};

    fn oracle_with_inserts(seed: u64, points: &[Point2]) -> VoroNet {
        let mut net = VoroNet::new(VoroNetConfig::new(512).with_seed(seed));
        for &p in points {
            let _ = net.insert(p);
        }
        net
    }

    #[test]
    fn distributed_routes_match_the_single_process_oracle() {
        let points = PointGenerator::new(Distribution::Uniform, 11).take_points(60);
        let mut cluster = LocalCluster::start(
            3,
            VoroNetConfig::new(512).with_seed(4),
            NetworkModel::ideal(),
        );
        for &p in &points {
            cluster.driver().insert(p).unwrap();
        }
        let mut oracle = oracle_with_inserts(4, &points);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let n = oracle.len();
            let from = rng.random_range(0..n);
            let to = rng.random_range(0..n);
            let outcome = cluster.driver().route_indices(from, to).unwrap();
            let a = oracle.id_at(from).unwrap();
            let b = oracle.id_at(to).unwrap();
            let expected = oracle.route_between(a, b).unwrap();
            assert_eq!(
                outcome,
                OpOutcome::Route {
                    owner: expected.owner.0,
                    hops: expected.hops
                },
                "route {from}->{to}"
            );
        }
        cluster.shutdown().unwrap();
    }

    #[test]
    fn distributed_queries_match_the_single_process_oracle() {
        let points = PointGenerator::new(Distribution::Uniform, 13).take_points(80);
        let mut cluster = LocalCluster::start(
            4,
            VoroNetConfig::new(512).with_seed(6),
            NetworkModel::ideal(),
        );
        for &p in &points {
            cluster.driver().insert(p).unwrap();
        }
        let mut oracle = oracle_with_inserts(6, &points);
        let rects = [
            Rect::new(Point2::new(0.2, 0.3), Point2::new(0.5, 0.6)),
            Rect::new(Point2::new(0.0, 0.0), Point2::new(0.15, 0.15)),
            Rect::new(Point2::new(0.4, 0.4), Point2::new(0.42, 0.42)),
        ];
        for (i, &rect) in rects.iter().enumerate() {
            let outcome = cluster
                .driver()
                .range_query(i * 7, RangeQuery { rect })
                .unwrap();
            let from = oracle.id_at(i * 7 % oracle.len()).unwrap();
            let expected = queries::range_query(&mut oracle, from, RangeQuery { rect }).unwrap();
            assert_eq!(
                outcome,
                OpOutcome::Matches {
                    matches: expected.matches.iter().map(|m| m.0).collect(),
                    hops: expected.routing_hops,
                    visited: expected.visited as u32,
                },
                "rect {rect:?}"
            );
        }
        for i in 0..3 {
            let query = RadiusQuery {
                center: Point2::new(0.3 + 0.2 * i as f64, 0.5),
                radius: 0.12,
            };
            let outcome = cluster.driver().radius_query(i * 5, query).unwrap();
            let from = oracle.id_at(i * 5 % oracle.len()).unwrap();
            let expected = queries::radius_query(&mut oracle, from, query).unwrap();
            assert_eq!(
                outcome,
                OpOutcome::Matches {
                    matches: expected.matches.iter().map(|m| m.0).collect(),
                    hops: expected.routing_hops,
                    visited: expected.visited as u32,
                },
                "disk {query:?}"
            );
        }
        cluster.shutdown().unwrap();
    }

    #[test]
    fn churn_keeps_the_cluster_in_lockstep_with_the_oracle() {
        let mut cluster = LocalCluster::start(
            3,
            VoroNetConfig::new(512).with_seed(8),
            NetworkModel::ideal(),
        );
        let mut oracle = VoroNet::new(VoroNetConfig::new(512).with_seed(8));
        let mut pg = PointGenerator::new(Distribution::Uniform, 17);
        for _ in 0..30 {
            let p = pg.next_point();
            cluster.driver().insert(p).unwrap();
            let _ = oracle.insert(p);
        }
        let mut rng = StdRng::seed_from_u64(21);
        for round in 0..25 {
            match rng.random_range(0..3u32) {
                0 => {
                    let p = pg.next_point();
                    let got = cluster.driver().insert(p).unwrap();
                    let expected = oracle.insert(p).ok().map(|r| r.id.0);
                    assert_eq!(got, expected, "round {round} insert");
                }
                1 if oracle.len() > 8 => {
                    let idx = rng.random_range(0..oracle.len());
                    let got = cluster.driver().remove_index(idx).unwrap();
                    let id = oracle.id_at(idx).unwrap();
                    let expected = oracle.remove(id).ok().map(|_| id.0);
                    assert_eq!(got, expected, "round {round} remove");
                }
                _ => {
                    let n = oracle.len();
                    let from = rng.random_range(0..n);
                    let to = rng.random_range(0..n);
                    let outcome = cluster.driver().route_indices(from, to).unwrap();
                    let a = oracle.id_at(from).unwrap();
                    let b = oracle.id_at(to).unwrap();
                    let expected = oracle.route_between(a, b).unwrap();
                    assert_eq!(
                        outcome,
                        OpOutcome::Route {
                            owner: expected.owner.0,
                            hops: expected.hops
                        },
                        "round {round} route"
                    );
                }
            }
        }
        let reports = cluster.shutdown().unwrap();
        assert!(reports.iter().any(|r| r.ops_served > 0));
    }

    #[test]
    fn service_plane_pubsub_and_kv_handoff() {
        let mut cluster = LocalCluster::start(
            3,
            VoroNetConfig::new(512).with_seed(5),
            NetworkModel::ideal(),
        );
        let points = PointGenerator::new(Distribution::Uniform, 23).take_points(40);
        for &p in &points {
            cluster.driver().insert(p).unwrap();
        }
        let driver = cluster.driver();
        let n = driver.population();

        // Everyone subscribes to the full domain, so a publication's
        // delivered set must equal the distributed flood's match set and
        // everyone else is missed.
        let domain = Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        for i in 0..n {
            let outcome = driver.subscribe(i, domain).unwrap();
            assert!(matches!(
                outcome,
                OpOutcome::Subscribed {
                    replaced: false,
                    ..
                }
            ));
        }
        let region = Rect::new(Point2::new(0.2, 0.2), Point2::new(0.7, 0.7));
        let OpOutcome::Published {
            topic_seq,
            delivered,
            missed,
            ..
        } = driver.publish(0, region, 99).unwrap()
        else {
            panic!("publish on a populated overlay must resolve")
        };
        assert_eq!(topic_seq, 1);
        let mut oracle = oracle_with_inserts(5, &points);
        let from = oracle.id_at(0).unwrap();
        let expected =
            queries::range_query(&mut oracle, from, RangeQuery { rect: region }).unwrap();
        let expected_ids: Vec<u64> = expected.matches.iter().map(|m| m.0).collect();
        assert_eq!(delivered, expected_ids);
        let missed_expected: Vec<u64> = oracle
            .ids()
            .map(|id| id.0)
            .filter(|id| !expected_ids.contains(id))
            .collect();
        let mut missed_sorted = missed;
        missed_sorted.sort_unstable();
        let mut missed_expected = missed_expected;
        missed_expected.sort_unstable();
        assert_eq!(missed_sorted, missed_expected);
        // Same topic again: the per-topic sequence climbs.
        let OpOutcome::Published { topic_seq, .. } = driver.publish(1, region, 100).unwrap() else {
            panic!("publish must resolve")
        };
        assert_eq!(topic_seq, 2);

        // KV round-trip through the hosts.
        let key = 0xC0FFEEu64;
        let OpOutcome::KvStored {
            owner,
            replaced: false,
            ..
        } = driver.kv_put(3, key, 41).unwrap()
        else {
            panic!("kv_put must store")
        };
        let OpOutcome::KvFetched {
            value,
            owner: fetched_owner,
            ..
        } = driver.kv_get(7, key).unwrap()
        else {
            panic!("kv_get must resolve")
        };
        assert_eq!(value, Some(41));
        assert_eq!(fetched_owner, owner);
        let OpOutcome::KvStored { replaced: true, .. } = driver.kv_put(4, key, 42).unwrap() else {
            panic!("second put must replace")
        };

        // Churn-driven handoff: a new node lands exactly on the key's
        // coordinates, takes over the owning cell, and the stored entry
        // must follow it to the new owner's host.
        let kp = key_point(key, driver.net().config().domain);
        let new_id = driver.insert(kp).unwrap().expect("fresh position");
        let OpOutcome::KvFetched { value, owner, .. } = driver.kv_get(9, key).unwrap() else {
            panic!("kv_get must resolve")
        };
        assert_eq!(owner, new_id, "the on-key node must own the entry");
        assert_eq!(value, Some(42), "the value must survive the handoff");

        // Removing the new owner hands the entry back to a survivor.
        let n = driver.population();
        let idx = (0..n)
            .position(|i| driver.net().id_at(i) == Some(voronet_core::ObjectId(new_id)))
            .expect("new node is live");
        assert_eq!(driver.remove_index(idx).unwrap(), Some(new_id));
        let OpOutcome::KvFetched { value, owner, .. } = driver.kv_get(2, key).unwrap() else {
            panic!("kv_get must resolve")
        };
        assert_ne!(owner, new_id);
        assert_eq!(value, Some(42), "the value must survive the second handoff");

        // Delete, then the key is gone.
        let OpOutcome::KvDropped { existed: true, .. } = driver.kv_delete(5, key).unwrap() else {
            panic!("delete must drop the entry")
        };
        let OpOutcome::KvFetched { value: None, .. } = driver.kv_get(6, key).unwrap() else {
            panic!("deleted key must read back as absent")
        };

        // Unsubscribe round-trips too.
        let OpOutcome::Unsubscribed { existed: true, .. } = driver.unsubscribe(0).unwrap() else {
            panic!("subscribed object must unsubscribe")
        };
        let reports = cluster.shutdown().unwrap();
        assert!(reports.iter().any(|r| r.ops_served > 0));
    }

    #[test]
    fn host_mapping_covers_every_host() {
        let peers: BTreeSet<PeerId> = (0..100).map(|id| host_of(id, 7)).collect();
        assert_eq!(peers, (1..=7).collect());
        assert_eq!(host_of(5, 0), 1); // degenerate guard: max(1)
    }

    #[test]
    fn crashed_owner_degrades_reads_and_failfasts_ops() {
        use crate::fault::{FaultyCluster, LinkFaults};

        let mut cluster = FaultyCluster::start(
            3,
            VoroNetConfig::new(512).with_seed(12),
            LinkFaults::default(),
            77,
        );
        cluster.driver().set_retry_policy(RetryPolicy::tight());
        cluster.driver().set_liveness(Liveness::tight());
        let points = PointGenerator::new(Distribution::Uniform, 29).take_points(36);
        for &p in &points {
            cluster.driver().insert(p).unwrap();
        }

        let key = 0xFEEDu64;
        let OpOutcome::KvStored {
            owner, replicas, ..
        } = cluster.driver().kv_put(1, key, 91).unwrap()
        else {
            panic!("kv_put must store")
        };
        assert!(
            replicas >= 2,
            "a dense overlay must mirror to >= 2 replicas, got {replicas}"
        );
        let OpOutcome::KvFetched {
            value, degraded, ..
        } = cluster.driver().kv_get(2, key).unwrap()
        else {
            panic!("healthy get must resolve")
        };
        assert_eq!(value, Some(91));
        assert!(!degraded);

        let owner_host = host_of(owner, 3);
        cluster.ctl().crash(owner_host);
        let deadline = Instant::now() + Duration::from_secs(10);
        while cluster.driver().host_state(owner_host) != HostState::Dead {
            assert!(
                Instant::now() < deadline,
                "failure detector never declared the crashed host dead"
            );
            cluster.driver().heartbeat().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }

        // A query origin whose object lives on a surviving host.
        let from = (0..cluster.driver().population())
            .find(|&i| {
                let id = cluster.driver().net().id_at(i).unwrap().0;
                host_of(id, 3) != owner_host
            })
            .expect("a surviving object exists");
        let OpOutcome::KvFetched {
            value,
            owner: got_owner,
            degraded,
            ..
        } = cluster.driver().kv_get(from, key).unwrap()
        else {
            panic!("degraded get must resolve")
        };
        assert!(
            degraded,
            "a read served while the owner is dead must be flagged degraded"
        );
        assert_eq!(value, Some(91), "the acked write must survive the crash");
        assert_eq!(got_owner, owner);

        // An op that must be served by the dead host fails fast instead of
        // burning the whole retry budget.
        let dead_idx = (0..cluster.driver().population())
            .find(|&i| {
                let id = cluster.driver().net().id_at(i).unwrap().0;
                host_of(id, 3) == owner_host
            })
            .expect("the dead host serves at least one object");
        let t0 = Instant::now();
        let err = cluster.driver().route_indices(dead_idx, from).unwrap_err();
        assert!(matches!(err, ClusterError::Unavailable(_)), "got {err}");
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "fail-fast took {:?}",
            t0.elapsed()
        );

        let stats = cluster.driver().cluster_stats();
        assert!(stats.degraded_reads >= 1);
        assert!(stats.deaths >= 1);
        assert!(stats.fail_fast >= 1);
        assert!(stats
            .hosts
            .iter()
            .any(|&(p, s)| p == owner_host && s == HostState::Dead));

        // Restart: the detector notices the revival, the driver regenerates
        // the host's state, and the healthy read path resumes.
        cluster.ctl().restart(owner_host);
        let deadline = Instant::now() + Duration::from_secs(10);
        while cluster.driver().host_state(owner_host) != HostState::Alive {
            assert!(
                Instant::now() < deadline,
                "the revived host never came back alive"
            );
            cluster.driver().heartbeat().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let OpOutcome::KvFetched {
            value, degraded, ..
        } = cluster.driver().kv_get(3, key).unwrap()
        else {
            panic!("post-revival get must resolve")
        };
        assert_eq!(value, Some(91));
        assert!(!degraded, "the healthy path must resume after revival");
        assert!(cluster.driver().cluster_stats().revivals >= 1);
        cluster.shutdown().unwrap();
    }

    /// Regression: under 10% frame loss the driver used to send each
    /// request once and then passively wait out the full jittered
    /// attempt timeout (~105ms under the tight policy), so the kv_get
    /// p50 jumped from ~16µs healthy to ~107ms lossy.  Fast retransmit
    /// inside the wait keeps lossy medians in the low-millisecond range.
    #[test]
    fn lossy_kv_gets_stay_fast_thanks_to_fast_retransmit() {
        use crate::fault::{FaultyCluster, LinkFaults};

        let mut cluster = FaultyCluster::start(
            3,
            VoroNetConfig::new(512).with_seed(31),
            LinkFaults::lossy(0.10),
            4242,
        );
        cluster.driver().set_retry_policy(RetryPolicy::tight());
        cluster.driver().set_liveness(Liveness::tight());
        let points = PointGenerator::new(Distribution::Uniform, 37).take_points(36);
        for &p in &points {
            cluster.driver().insert(p).unwrap();
        }
        for key in 0..8u64 {
            cluster.driver().kv_put(key as usize, key, key * 7).unwrap();
        }

        let mut lat = Vec::new();
        for i in 0..30usize {
            let key = (i % 8) as u64;
            let t0 = Instant::now();
            let got = cluster.driver().kv_get(i, key).unwrap();
            lat.push(t0.elapsed());
            assert!(
                matches!(got, OpOutcome::KvFetched { value: Some(v), .. } if v == key * 7),
                "lossy kv_get {i} returned {got:?}"
            );
        }
        lat.sort();
        let p50 = lat[lat.len() / 2];
        assert!(
            p50 < Duration::from_millis(20),
            "lossy kv_get p50 {p50:?} — fast retransmit regressed \
             (pre-fix medians sat at ~107ms)"
        );
        assert!(
            cluster.driver().cluster_stats().fast_resends > 0,
            "the lossy run must have exercised the fast-retransmit path"
        );
        cluster.shutdown().unwrap();
    }

    /// Regression: one stalled operation must not head-of-line-block the
    /// rest of a batch.  A route whose origin host just crashed (failure
    /// detector not yet converged) burns its retry ladder; pipelined
    /// routes issued behind it must still complete at healthy latency.
    #[test]
    fn pipelined_routes_survive_one_stalled_operation() {
        use crate::fault::{FaultyCluster, LinkFaults};
        use voronet_core::RouteScratch;

        let mut cluster = FaultyCluster::start(
            3,
            VoroNetConfig::new(512).with_seed(19),
            LinkFaults::default(),
            55,
        );
        cluster.driver().set_retry_policy(RetryPolicy::tight());
        cluster.driver().set_liveness(Liveness::tight());
        let points = PointGenerator::new(Distribution::Uniform, 41).take_points(48);
        for &p in &points {
            cluster.driver().insert(p).unwrap();
        }

        let crashed: PeerId = 2;
        // An origin object hosted on the to-be-crashed host: its route
        // request will go unanswered until the detector converges.
        let stalled_from = (0..cluster.driver().population())
            .find(|&i| {
                let id = cluster.driver().net().id_at(i).unwrap().0;
                host_of(id, 3) == crashed
            })
            .expect("host 2 serves at least one object");
        // Healthy pairs whose entire greedy path (origin, every hop,
        // owner) avoids the crashed host, so only the stalled op waits.
        let mut scratch = RouteScratch::default();
        let mut healthy: Vec<(usize, usize)> = Vec::new();
        'outer: for from in 0..cluster.driver().population() {
            for to in 0..cluster.driver().population() {
                if from == to || healthy.len() >= 6 {
                    if healthy.len() >= 6 {
                        break 'outer;
                    }
                    continue;
                }
                let net = cluster.driver().net();
                let a = net.id_at(from).unwrap();
                let b = net.id_at(to).unwrap();
                if net.route_between_in(a, b, &mut scratch).is_err() {
                    continue;
                }
                let avoids = scratch.path.iter().all(|id| host_of(id.0, 3) != crashed)
                    && host_of(a.0, 3) != crashed
                    && host_of(b.0, 3) != crashed;
                if avoids {
                    healthy.push((from, to));
                }
            }
        }
        assert!(
            healthy.len() >= 4,
            "need a few crash-avoiding routes, got {}",
            healthy.len()
        );

        cluster.ctl().crash(crashed);
        // No heartbeat loop here: the driver still believes the host is
        // alive, so the stalled op burns real retry time in the batch.
        let mut pairs = vec![(stalled_from, healthy[0].1)];
        pairs.extend(healthy.iter().copied());
        let t0 = Instant::now();
        let results = cluster
            .driver()
            .route_indices_pipelined(&pairs, pairs.len())
            .unwrap();
        let batch_elapsed = t0.elapsed();

        assert!(
            results[0].owner_hops.is_none(),
            "the route from the crashed host must not answer"
        );
        for (i, r) in results.iter().enumerate().skip(1) {
            assert!(
                r.owner_hops.is_some(),
                "healthy pipelined route {i} failed: {r:?}"
            );
            assert!(
                r.latency < Duration::from_millis(150),
                "healthy route {i} took {:?} — head-of-line blocked by the \
                 stalled op (serial issue would park it behind ~seconds of \
                 retry ladder)",
                r.latency
            );
        }
        // The whole batch is bounded by the one stalled op, not by
        // stalled-time × batch-size as the serial loop would be.
        assert!(
            batch_elapsed < RetryPolicy::tight().budget + Duration::from_secs(2),
            "batch took {batch_elapsed:?}"
        );
        cluster.shutdown().unwrap();
    }
}
