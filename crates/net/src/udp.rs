//! UDP transport: one frame per datagram over a non-blocking std socket.
//!
//! The frame budget ([`MAX_FRAME_LEN`]) is the classical loopback
//! datagram limit, so every wire frame fits in exactly one datagram and
//! reassembly is unnecessary.  Incoming datagrams are identified by the
//! `from` field of their frame header (peers are registered, so source
//! addresses need no reverse lookup); datagrams whose header fails to
//! decode are dropped and counted.  A send that the kernel refuses with
//! `WouldBlock` (full socket buffer) is counted as loss — the protocols
//! above retry with fresh tokens, exactly as they would after real loss.

use crate::frame::{FrameHeader, MAX_FRAME_LEN};
use crate::transport::{PeerId, Transport, TransportError};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;
use voronet_sim::TransportStats;

/// A [`Transport`] over one non-blocking UDP socket.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    peer: PeerId,
    peers: HashMap<PeerId, SocketAddr>,
    stats: TransportStats,
    scratch: Box<[u8; MAX_FRAME_LEN]>,
}

impl UdpTransport {
    /// Binds `addr` (e.g. `"127.0.0.1:7100"`) as peer `peer`.
    pub fn bind(peer: PeerId, addr: &str) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(addr).map_err(|e| match e.kind() {
            ErrorKind::InvalidInput => TransportError::BadAddress(addr.to_string()),
            _ => TransportError::Io(e),
        })?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            socket,
            peer,
            peers: HashMap::new(),
            stats: TransportStats::new(),
            scratch: Box::new([0u8; MAX_FRAME_LEN]),
        })
    }

    /// The local socket address (useful when bound to port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.socket.local_addr()?)
    }
}

impl Transport for UdpTransport {
    fn local_peer(&self) -> PeerId {
        self.peer
    }

    fn register(&mut self, peer: PeerId, addr: &str) -> Result<(), TransportError> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|_| TransportError::BadAddress(addr.to_string()))?;
        self.peers.insert(peer, addr);
        Ok(())
    }

    fn send(&mut self, to: PeerId, frame: &[u8]) -> Result<(), TransportError> {
        if frame.len() > MAX_FRAME_LEN {
            self.stats.oversized += 1;
            return Err(TransportError::Oversized { len: frame.len() });
        }
        let addr = *self.peers.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        self.stats.frames_sent += 1;
        match self.socket.send_to(frame, addr) {
            Ok(_) => Ok(()),
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::ConnectionRefused =>
            {
                // Full socket buffer, or a queued ICMP port-unreachable
                // from a peer that was not up yet (Linux surfaces those on
                // later calls even for unconnected sockets): the datagram
                // is gone, like loss.  The protocols above retry.
                self.stats.dropped_loss += 1;
                Ok(())
            }
            Err(e) => Err(TransportError::Io(e)),
        }
    }

    fn poll(&mut self) -> Result<(), TransportError> {
        // Datagrams queue in the kernel; nothing to pump.  Sleep briefly
        // so idle serve loops do not spin a core.
        std::thread::sleep(Duration::from_micros(200));
        Ok(())
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> Result<Option<PeerId>, TransportError> {
        loop {
            match self.socket.recv_from(&mut self.scratch[..]) {
                Ok((n, _)) => match FrameHeader::decode(&self.scratch[..n]) {
                    Ok(header) => {
                        self.stats.frames_delivered += 1;
                        buf.clear();
                        buf.extend_from_slice(&self.scratch[..n]);
                        return Ok(Some(header.from));
                    }
                    Err(_) => {
                        // Not one of ours; count and keep draining.
                        self.stats.decode_errors += 1;
                    }
                },
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                // A queued ICMP error for an earlier send: already counted
                // (or about to be) as loss on the send side; keep draining.
                Err(e) if e.kind() == ErrorKind::ConnectionRefused => continue,
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireMsg;

    fn pair() -> (UdpTransport, UdpTransport) {
        let mut a = UdpTransport::bind(1, "127.0.0.1:0").unwrap();
        let mut b = UdpTransport::bind(2, "127.0.0.1:0").unwrap();
        let addr_a = a.local_addr().unwrap().to_string();
        let addr_b = b.local_addr().unwrap().to_string();
        a.register(2, &addr_b).unwrap();
        b.register(1, &addr_a).unwrap();
        (a, b)
    }

    fn recv_one(t: &mut UdpTransport) -> (PeerId, Vec<u8>) {
        let mut buf = Vec::new();
        for _ in 0..10_000 {
            if let Some(from) = t.recv_into(&mut buf).unwrap() {
                return (from, buf);
            }
            t.poll().unwrap();
        }
        panic!("no datagram arrived on loopback");
    }

    #[test]
    fn frames_cross_the_loopback() {
        let (mut a, mut b) = pair();
        let mut frame = Vec::new();
        WireMsg::Ping { reply: false }
            .encode(1, 2, &mut frame)
            .unwrap();
        a.send(2, &frame).unwrap();
        let (from, got) = recv_one(&mut b);
        assert_eq!(from, 1);
        assert_eq!(got, frame);
        let (_, msg) = WireMsg::decode(&got).unwrap();
        assert_eq!(msg, WireMsg::Ping { reply: false });
        assert_eq!(a.stats().frames_sent, 1);
        assert_eq!(b.stats().frames_delivered, 1);
    }

    #[test]
    fn garbage_datagrams_count_as_decode_errors() {
        let (mut a, mut b) = pair();
        // Raw socket bytes that are not a frame.
        let addr_b = b.local_addr().unwrap();
        a.socket.send_to(b"definitely not a frame", addr_b).unwrap();
        let mut frame = Vec::new();
        WireMsg::Shutdown.encode(1, 2, &mut frame).unwrap();
        a.send(2, &frame).unwrap();
        let (from, _) = recv_one(&mut b);
        assert_eq!(from, 1);
        assert_eq!(b.stats().decode_errors, 1);
    }

    #[test]
    fn unknown_peer_and_oversized_are_errors() {
        let (mut a, _b) = pair();
        assert!(matches!(
            a.send(42, &[0u8; 4]),
            Err(TransportError::UnknownPeer(42))
        ));
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            a.send(2, &big),
            Err(TransportError::Oversized { .. })
        ));
        assert_eq!(a.stats().oversized, 1);
    }
}
