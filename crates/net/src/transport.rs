//! The pluggable transport contract: byte frames between addressed peers.
//!
//! A [`Transport`] moves opaque frames (produced by [`crate::wire`])
//! between [`PeerId`]s.  The contract is deliberately minimal so one
//! driver loop runs unchanged over the deterministic in-memory simulator
//! ([`crate::vnet`]), loopback/LAN UDP ([`crate::udp`]) and TCP with
//! reconnect ([`crate::tcp`]):
//!
//! * **Datagram semantics** — one `send` is one frame; `recv_into` yields
//!   whole frames (TCP reassembles internally).  Frames may be lost,
//!   duplicated (retries) or reordered; protocols above use acks, fresh
//!   tokens and idempotent handlers.
//! * **Addressing** — peers are dense `u64` ids; [`Transport::register`]
//!   binds an id to a transport-specific address string before any send.
//! * **Non-blocking** — `recv_into` never blocks; [`Transport::poll`]
//!   makes background progress (pump sockets, advance the vnet clock) and
//!   may yield the CPU briefly when idle.
//! * **Accounting** — every drop, dead letter, decode failure and
//!   reconnect is counted in [`TransportStats`], so lossy-path tests
//!   assert on counters instead of silence.

use std::fmt;
use voronet_sim::TransportStats;

/// Identifier of a transport peer (a process hosting overlay objects; the
/// driver is conventionally peer 0).
pub type PeerId = u64;

/// Why a transport operation failed.  Losing a frame in flight is *not*
/// an error (it is counted); errors are misuse or unrecoverable socket
/// state.
#[derive(Debug)]
pub enum TransportError {
    /// The destination peer was never [`Transport::register`]ed.
    UnknownPeer(PeerId),
    /// The frame exceeds the transport's frame budget
    /// ([`crate::frame::MAX_FRAME_LEN`]).
    Oversized {
        /// Length of the rejected frame.
        len: usize,
    },
    /// The peer address string did not parse.
    BadAddress(String),
    /// An unrecoverable socket error.
    Io(std::io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            TransportError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the transport budget")
            }
            TransportError::BadAddress(a) => write!(f, "unparseable peer address {a:?}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Byte-frame transport between addressed peers; see the module docs for
/// the contract.
pub trait Transport {
    /// This endpoint's own peer id.
    fn local_peer(&self) -> PeerId;

    /// Binds `peer` to a transport-specific address (`"host:port"` for
    /// the socket transports; ignored by vnet, where hub membership is
    /// the address book).  Must be called before sending to `peer`.
    fn register(&mut self, peer: PeerId, addr: &str) -> Result<(), TransportError>;

    /// Submits one frame to `to`.  Delivery is best-effort: a frame lost
    /// to simulated loss, a full socket buffer or a dead connection is
    /// *counted* (see [`Transport::stats`]) and the call still returns
    /// `Ok`.  Errors are reserved for misuse (unknown peer, oversized
    /// frame) and unrecoverable socket state.
    fn send(&mut self, to: PeerId, frame: &[u8]) -> Result<(), TransportError>;

    /// Makes background progress: pumps sockets, accepts connections,
    /// advances the vnet clock.  May yield the CPU briefly when there is
    /// nothing to do; never blocks indefinitely.
    fn poll(&mut self) -> Result<(), TransportError>;

    /// Moves the next received frame into `buf` (cleared first) and
    /// returns the sending peer, or `None` when nothing is pending.
    /// Never blocks.
    fn recv_into(&mut self, buf: &mut Vec<u8>) -> Result<Option<PeerId>, TransportError>;

    /// This endpoint's transport-level counters.
    fn stats(&self) -> TransportStats;
}
