//! The codec round-trip hook for the simulated path.
//!
//! [`CodecTap`] plugs into [`voronet_core::AsyncOverlay::set_wire_tap`]:
//! every [`ProtocolMsg`] the asynchronous runtime sends is encoded into a
//! real wire frame and decoded back before entering the simulated
//! network.  The decoded message is returned in place of the original,
//! so the run exercises the exact bytes a deployed node would put on a
//! socket — while delivery decisions, timing and accounting stay
//! bit-identical, pinned by `tests/api_conformance.rs`.

use crate::wire::WireMsg;
use voronet_core::{ProtocolMsg, WireTap};
use voronet_sim::{MessageKind, NodeId};

/// A [`WireTap`] that round-trips every protocol message through the
/// frame codec, counting the frames and bytes it has carried.
#[derive(Debug, Clone, Default)]
pub struct CodecTap {
    buf: Vec<u8>,
    frames: u64,
    bytes: u64,
}

impl CodecTap {
    /// Creates a fresh tap.
    pub fn new() -> Self {
        CodecTap::default()
    }

    /// Messages round-tripped so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total encoded frame bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl WireTap for CodecTap {
    fn roundtrip(
        &mut self,
        from: NodeId,
        to: NodeId,
        _kind: MessageKind,
        msg: ProtocolMsg,
    ) -> ProtocolMsg {
        let wire: WireMsg<'static> = msg.into();
        wire.encode(from, to, &mut self.buf)
            .expect("protocol messages are far below the frame budget");
        self.frames += 1;
        self.bytes += self.buf.len() as u64;
        let (header, decoded) = WireMsg::decode(&self.buf).expect("own encoding decodes");
        debug_assert_eq!((header.from, header.to), (from, to));
        decoded
            .to_protocol()
            .expect("protocol-mirror variants map back")
    }

    fn clone_box(&self) -> Box<dyn WireTap> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voronet_core::RoutePurpose;
    use voronet_geom::Point2;

    #[test]
    fn tap_is_transparent() {
        let mut tap = CodecTap::new();
        let msgs = [
            ProtocolMsg::Join {
                position: Point2::new(0.25, 0.75),
                token: 9,
            },
            ProtocolMsg::RouteStep {
                target: Point2::new(0.1, 0.9),
                origin: 5,
                hops: 3,
                purpose: RoutePurpose::Query { token: 2 },
            },
            ProtocolMsg::NeighborUpdate,
            ProtocolMsg::Leave,
            ProtocolMsg::Ping { reply: true },
            ProtocolMsg::Answer { hops: 7, token: 4 },
        ];
        for msg in msgs {
            assert_eq!(tap.roundtrip(1, 2, MessageKind::Other, msg), msg);
        }
        assert_eq!(tap.frames(), 6);
        assert!(tap.bytes() > 0);
    }
}
