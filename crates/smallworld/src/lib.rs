//! # voronet-smallworld
//!
//! The Kleinberg grid small-world model (Kleinberg, *The small-world
//! phenomenon: an algorithmic perspective*, STOC 2000): the baseline that
//! VoroNet generalises from a regular `n × n` grid to arbitrary object
//! distributions via Voronoi tessellations.
//!
//! Each vertex of an `n × n` lattice is connected to its (up to) four grid
//! neighbours and to `k` long-range contacts drawn with probability
//! proportional to `d^-s`, where `d` is the lattice (Manhattan) distance.
//! Greedy routing forwards to the neighbour closest to the target.  For
//! `s = 2` the expected greedy route length is `O(log² n)` — the same bound
//! the paper proves for VoroNet on arbitrary distributions.
//!
//! The crate is used by the ablation benches to compare VoroNet's routing
//! against the model it generalises, and by tests that reproduce
//! Kleinberg's `s = 2` optimum.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use voronet_stats::OnlineStats;

/// Position on the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridPos {
    /// Row index in `[0, n)`.
    pub row: u32,
    /// Column index in `[0, n)`.
    pub col: u32,
}

impl GridPos {
    /// Lattice (Manhattan) distance between two positions.
    pub fn lattice_distance(&self, other: GridPos) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

/// Configuration of a Kleinberg grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KleinbergConfig {
    /// Lattice side (the grid has `side²` vertices).
    pub side: u32,
    /// Number of long-range contacts per vertex (the paper's `k`, typically 1).
    pub long_links: u32,
    /// Clustering exponent `s` of the long-range distribution (`s = 2` is
    /// Kleinberg's navigable optimum in two dimensions).
    pub exponent: f64,
}

impl KleinbergConfig {
    /// The canonical navigable configuration: one long link, `s = 2`.
    pub fn navigable(side: u32) -> Self {
        KleinbergConfig {
            side,
            long_links: 1,
            exponent: 2.0,
        }
    }
}

/// A realised Kleinberg small-world graph.
#[derive(Debug, Clone)]
pub struct KleinbergGrid {
    config: KleinbergConfig,
    /// Long-range contacts per vertex (vertex id = `row * side + col`).
    long: Vec<Vec<u32>>,
}

impl KleinbergGrid {
    /// Builds a grid, drawing every long-range contact with probability
    /// proportional to `d^-s`.
    ///
    /// Long links are drawn by sampling a lattice radius from the marginal
    /// distribution (weight `r · r^-s` for the ≈`4r` vertices of the ring of
    /// radius `r`) and then a uniform vertex on that ring, re-drawing when
    /// the chosen ring position falls outside the lattice.  This matches the
    /// model's intent and is the standard sampling shortcut for large grids.
    ///
    /// # Panics
    /// Panics if `side < 2`.
    pub fn build(config: KleinbergConfig, seed: u64) -> Self {
        assert!(config.side >= 2, "a Kleinberg grid needs side >= 2");
        let side = config.side;
        let n = (side * side) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let max_r = (2 * (side - 1)) as usize;
        // Ring-radius CDF: weight(r) ∝ r^(1-s) (ring size ≈ 4r times d^-s).
        let mut cdf = Vec::with_capacity(max_r);
        let mut acc = 0.0;
        for r in 1..=max_r {
            acc += (r as f64).powf(1.0 - config.exponent);
            cdf.push(acc);
        }
        let total = acc;

        let mut long = vec![Vec::new(); n];
        for row in 0..side {
            for col in 0..side {
                let u = (row * side + col) as usize;
                let upos = GridPos { row, col };
                for _ in 0..config.long_links {
                    // Rejection loop: at most a handful of iterations in
                    // practice because most rings intersect the lattice.
                    loop {
                        let x: f64 = rng.random::<f64>() * total;
                        let r = cdf.partition_point(|&c| c < x) + 1;
                        // Uniform position on the L1 ring of radius r.
                        let offset = rng.random_range(0..(4 * r));
                        let (dr, dc) = l1_ring_offset(r as i64, offset as i64);
                        let vr = row as i64 + dr;
                        let vc = col as i64 + dc;
                        if vr < 0 || vc < 0 || vr >= side as i64 || vc >= side as i64 {
                            continue;
                        }
                        let vpos = GridPos {
                            row: vr as u32,
                            col: vc as u32,
                        };
                        if vpos == upos {
                            continue;
                        }
                        long[u].push(vpos.row * side + vpos.col);
                        break;
                    }
                }
            }
        }
        KleinbergGrid { config, long }
    }

    /// The grid configuration.
    pub fn config(&self) -> KleinbergConfig {
        self.config
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        (self.config.side * self.config.side) as usize
    }

    /// True when the grid has no vertex (never the case after `build`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of a vertex id.
    pub fn position(&self, v: u32) -> GridPos {
        GridPos {
            row: v / self.config.side,
            col: v % self.config.side,
        }
    }

    /// Vertex id at a position.
    pub fn vertex_at(&self, pos: GridPos) -> u32 {
        pos.row * self.config.side + pos.col
    }

    /// Grid neighbours (2 to 4 of them) of a vertex.
    pub fn grid_neighbors(&self, v: u32) -> Vec<u32> {
        let side = self.config.side;
        let pos = self.position(v);
        let mut out = Vec::with_capacity(4);
        if pos.row > 0 {
            out.push(v - side);
        }
        if pos.row + 1 < side {
            out.push(v + side);
        }
        if pos.col > 0 {
            out.push(v - 1);
        }
        if pos.col + 1 < side {
            out.push(v + 1);
        }
        out
    }

    /// Long-range contacts of a vertex.
    pub fn long_links(&self, v: u32) -> &[u32] {
        &self.long[v as usize]
    }

    /// Greedy route from `src` to `dst`: number of hops taken.
    ///
    /// Forwarding always strictly decreases the lattice distance (a grid
    /// neighbour towards the target always exists), so the route always
    /// terminates.
    pub fn greedy_route(&self, src: u32, dst: u32) -> u32 {
        let target = self.position(dst);
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let cur_d = self.position(cur).lattice_distance(target);
            let mut best = cur;
            let mut best_d = cur_d;
            for cand in self
                .grid_neighbors(cur)
                .into_iter()
                .chain(self.long[cur as usize].iter().copied())
            {
                let d = self.position(cand).lattice_distance(target);
                if d < best_d {
                    best = cand;
                    best_d = d;
                }
            }
            debug_assert!(best != cur, "greedy routing on a grid cannot get stuck");
            cur = best;
            hops += 1;
        }
        hops
    }

    /// Mean greedy route length over `trials` random source/destination
    /// pairs.
    pub fn mean_route_length(&self, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.len() as u32;
        let mut stats = OnlineStats::new();
        for _ in 0..trials {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            stats.record(self.greedy_route(a, b) as f64);
        }
        stats.mean()
    }
}

/// The `offset`-th vertex (counter-clockwise) of the L1 ring of radius `r`
/// around the origin, `offset ∈ [0, 4r)`.
fn l1_ring_offset(r: i64, offset: i64) -> (i64, i64) {
    debug_assert!(r > 0 && (0..4 * r).contains(&offset));
    let side = offset / r; // which of the 4 diagonal sides of the diamond
    let t = offset % r;
    match side {
        0 => (r - t, t),  // from (r, 0) towards (0, r)
        1 => (-t, r - t), // from (0, r) towards (-r, 0)
        2 => (t - r, -t), // from (-r, 0) towards (0, -r)
        _ => (t, t - r),  // from (0, -r) towards (r, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_offsets_have_correct_radius_and_are_distinct() {
        for r in 1..6i64 {
            let mut seen = std::collections::BTreeSet::new();
            for o in 0..4 * r {
                let (dr, dc) = l1_ring_offset(r, o);
                assert_eq!(dr.abs() + dc.abs(), r, "offset {o} radius {r}");
                assert!(seen.insert((dr, dc)), "duplicate ring vertex");
            }
            assert_eq!(seen.len() as i64, 4 * r);
        }
    }

    #[test]
    fn grid_neighbors_counts() {
        let g = KleinbergGrid::build(KleinbergConfig::navigable(4), 1);
        // Corner, edge and interior vertices.
        assert_eq!(g.grid_neighbors(0).len(), 2);
        assert_eq!(g.grid_neighbors(1).len(), 3);
        assert_eq!(g.grid_neighbors(5).len(), 4);
        // Symmetry of the grid relation.
        for v in 0..g.len() as u32 {
            for n in g.grid_neighbors(v) {
                assert!(g.grid_neighbors(n).contains(&v));
            }
        }
    }

    #[test]
    fn every_vertex_gets_k_long_links() {
        let cfg = KleinbergConfig {
            side: 12,
            long_links: 3,
            exponent: 2.0,
        };
        let g = KleinbergGrid::build(cfg, 7);
        for v in 0..g.len() as u32 {
            assert_eq!(g.long_links(v).len(), 3);
            for &l in g.long_links(v) {
                assert_ne!(l, v);
                assert!((l as usize) < g.len());
            }
        }
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let cfg = KleinbergConfig::navigable(10);
        let a = KleinbergGrid::build(cfg, 3);
        let b = KleinbergGrid::build(cfg, 3);
        let c = KleinbergGrid::build(cfg, 4);
        assert_eq!(a.long, b.long);
        assert_ne!(a.long, c.long);
    }

    #[test]
    fn greedy_route_reaches_destination_and_beats_lattice_distance_bound() {
        let g = KleinbergGrid::build(KleinbergConfig::navigable(20), 5);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let a = rng.random_range(0..g.len() as u32);
            let b = rng.random_range(0..g.len() as u32);
            if a == b {
                continue;
            }
            let hops = g.greedy_route(a, b);
            assert!(hops >= 1);
            assert!(
                hops <= g.position(a).lattice_distance(g.position(b)),
                "greedy with long links is never worse than the pure lattice walk"
            );
        }
    }

    #[test]
    fn long_links_shorten_routes() {
        let side = 30;
        let no_links = KleinbergConfig {
            side,
            long_links: 0,
            exponent: 2.0,
        };
        let with_links = KleinbergConfig::navigable(side);
        let plain = KleinbergGrid::build(no_links, 11).mean_route_length(300, 1);
        let small_world = KleinbergGrid::build(with_links, 11).mean_route_length(300, 1);
        assert!(
            small_world < plain,
            "long links must shorten greedy routes ({small_world} vs {plain})"
        );
    }

    #[test]
    fn exponent_two_beats_overly_local_links() {
        // Kleinberg's theorem is asymptotic: at moderate sizes s = 2 already
        // clearly beats overly local long links (large s), while the
        // comparison against s = 0 only turns in favour of s = 2 at sizes
        // too large for a unit test (the ablation bench covers that sweep).
        let side = 40;
        let mean_for = |s: f64| {
            let cfg = KleinbergConfig {
                side,
                long_links: 1,
                exponent: s,
            };
            KleinbergGrid::build(cfg, 21).mean_route_length(400, 2)
        };
        let s2 = mean_for(2.0);
        let s4 = mean_for(4.0);
        let s6 = mean_for(6.0);
        assert!(s2 < s4, "s=2 ({s2}) must beat overly local links ({s4})");
        assert!(s2 < s6, "s=2 ({s2}) must beat near-grid-only links ({s6})");
    }

    #[test]
    fn routes_scale_polylogarithmically_at_s2() {
        // Mean hops at s=2 should grow far slower than the lattice diameter.
        let small =
            KleinbergGrid::build(KleinbergConfig::navigable(16), 31).mean_route_length(300, 3);
        let large =
            KleinbergGrid::build(KleinbergConfig::navigable(64), 31).mean_route_length(300, 3);
        // Diameter grows 4x; poly-log growth should stay well under 3x.
        assert!(
            large < small * 3.0,
            "route growth looks super-poly-logarithmic: {small} -> {large}"
        );
    }

    #[test]
    fn position_vertex_roundtrip() {
        let g = KleinbergGrid::build(KleinbergConfig::navigable(9), 2);
        for v in 0..g.len() as u32 {
            assert_eq!(g.vertex_at(g.position(v)), v);
        }
        assert_eq!(
            GridPos { row: 0, col: 0 }.lattice_distance(GridPos { row: 3, col: 4 }),
            7
        );
    }
}
