//! Ordinary least-squares line fitting.
//!
//! Figure 7 of the paper plots `log H` against `log log N` and reads the
//! slope to confirm the `O(log² N)` routing bound (slope ≈ 2).  The bench
//! harness reproduces that fit with this module.

use serde::{Deserialize, Serialize};

/// Result of a simple linear regression `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a least-squares line through `(x, y)` pairs.
///
/// Returns `None` when fewer than two distinct x values are provided (the
/// slope would be undefined).
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

/// Fits `log(y) ≈ slope · log(log(x)) + c`, the exact transformation used by
/// Figure 7 (natural logarithms).  Pairs with `x ≤ e` or `y ≤ 0` are skipped
/// because their transform is undefined.
pub fn fit_loglog_exponent(points: &[(f64, f64)]) -> Option<LinearFit> {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > std::f64::consts::E && y > 0.0)
        .map(|&(x, y)| (x.ln().ln(), y.ln()))
        .collect();
    linear_fit(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) - 298.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn noisy_line_slope_close() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                let noise = ((i * 37) % 11) as f64 / 100.0 - 0.05;
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn loglog_exponent_recovers_power_of_log() {
        // y = (ln x)^2  =>  ln y = 2 ln ln x : the slope must come out as 2,
        // which is exactly how Figure 7 confirms the O(log^2 N) bound.
        let pts: Vec<(f64, f64)> = (1..30)
            .map(|i| {
                let x = 10_000.0 * i as f64;
                (x, x.ln().powi(2))
            })
            .collect();
        let fit = fit_loglog_exponent(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_exponent_skips_invalid_points() {
        let pts = vec![(1.0, 5.0), (2.0, 0.0), (1_000.0, 10.0), (100_000.0, 20.0)];
        let fit = fit_loglog_exponent(&pts).unwrap();
        assert_eq!(fit.n, 2);
    }
}
