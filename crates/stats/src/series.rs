//! Labelled data series and CSV export.
//!
//! Every figure of the evaluation is ultimately a set of `(x, y)` series; the
//! bench harness builds [`Series`] values and dumps them with
//! [`series_to_csv`] so the plots can be regenerated with any tool.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. `"uniform"`, `"sparse alpha=5"`).
    pub label: String,
    /// The data points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series holds no point.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maps the y values through `f`, returning a new series with the same
    /// label.
    pub fn map_y(&self, f: impl Fn(f64) -> f64) -> Series {
        Series {
            label: self.label.clone(),
            points: self.points.iter().map(|&(x, y)| (x, f(y))).collect(),
        }
    }
}

/// Renders a set of series as a long-format CSV table
/// (`series,x,y` header included).
pub fn series_to_csv(series: &[Series]) -> String {
    let mut out = String::from("series,x,y\n");
    for s in series {
        for &(x, y) in &s.points {
            out.push_str(&format!("{},{},{}\n", s.label, x, y));
        }
    }
    out
}

/// Renders a set of series as an aligned text table for terminal output
/// (one row per x value, one column per series; missing values are blank).
pub fn series_to_table(series: &[Series]) -> String {
    use std::collections::BTreeMap;
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.dedup();
    let maps: Vec<BTreeMap<u64, f64>> = series
        .iter()
        .map(|s| {
            s.points
                .iter()
                .map(|&(x, y)| (x.to_bits(), y))
                .collect::<BTreeMap<u64, f64>>()
        })
        .collect();
    let mut out = String::from("x");
    for s in series {
        out.push('\t');
        out.push_str(&s.label);
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x}"));
        for m in &maps {
            out.push('\t');
            match m.get(&x.to_bits()) {
                Some(y) => out.push_str(&format!("{y:.3}")),
                None => out.push('-'),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_map() {
        let mut s = Series::new("uniform");
        assert!(s.is_empty());
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.len(), 2);
        let doubled = s.map_y(|y| 2.0 * y);
        assert_eq!(doubled.points, vec![(1.0, 20.0), (2.0, 40.0)]);
        assert_eq!(doubled.label, "uniform");
    }

    #[test]
    fn csv_format() {
        let mut a = Series::new("a");
        a.push(1.0, 2.0);
        let mut b = Series::new("b");
        b.push(3.0, 4.5);
        let csv = series_to_csv(&[a, b]);
        assert_eq!(csv, "series,x,y\na,1,2\nb,3,4.5\n");
    }

    #[test]
    fn table_aligns_series_on_x() {
        let mut a = Series::new("a");
        a.push(1.0, 2.0);
        a.push(2.0, 3.0);
        let mut b = Series::new("b");
        b.push(2.0, 5.0);
        let table = series_to_table(&[a, b]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines[0], "x\ta\tb");
        assert!(lines[1].starts_with("1\t2.000\t-"));
        assert!(lines[2].starts_with("2\t3.000\t5.000"));
    }

    #[test]
    fn empty_series_csv() {
        assert_eq!(series_to_csv(&[]), "series,x,y\n");
        assert_eq!(series_to_table(&[]), "x\n");
    }
}
