//! Integer and fixed-width histograms.
//!
//! Figure 5 of the paper is a histogram of Voronoi out-degrees; Figure 8's
//! analysis also relies on distributions of per-object quantities.  The
//! histograms here are deliberately simple, deterministic and serialisable so
//! that the figure binaries can dump them as CSV.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Exact histogram over non-negative integer observations (e.g. out-degree,
/// hop counts).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl IntHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        sum / self.total as f64
    }

    /// The most frequent value (smallest one on ties), if any.
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&v, _)| v)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the recorded values, if any.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen > rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Dense `(value, count)` rows from 0 to the maximum recorded value —
    /// the exact series plotted in Figure 5.
    pub fn dense_rows(&self) -> Vec<(u64, u64)> {
        match self.max() {
            None => Vec::new(),
            Some(max) => (0..=max).map(|v| (v, self.count(v))).collect(),
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &IntHistogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }
}

/// Fixed-width histogram over `f64` observations in `[lo, hi)`.
///
/// Out-of-range observations are clamped into the first/last bin so that no
/// sample is silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedHistogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl FixedHistogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "a histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        FixedHistogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation (clamped into range).
    pub fn record(&mut self, value: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((value - self.lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * i as f64
    }

    /// `(bin_low_edge, count)` rows.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        (0..self.bins.len())
            .map(|i| (self.bin_lo(i), self.bins[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_histogram_basics() {
        let mut h = IntHistogram::new();
        for v in [3, 3, 5, 7, 3, 5] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(7));
        assert_eq!(h.mode(), Some(3));
        assert!((h.mean() - 26.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn int_histogram_quantiles() {
        let mut h = IntHistogram::new();
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(99));
        assert_eq!(IntHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn int_histogram_dense_rows_and_merge() {
        let mut a = IntHistogram::new();
        a.record(1);
        a.record(3);
        let mut b = IntHistogram::new();
        b.record_n(3, 2);
        a.merge(&b);
        assert_eq!(a.dense_rows(), vec![(0, 0), (1, 1), (2, 0), (3, 3)]);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn int_histogram_empty() {
        let h = IntHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mode(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.dense_rows().is_empty());
    }

    #[test]
    fn fixed_histogram_binning() {
        let mut h = FixedHistogram::new(0.0, 1.0, 4);
        for &v in &[0.0, 0.1, 0.3, 0.6, 0.99, -5.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.bins(), &[3, 1, 1, 2]);
        assert_eq!(h.bin_lo(2), 0.5);
        assert_eq!(h.rows().len(), 4);
    }

    #[test]
    #[should_panic]
    fn fixed_histogram_zero_bins_panics() {
        FixedHistogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = IntHistogram::new();
        h.record_n(4, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(4), 0);
    }
}
