//! # voronet-stats
//!
//! Statistics toolkit backing the VoroNet evaluation: exact integer
//! histograms (degree distributions, Figure 5), online moment accumulators,
//! percentiles, least-squares fitting (the Figure 7 slope) and labelled data
//! series with CSV export for every figure.

#![warn(missing_docs)]

pub mod histogram;
pub mod regression;
pub mod series;
pub mod summary;

pub use histogram::{FixedHistogram, IntHistogram};
pub use regression::{fit_loglog_exponent, linear_fit, LinearFit};
pub use series::{series_to_csv, series_to_table, Series};
pub use summary::{mean, p999, percentile, tail_summary, OnlineStats, TailSummary};
