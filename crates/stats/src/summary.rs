//! Online summary statistics (Welford) and percentile helpers.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm), merged across
/// threads by the bench harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (0 when fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a slice (linear interpolation between closest ranks).
/// Returns `None` for an empty slice or a non-finite `q`.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !q.is_finite() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// 99.9th percentile of a slice — the deep-tail quantile recorded by the
/// scenario benches.  Linear interpolation between closest ranks, like
/// [`percentile`]: with fewer than 1000 samples the rank position lands
/// between the two largest observations, so the result clamps into
/// `[second-largest, max]` instead of indexing out of bounds.  `None` on
/// an empty slice.
pub fn p999(values: &[f64]) -> Option<f64> {
    percentile(values, 0.999)
}

/// The latency quantiles every scenario record carries: median, tail and
/// deep tail plus the extremes and the sample count they came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailSummary {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations summarised.
    pub count: usize,
}

/// Summarises a latency sample into its [`TailSummary`] with one sort.
/// `None` on an empty slice.
pub fn tail_summary(values: &[f64]) -> Option<TailSummary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let at = |q: f64| {
        let pos = q * (sorted.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    };
    Some(TailSummary {
        p50: at(0.5),
        p99: at(0.99),
        p999: at(0.999),
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
        count: sorted.len(),
    })
}

/// Arithmetic mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_closed_form() {
        let mut s = OnlineStats::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(s.stddev() > 0.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&xs, f64::NAN), None);
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn p999_clamps_on_short_and_tied_inputs() {
        // Seeded xorshift so the property sweep replays exactly without a
        // rand dependency in this crate.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let len = (next() % 1499 + 1) as usize; // 1..=1499, mostly < 1000
                                                    // Tie-heavy: values drawn from a tiny integer palette.
            let palette = next() % 5 + 1;
            let xs: Vec<f64> = (0..len).map(|_| (next() % palette) as f64).collect();
            let t = tail_summary(&xs).expect("non-empty");
            let sorted = {
                let mut s = xs.clone();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                s
            };
            assert_eq!(t.count, len, "case {case}");
            assert_eq!(p999(&xs), Some(t.p999), "case {case}");
            assert_eq!(percentile(&xs, 0.5), Some(t.p50), "case {case}");
            // Quantiles are ordered and bounded by the extremes.
            assert!(
                t.min <= t.p50 && t.p50 <= t.p99 && t.p99 <= t.p999 && t.p999 <= t.max,
                "case {case}: unordered quantiles {t:?}"
            );
            assert_eq!(t.min, sorted[0], "case {case}");
            assert_eq!(t.max, *sorted.last().unwrap(), "case {case}");
            // Under 1000 samples the 99.9th rank position sits between the
            // two largest observations — it must clamp there, never index
            // past the end.
            if (2..1000).contains(&len) {
                assert!(
                    t.p999 >= sorted[len - 2],
                    "case {case}: p999 {} below second-largest {}",
                    t.p999,
                    sorted[len - 2]
                );
            }
        }
        // Degenerate inputs.
        assert_eq!(p999(&[]), None);
        assert_eq!(p999(&[7.5]), Some(7.5));
        assert_eq!(tail_summary(&[]), None);
        let ones = [1.0; 10];
        let t = tail_summary(&ones).unwrap();
        assert_eq!((t.p50, t.p99, t.p999, t.max), (1.0, 1.0, 1.0, 1.0));
    }
}
