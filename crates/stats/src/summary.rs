//! Online summary statistics (Welford) and percentile helpers.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm), merged across
/// threads by the bench harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (0 when fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a slice (linear interpolation between closest ranks).
/// Returns `None` for an empty slice or a non-finite `q`.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !q.is_finite() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Arithmetic mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_closed_form() {
        let mut s = OnlineStats::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(s.stddev() > 0.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&xs, f64::NAN), None);
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
