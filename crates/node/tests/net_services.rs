//! Multi-process geo-scoped services conformance: region pub/sub and
//! coordinate-keyed KV served by live `voronet-node` host processes
//! over real loopback UDP.
//!
//! The scenario mirrors the in-process vnet test in
//! `voronet-net/src/cluster.rs` (`service_plane_pubsub_and_kv_handoff`):
//! every object subscribes to the full domain, a publication's delivered
//! set is pinned to the single-process oracle's flood matches, a KV
//! entry round-trips through the owning host, and churn — a join landing
//! exactly on the key's coordinates, then that node's departure — must
//! migrate the stored value between host processes without losing it.
//! Running it over UDP proves the service frames (`SvcSubscribe`,
//! `SvcDeliver`, `SvcKvStore`, ...) and their ack/resend discipline
//! survive a lossy, reordering transport, not just the deterministic
//! vnet.

use std::process::{Child, Command, Stdio};
use voronet_core::{queries, VoroNet, VoroNetConfig};
use voronet_geom::{Point2, Rect};
use voronet_net::cluster::{Driver, OpOutcome, DRIVER_PEER};
use voronet_net::transport::Transport;
use voronet_net::udp::UdpTransport;
use voronet_services::key_point;
use voronet_workloads::{Distribution, PointGenerator, RangeQuery};

/// A distinct port range per test process, clear of the ephemeral
/// range's floor and of `net_overlay.rs`'s offsets (0 and 64).
fn base_port() -> u16 {
    10_000 + (std::process::id() % 20_000) as u16 + 128
}

/// Host children that are killed even when an assertion unwinds.
struct Hosts(Vec<Child>);

impl Hosts {
    fn spawn(hosts: u64, base_port: u16) -> Self {
        let mut children = Vec::new();
        for peer in 1..=hosts {
            let child = Command::new(env!("CARGO_BIN_EXE_voronet-node"))
                .args([
                    "host",
                    "--peer",
                    &peer.to_string(),
                    "--hosts",
                    &hosts.to_string(),
                    "--base-port",
                    &base_port.to_string(),
                    "--transport",
                    "udp",
                    "--stats-every",
                    "3600",
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn voronet-node host");
            children.push(child);
        }
        Hosts(children)
    }

    fn reap(mut self) {
        for child in &mut self.0 {
            let status = child.wait().expect("wait for host child");
            assert!(status.success(), "host child exited with {status}");
        }
        self.0.clear();
    }
}

impl Drop for Hosts {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn services_over_loopback_udp_survive_churn_handoff() {
    let hosts_n = 3u64;
    let port = base_port();
    let hosts = Hosts::spawn(hosts_n, port);
    let mut t = UdpTransport::bind(DRIVER_PEER, &format!("127.0.0.1:{port}")).expect("bind driver");
    for peer in 1..=hosts_n {
        t.register(peer, &format!("127.0.0.1:{}", port as u64 + peer))
            .unwrap();
    }

    let seed = 5;
    let config = || VoroNetConfig::new(512).with_seed(seed);
    let mut driver = Driver::new(t, hosts_n, config());
    let points = PointGenerator::new(Distribution::Uniform, 23).take_points(32);
    for &p in &points {
        driver.insert(p).expect("insert");
    }
    let mut oracle = VoroNet::new(config());
    for &p in &points {
        let _ = oracle.insert(p);
    }
    let n = driver.population();
    assert_eq!(n, oracle.len());

    // Everyone subscribes to the full domain: a publication's delivered
    // set must equal the oracle's flood match set, the rest are missed.
    let domain = Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
    for i in 0..n {
        let outcome = driver.subscribe(i, domain).expect("subscribe");
        assert!(matches!(
            outcome,
            OpOutcome::Subscribed {
                replaced: false,
                ..
            }
        ));
    }
    let region = Rect::new(Point2::new(0.2, 0.2), Point2::new(0.7, 0.7));
    let OpOutcome::Published {
        topic_seq,
        delivered,
        missed,
        ..
    } = driver.publish(0, region, 99).expect("publish")
    else {
        panic!("publish on a populated overlay must resolve")
    };
    assert_eq!(topic_seq, 1);
    let from = oracle.id_at(0).unwrap();
    let expected = queries::range_query(&mut oracle, from, RangeQuery { rect: region }).unwrap();
    let expected_ids: Vec<u64> = expected.matches.iter().map(|m| m.0).collect();
    assert_eq!(
        delivered, expected_ids,
        "delivered set must match the oracle flood"
    );
    assert_eq!(
        delivered.len() + missed.len(),
        n,
        "every full-domain subscriber is either delivered or missed"
    );

    // KV round-trip through the owning host process.
    let key = 0xC0FFEEu64;
    let OpOutcome::KvStored {
        owner,
        replaced: false,
        ..
    } = driver.kv_put(3, key, 41).expect("kv_put")
    else {
        panic!("kv_put must store")
    };
    let OpOutcome::KvFetched {
        value,
        owner: fetched_owner,
        ..
    } = driver.kv_get(7, key).expect("kv_get")
    else {
        panic!("kv_get must resolve")
    };
    assert_eq!(value, Some(41));
    assert_eq!(fetched_owner, owner);

    // Churn-driven handoff: a join landing exactly on the key's
    // coordinates takes over the owning cell, and the stored entry must
    // follow it — physically migrating to the new owner's host process.
    let kp = key_point(key, driver.net().config().domain);
    let new_id = driver.insert(kp).expect("insert").expect("fresh position");
    let OpOutcome::KvFetched { value, owner, .. } = driver.kv_get(9, key).expect("kv_get") else {
        panic!("kv_get must resolve")
    };
    assert_eq!(owner, new_id, "the on-key node must own the entry");
    assert_eq!(value, Some(41), "the value must survive the handoff");

    // Removing the new owner hands the entry back to a survivor.
    let n = driver.population();
    let idx = (0..n)
        .position(|i| driver.net().id_at(i) == Some(voronet_core::ObjectId(new_id)))
        .expect("new node is live");
    assert_eq!(driver.remove_index(idx).expect("remove"), Some(new_id));
    let OpOutcome::KvFetched { value, owner, .. } = driver.kv_get(2, key).expect("kv_get") else {
        panic!("kv_get must resolve")
    };
    assert_ne!(owner, new_id);
    assert_eq!(value, Some(41), "the value must survive the second handoff");

    // Delete, then the key reads back absent.
    let OpOutcome::KvDropped { existed: true, .. } = driver.kv_delete(5, key).expect("kv_delete")
    else {
        panic!("delete must drop the entry")
    };
    let OpOutcome::KvFetched { value: None, .. } = driver.kv_get(6, key).expect("kv_get") else {
        panic!("deleted key must read back as absent")
    };

    let reports = driver.collect_stats().expect("host stats");
    assert!(
        reports.iter().any(|r| r.ops_served > 0),
        "service traffic must reach the hosts: {reports:?}"
    );
    driver.shutdown_hosts().expect("shutdown");
    hosts.reap();
}
