//! Multi-process fault tolerance over real loopback UDP: the owning
//! host *process* is killed after a KV write is acked, and the driver
//! must detect the death, serve the read degraded from a Voronoi
//! replica, and fail fast on ops that need the dead host.
//!
//! This is the in-process `crashed_owner_degrades_reads_and_failfasts_ops`
//! scenario (`voronet-net/src/cluster.rs`) run against live
//! `voronet-node` children: the crash is a real SIGKILL, not a
//! transport blackhole, so the failure detector's ping windows, the
//! replica fetch frames and the `Unavailable` fail-fast path are
//! exercised over an actual lossy socket.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use voronet_core::VoroNetConfig;
use voronet_net::cluster::{
    host_of, ClusterError, Driver, HostState, Liveness, OpOutcome, RetryPolicy, DRIVER_PEER,
};
use voronet_net::transport::Transport;
use voronet_net::udp::UdpTransport;
use voronet_workloads::{Distribution, PointGenerator};

/// A distinct port range per test process, clear of the ephemeral
/// range's floor and of the other node tests' offsets (0, 64, 128).
fn base_port() -> u16 {
    10_000 + (std::process::id() % 20_000) as u16 + 192
}

/// Host children that are killed even when an assertion unwinds.
struct Hosts(Vec<Child>);

impl Hosts {
    fn spawn(hosts: u64, base_port: u16) -> Self {
        let mut children = Vec::new();
        for peer in 1..=hosts {
            let child = Command::new(env!("CARGO_BIN_EXE_voronet-node"))
                .args([
                    "host",
                    "--peer",
                    &peer.to_string(),
                    "--hosts",
                    &hosts.to_string(),
                    "--base-port",
                    &base_port.to_string(),
                    "--transport",
                    "udp",
                    "--stats-every",
                    "3600",
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn voronet-node host");
            children.push(child);
        }
        Hosts(children)
    }

    /// Crash-stops one host for real: SIGKILL, no shutdown handshake.
    fn kill_host(&mut self, peer: u64) {
        let child = &mut self.0[(peer - 1) as usize];
        child.kill().expect("kill host child");
        child.wait().expect("reap killed child");
    }

    /// Reaps every child, tolerating the unclean exit of the one that
    /// was deliberately killed.
    fn reap(mut self, killed: u64) {
        for (i, child) in self.0.iter_mut().enumerate() {
            let peer = i as u64 + 1;
            let status = child.wait().expect("wait for host child");
            if peer != killed {
                assert!(status.success(), "host {peer} exited with {status}");
            }
        }
        self.0.clear();
    }
}

impl Drop for Hosts {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn killed_owner_process_leaves_acked_write_readable() {
    let hosts_n = 3u64;
    let port = base_port();
    let mut hosts = Hosts::spawn(hosts_n, port);
    let mut t = UdpTransport::bind(DRIVER_PEER, &format!("127.0.0.1:{port}")).expect("bind driver");
    for peer in 1..=hosts_n {
        t.register(peer, &format!("127.0.0.1:{}", port as u64 + peer))
            .unwrap();
    }

    let mut driver = Driver::new(t, hosts_n, VoroNetConfig::new(512).with_seed(12));
    driver.set_retry_policy(RetryPolicy::tight());
    driver.set_liveness(Liveness::tight());
    let points = PointGenerator::new(Distribution::Uniform, 31).take_points(32);
    for &p in &points {
        driver.insert(p).expect("insert");
    }

    // An acked write mirrored to at least two replicas.
    let key = 0xDEADu64;
    let OpOutcome::KvStored {
        owner, replicas, ..
    } = driver.kv_put(1, key, 4096).expect("kv_put")
    else {
        panic!("kv_put must store")
    };
    assert!(
        replicas >= 2,
        "a dense overlay must mirror to >= 2 replicas, got {replicas}"
    );

    // SIGKILL the owning host's process; the failure detector must
    // notice within its ping windows.
    let owner_host = host_of(owner, hosts_n);
    hosts.kill_host(owner_host);
    let deadline = Instant::now() + Duration::from_secs(15);
    while driver.host_state(owner_host) != HostState::Dead {
        assert!(
            Instant::now() < deadline,
            "failure detector never declared the killed process dead"
        );
        driver.heartbeat().expect("heartbeat");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The acked write is still readable — degraded, from a replica on a
    // surviving process, with the correct value.
    let from = (0..driver.population())
        .find(|&i| {
            let id = driver.net().id_at(i).unwrap().0;
            host_of(id, hosts_n) != owner_host
        })
        .expect("a surviving object exists");
    let OpOutcome::KvFetched {
        value,
        owner: got_owner,
        degraded,
        ..
    } = driver.kv_get(from, key).expect("degraded kv_get")
    else {
        panic!("kv_get must resolve")
    };
    assert!(degraded, "a read with the owner dead must be degraded");
    assert_eq!(value, Some(4096), "the acked write must survive the kill");
    assert_eq!(got_owner, owner);

    // An op that can only be served by the dead process fails fast.
    let dead_idx = (0..driver.population())
        .find(|&i| {
            let id = driver.net().id_at(i).unwrap().0;
            host_of(id, hosts_n) == owner_host
        })
        .expect("the dead host serves at least one object");
    let t0 = Instant::now();
    let err = driver.route_indices(dead_idx, from).unwrap_err();
    assert!(matches!(err, ClusterError::Unavailable(_)), "got {err}");
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "fail-fast took {:?}",
        t0.elapsed()
    );

    let stats = driver.cluster_stats();
    assert!(stats.deaths >= 1, "death must be counted: {stats:?}");
    assert!(
        stats.degraded_reads >= 1,
        "degraded read must be counted: {stats:?}"
    );
    assert!(stats.fail_fast >= 1, "fail-fast must be counted: {stats:?}");

    driver.shutdown_hosts().expect("shutdown survivors");
    hosts.reap(owner_host);
}
