//! Multi-process conformance: a live overlay of `voronet-node` host
//! processes over real loopback sockets, driven op-by-op against the
//! single-process oracle.
//!
//! Each test spawns K `voronet-node host` child processes (the binary
//! under test, via `CARGO_BIN_EXE_voronet-node`), joins them as the
//! driver over UDP or TCP, builds a ~100-object overlay, replays a mixed
//! churn + Zipf-skewed workload, and asserts every outcome — assigned
//! ids, route owners and hop counts, query match sets and flood
//! footprints — equals what the in-memory `VoroNet` produces for the
//! same script.  `VORONET_SMOKE=1` (the CI budget) sizes the overlay
//! down.
//!
//! Loopback UDP can drop under buffer pressure and children take a
//! moment to bind; both are absorbed by the cluster's ack/retry
//! machinery, and answers are deterministic functions of the
//! synchronised views, so equality holds regardless of retries.

use std::process::{Child, Command, Stdio};
use voronet_core::{queries, VoroNet, VoroNetConfig};
use voronet_net::cluster::{Driver, OpOutcome, DRIVER_PEER};
use voronet_net::tcp::TcpTransport;
use voronet_net::transport::Transport;
use voronet_net::udp::UdpTransport;
use voronet_workloads::{Distribution, OpBatchGenerator, OpMix, PointGenerator, WorkloadOp};

fn smoke() -> bool {
    std::env::var("VORONET_SMOKE").is_ok_and(|v| v == "1")
}

struct Scale {
    hosts: u64,
    objects: usize,
    ops: usize,
}

fn scale() -> Scale {
    if smoke() {
        Scale {
            hosts: 3,
            objects: 40,
            ops: 30,
        }
    } else {
        Scale {
            hosts: 4,
            objects: 100,
            ops: 60,
        }
    }
}

/// A distinct port range per test process and per test, clear of the
/// ephemeral range's floor.
fn base_port(offset: u16) -> u16 {
    10_000 + (std::process::id() % 20_000) as u16 + offset
}

/// Host children that are killed even when an assertion unwinds.
struct Hosts(Vec<Child>);

impl Hosts {
    fn spawn(hosts: u64, base_port: u16, transport: &str) -> Self {
        let mut children = Vec::new();
        for peer in 1..=hosts {
            let child = Command::new(env!("CARGO_BIN_EXE_voronet-node"))
                .args([
                    "host",
                    "--peer",
                    &peer.to_string(),
                    "--hosts",
                    &hosts.to_string(),
                    "--base-port",
                    &base_port.to_string(),
                    "--transport",
                    transport,
                    "--stats-every",
                    "3600",
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn voronet-node host");
            children.push(child);
        }
        Hosts(children)
    }

    fn reap(mut self) {
        for child in &mut self.0 {
            let status = child.wait().expect("wait for host child");
            assert!(status.success(), "host child exited with {status}");
        }
        self.0.clear();
    }
}

impl Drop for Hosts {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The shared conformance loop: build, churn, query, compare everything.
fn conformance<T: Transport>(transport: T, hosts: u64, objects: usize, ops: usize) {
    let seed = 2007;
    let config = || VoroNetConfig::new(4096).with_seed(seed);
    let mut driver = Driver::new(transport, hosts, config());
    let mut oracle = VoroNet::new(config());

    let mut points = PointGenerator::new(Distribution::Uniform, seed);
    let mut built = 0usize;
    while built < objects {
        let p = points.next_point();
        let got = driver.insert(p).expect("cluster insert");
        let expected = oracle.insert(p).ok().map(|r| r.id.0);
        assert_eq!(got, expected, "insert at {p:?}");
        if got.is_some() {
            built += 1;
        }
    }
    assert_eq!(driver.population(), oracle.len());

    let mut generator = OpBatchGenerator::new(Distribution::Uniform, seed, OpMix::churn_zipf())
        .with_zipf_destinations(1.0);
    for (i, op) in generator.batch(oracle.len(), ops).iter().enumerate() {
        let got = driver.apply(op).expect("cluster op");
        let expected = match *op {
            WorkloadOp::Insert { position } => {
                OpOutcome::Inserted(oracle.insert(position).ok().map(|r| r.id.0))
            }
            WorkloadOp::Remove { index } => {
                let id = oracle.id_at(index % oracle.len()).unwrap();
                OpOutcome::Removed(oracle.remove(id).ok().map(|_| id.0))
            }
            WorkloadOp::Route { from, to } => {
                let n = oracle.len();
                let a = oracle.id_at(from % n).unwrap();
                let b = oracle.id_at(to % n).unwrap();
                let report = oracle.route_between(a, b).unwrap();
                OpOutcome::Route {
                    owner: report.owner.0,
                    hops: report.hops,
                }
            }
            WorkloadOp::Range { from, query } => {
                let a = oracle.id_at(from % oracle.len()).unwrap();
                let report = queries::range_query(&mut oracle, a, query).unwrap();
                OpOutcome::Matches {
                    matches: report.matches.iter().map(|m| m.0).collect(),
                    hops: report.routing_hops,
                    visited: report.visited as u32,
                }
            }
            WorkloadOp::Radius { from, query } => {
                let a = oracle.id_at(from % oracle.len()).unwrap();
                let report = queries::radius_query(&mut oracle, a, query).unwrap();
                OpOutcome::Matches {
                    matches: report.matches.iter().map(|m| m.0).collect(),
                    hops: report.routing_hops,
                    visited: report.visited as u32,
                }
            }
            WorkloadOp::Snapshot { .. } => OpOutcome::Skipped,
            // churn_zipf emits no service ops; the service conformance
            // path lives in tests/net_services.rs.
            WorkloadOp::Subscribe { .. }
            | WorkloadOp::Unsubscribe { .. }
            | WorkloadOp::Publish { .. }
            | WorkloadOp::KvPut { .. }
            | WorkloadOp::KvGet { .. }
            | WorkloadOp::KvDelete { .. } => {
                unreachable!("churn_zipf generates no service ops")
            }
        };
        assert_eq!(got, expected, "op {i}: {op:?}");
    }

    let reports = driver.collect_stats().expect("host stats");
    assert_eq!(reports.len() as u64, hosts);
    assert!(
        reports.iter().any(|r| r.ops_served > 0),
        "the workload must exercise the hosts: {reports:?}"
    );
    driver.shutdown_hosts().expect("shutdown");
}

#[test]
fn multi_process_udp_overlay_matches_the_oracle() {
    let s = scale();
    let port = base_port(0);
    let hosts = Hosts::spawn(s.hosts, port, "udp");
    let mut t = UdpTransport::bind(DRIVER_PEER, &format!("127.0.0.1:{port}")).expect("bind driver");
    for peer in 1..=s.hosts {
        t.register(peer, &format!("127.0.0.1:{}", port as u64 + peer))
            .unwrap();
    }
    conformance(t, s.hosts, s.objects, s.ops);
    hosts.reap();
}

#[test]
fn multi_process_tcp_overlay_matches_the_oracle() {
    // A smaller overlay: this variant pins stream framing and reconnect
    // plumbing end-to-end, not scale (UDP above covers that).
    let (hosts_n, objects, ops) = (2, 24, 16);
    let port = base_port(64);
    let hosts = Hosts::spawn(hosts_n, port, "tcp");
    let mut t = TcpTransport::bind(DRIVER_PEER, &format!("127.0.0.1:{port}")).expect("bind driver");
    for peer in 1..=hosts_n {
        t.register(peer, &format!("127.0.0.1:{}", port as u64 + peer))
            .unwrap();
    }
    conformance(t, hosts_n, objects, ops);
    hosts.reap();
}
