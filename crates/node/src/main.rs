//! `voronet-node`: a deployable VoroNet overlay process.
//!
//! ```text
//! voronet-node host  --peer N --hosts K --base-port P
//!                    [--transport udp|tcp] [--stats-every SECS]
//! voronet-node drive --hosts K --base-port P [--transport udp|tcp]
//!                    [--objects N] [--ops N] [--seed S] [--zipf A]
//!                    [--services]
//! voronet-node demo  [--hosts K] [--objects N] [--ops N] [--seed S]
//!                    [--zipf A] [--loss P] [--services]
//! ```
//!
//! Addressing is positional: peer `i` (0 is the driver) listens on
//! `127.0.0.1:(base-port + i)`, so a cluster needs nothing beyond a shared
//! base port.  `host` serves objects until the driver says shutdown,
//! printing a stats line (transport counters included) every few seconds.
//! `drive` joins as the controller: it builds the overlay, replays a
//! churn-heavy Zipf-skewed workload ([`OpMix::churn_zipf`]) against the
//! live cluster, then gathers every host's counters.  `demo` runs the
//! same show single-process over the deterministic vnet transport — the
//! in-memory twin of a socket deployment.  `--services` (drive/demo)
//! switches the workload to the geo-scoped service mix
//! ([`OpMix::services`]): region pub/sub deliveries and coordinate-keyed
//! KV traffic ride the same cluster, with entries migrating between
//! hosts as churn moves the owning Voronoi cells.

use std::process::ExitCode;
use std::time::{Duration, Instant};
use voronet_core::snapshot::{FrozenView, RouteScratch, SnapshotStats, ViewRefresh};
use voronet_core::VoroNetConfig;
use voronet_net::cluster::{Driver, HostNode, HostReport, LocalCluster, OpOutcome, DRIVER_PEER};
use voronet_net::tcp::TcpTransport;
use voronet_net::transport::Transport;
use voronet_net::udp::UdpTransport;
use voronet_sim::NetworkModel;
use voronet_workloads::{Distribution, OpBatchGenerator, OpMix, PointGenerator, WorkloadOp};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    Udp,
    Tcp,
}

#[derive(Debug)]
struct Args {
    command: String,
    peer: u64,
    hosts: u64,
    base_port: u16,
    transport: TransportKind,
    stats_every: u64,
    objects: usize,
    ops: usize,
    seed: u64,
    zipf: f64,
    loss: f64,
    nmax: usize,
    services: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or("missing subcommand: host | drive | demo")?;
    let mut args = Args {
        command,
        peer: 1,
        hosts: 3,
        base_port: 7300,
        transport: TransportKind::Udp,
        stats_every: 5,
        objects: 64,
        ops: 200,
        seed: 2007,
        zipf: 1.0,
        loss: 0.0,
        nmax: 4096,
        services: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        macro_rules! parse {
            ($field:ident, $flag:literal) => {
                args.$field = value($flag)?
                    .parse()
                    .map_err(|e| format!("{}: {e}", $flag))?
            };
        }
        match flag.as_str() {
            "--peer" => parse!(peer, "--peer"),
            "--hosts" => parse!(hosts, "--hosts"),
            "--base-port" => parse!(base_port, "--base-port"),
            "--stats-every" => parse!(stats_every, "--stats-every"),
            "--objects" => parse!(objects, "--objects"),
            "--ops" => parse!(ops, "--ops"),
            "--seed" => parse!(seed, "--seed"),
            "--zipf" => parse!(zipf, "--zipf"),
            "--loss" => parse!(loss, "--loss"),
            "--nmax" => parse!(nmax, "--nmax"),
            "--services" => args.services = true,
            "--transport" => {
                args.transport = match value("--transport")?.as_str() {
                    "udp" => TransportKind::Udp,
                    "tcp" => TransportKind::Tcp,
                    other => return Err(format!("--transport: unknown kind {other:?}")),
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.hosts == 0 {
        return Err("--hosts must be at least 1".into());
    }
    Ok(args)
}

fn addr_of(base_port: u16, peer: u64) -> String {
    format!("127.0.0.1:{}", base_port as u64 + peer)
}

/// Registers every cluster peer's positional address on this endpoint.
fn register_all<T: Transport>(t: &mut T, hosts: u64, base_port: u16) -> Result<(), String> {
    for peer in 0..=hosts {
        if peer != t.local_peer() {
            t.register(peer, &addr_of(base_port, peer))
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn run_host<T: Transport>(mut t: T, args: &Args) -> Result<(), String> {
    register_all(&mut t, args.hosts, args.base_port)?;
    let mut node = HostNode::new(t, args.peer, args.hosts);
    let started = Instant::now();
    let mut last_stats = Instant::now();
    let every = Duration::from_secs(args.stats_every.max(1));
    let mut buf = Vec::new();
    println!(
        "[host {}] serving on {} ({} hosts)",
        args.peer,
        addr_of(args.base_port, args.peer),
        args.hosts
    );
    while !node.is_shutdown() {
        let worked = node.step(&mut buf).map_err(|e| e.to_string())?;
        if !worked {
            std::thread::sleep(Duration::from_micros(200));
        }
        if last_stats.elapsed() >= every {
            last_stats = Instant::now();
            println!(
                "[host {}] t={}s hosted={} ops={} | {}",
                args.peer,
                started.elapsed().as_secs(),
                node.hosted(),
                node.ops_served(),
                node.transport_stats()
            );
        }
    }
    println!(
        "[host {}] shutdown after {}s: hosted={} ops={} | {}",
        args.peer,
        started.elapsed().as_secs(),
        node.hosted(),
        node.ops_served(),
        node.transport_stats()
    );
    Ok(())
}

/// Tallies of one driven workload, printed at the end of a run.
#[derive(Debug, Default)]
struct Tally {
    inserts: u64,
    removes: u64,
    routes: u64,
    queries: u64,
    matches: u64,
    route_hops: u64,
    visited: u64,
    skipped: u64,
    subs: u64,
    pubs: u64,
    delivered: u64,
    kv_puts: u64,
    kv_gets: u64,
    kv_hits: u64,
    kv_deletes: u64,
}

impl Tally {
    fn record(&mut self, outcome: &OpOutcome) {
        match outcome {
            OpOutcome::Inserted(_) => self.inserts += 1,
            OpOutcome::Removed(_) => self.removes += 1,
            OpOutcome::Route { hops, .. } => {
                self.routes += 1;
                self.route_hops += u64::from(*hops);
            }
            OpOutcome::Matches {
                matches, visited, ..
            } => {
                self.queries += 1;
                self.matches += matches.len() as u64;
                self.visited += u64::from(*visited);
            }
            OpOutcome::Subscribed { .. } | OpOutcome::Unsubscribed { .. } => self.subs += 1,
            OpOutcome::Published { delivered, .. } => {
                self.pubs += 1;
                self.delivered += delivered.len() as u64;
            }
            OpOutcome::KvStored { .. } => self.kv_puts += 1,
            OpOutcome::KvFetched { value, .. } => {
                self.kv_gets += 1;
                self.kv_hits += u64::from(value.is_some());
            }
            OpOutcome::KvDropped { .. } => self.kv_deletes += 1,
            OpOutcome::Skipped => self.skipped += 1,
        }
    }
}

fn print_reports(reports: &[HostReport]) {
    for r in reports {
        println!(
            "[drive] host {} served {} ops | {}",
            r.peer, r.ops_served, r.stats
        );
    }
}

fn drive_workload<T: Transport>(driver: &mut Driver<T>, args: &Args) -> Result<Tally, String> {
    let mut points = PointGenerator::new(Distribution::Uniform, args.seed);
    print!("[drive] building {} objects...", args.objects);
    let mut built = 0usize;
    while built < args.objects {
        if driver
            .insert(points.next_point())
            .map_err(|e| e.to_string())?
            .is_some()
        {
            built += 1;
        }
    }
    println!(" done (population {})", driver.population());

    let mix = if args.services {
        // Service-heavy mix: pub/sub and coordinate-keyed KV traffic with
        // enough churn left in to exercise ownership handoff on the wire.
        OpMix::services(35, 35)
    } else {
        OpMix::churn_zipf()
    };
    let mut generator = OpBatchGenerator::new(Distribution::Uniform, args.seed, mix)
        .with_zipf_destinations(args.zipf);
    let batch = generator.batch(driver.population(), args.ops);
    let mut tally = Tally::default();
    let progress_every = (args.ops / 10).max(1);
    let started = Instant::now();
    // The driver keeps an epoch-patched frozen view of its authoritative
    // overlay and cross-checks every distributed route answer against the
    // local frozen walk — a free end-to-end audit of both the cluster
    // protocol and the delta-maintenance path under real churn.
    let mut view: Option<FrozenView> = None;
    let mut scratch = RouteScratch::new();
    let mut snap = SnapshotStats::default();
    let mut verified = 0u64;
    let mut mismatched = 0u64;
    for (i, op) in batch.iter().enumerate() {
        let outcome = driver.apply(op).map_err(|e| e.to_string())?;
        tally.record(&outcome);
        if let (WorkloadOp::Route { from, to }, OpOutcome::Route { owner, hops }) = (op, &outcome) {
            let net = driver.net();
            let n = net.len();
            if n > 0 {
                let from_id = net.id_at(from % n).expect("index below len");
                let to_id = net.id_at(to % n).expect("index below len");
                let target = net.coords(to_id).expect("live object");
                let refresh = match view.as_mut() {
                    None => {
                        view = Some(net.freeze());
                        ViewRefresh::Rebuilt
                    }
                    Some(v) => v.refresh(net),
                };
                snap.absorb(&refresh);
                scratch.delta.clear();
                let frozen = view.as_ref().expect("just built").route_to_point_in(
                    from_id,
                    target,
                    &mut scratch,
                );
                match frozen {
                    Ok((o, h)) if o.0 == *owner && h == *hops => verified += 1,
                    _ => mismatched += 1,
                }
            }
        }
        if (i + 1) % progress_every == 0 {
            println!(
                "[drive] {}/{} ops, population {}, {:.1} ops/s | {} | {snap}",
                i + 1,
                batch.len(),
                driver.population(),
                (i + 1) as f64 / started.elapsed().as_secs_f64().max(1e-9),
                driver.transport_stats()
            );
        }
    }
    println!(
        "[drive] workload done: inserts={} removes={} routes={} (avg hops {:.2}) \
         queries={} (matches={} visited={}) skipped={}",
        tally.inserts,
        tally.removes,
        tally.routes,
        tally.route_hops as f64 / tally.routes.max(1) as f64,
        tally.queries,
        tally.matches,
        tally.visited,
        tally.skipped,
    );
    if args.services {
        println!(
            "[drive] services: sub-ops={} publishes={} (delivered {}) \
             kv puts={} gets={} (hits {}) deletes={}",
            tally.subs,
            tally.pubs,
            tally.delivered,
            tally.kv_puts,
            tally.kv_gets,
            tally.kv_hits,
            tally.kv_deletes,
        );
    }
    println!(
        "[drive] frozen cross-check: {verified} routes verified against the delta-patched \
         view, {mismatched} mismatched | {snap}"
    );
    Ok(tally)
}

fn run_drive<T: Transport>(mut t: T, args: &Args) -> Result<(), String> {
    register_all(&mut t, args.hosts, args.base_port)?;
    let mut driver = Driver::new(
        t,
        args.hosts,
        VoroNetConfig::new(args.nmax).with_seed(args.seed),
    );
    drive_workload(&mut driver, args)?;
    let reports = driver.collect_stats().map_err(|e| e.to_string())?;
    print_reports(&reports);
    driver.shutdown_hosts().map_err(|e| e.to_string())?;
    println!("[drive] driver endpoint | {}", driver.transport_stats());
    Ok(())
}

fn run_demo(args: &Args) -> Result<(), String> {
    let network = if args.loss > 0.0 {
        NetworkModel::new(args.seed, voronet_sim::LatencyModel::Fixed(1)).with_loss(args.loss)
    } else {
        NetworkModel::ideal()
    };
    println!(
        "[demo] in-process cluster: {} hosts over vnet (loss {:.0}%)",
        args.hosts,
        args.loss * 100.0
    );
    let mut cluster = LocalCluster::start(
        args.hosts,
        VoroNetConfig::new(args.nmax).with_seed(args.seed),
        network,
    );
    drive_workload(cluster.driver(), args)?;
    let reports = cluster.shutdown().map_err(|e| e.to_string())?;
    print_reports(&reports);
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "host" => {
            if args.peer == 0 || args.peer > args.hosts {
                return Err(format!(
                    "--peer must be in 1..={} (0 is the driver)",
                    args.hosts
                ));
            }
            let addr = addr_of(args.base_port, args.peer);
            match args.transport {
                TransportKind::Udp => run_host(
                    UdpTransport::bind(args.peer, &addr).map_err(|e| e.to_string())?,
                    args,
                ),
                TransportKind::Tcp => run_host(
                    TcpTransport::bind(args.peer, &addr).map_err(|e| e.to_string())?,
                    args,
                ),
            }
        }
        "drive" => {
            let addr = addr_of(args.base_port, DRIVER_PEER);
            match args.transport {
                TransportKind::Udp => run_drive(
                    UdpTransport::bind(DRIVER_PEER, &addr).map_err(|e| e.to_string())?,
                    args,
                ),
                TransportKind::Tcp => run_drive(
                    TcpTransport::bind(DRIVER_PEER, &addr).map_err(|e| e.to_string())?,
                    args,
                ),
            }
        }
        "demo" => run_demo(args),
        other => Err(format!(
            "unknown subcommand {other:?}; expected host | drive | demo"
        )),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("voronet-node: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("voronet-node {}: {e}", args.command);
            ExitCode::FAILURE
        }
    }
}
