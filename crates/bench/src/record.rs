//! Tiny recorder for the workspace-root benchmark JSON files.
//!
//! Several benches persist their headline numbers to one file
//! (`BENCH_routes.json`) so successive runs can be diffed without parsing
//! Criterion's console output.  Each bench owns one *top-level section* of
//! the file and must not clobber the others, whichever subset of benches
//! ran; [`update_json_section`] reads the existing file, replaces (or
//! appends) the caller's section and rewrites the document.  The vendored
//! serde stand-in has no JSON support, so the top-level splitting is done
//! with a dependency-free scanner.

use std::io;
use std::path::Path;

/// Splits a JSON object document into its top-level `(key, raw value)`
/// pairs, preserving order.  Returns `None` when the content is not a
/// braced object or is too mangled to scan (the caller then starts a
/// fresh document rather than corrupting the old one further).
fn split_top_level(content: &str) -> Option<Vec<(String, String)>> {
    let body = content.trim();
    let inner = body.strip_prefix('{')?.strip_suffix('}')?;
    let mut sections = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Skip whitespace and separators between entries.
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        // Key.
        if bytes[i] != b'"' {
            return None;
        }
        let key_start = i + 1;
        let mut j = key_start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        if j >= bytes.len() {
            return None;
        }
        let key = inner.get(key_start..j)?.to_string();
        i = j + 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        // Value: scan to the next top-level comma, tracking nesting and
        // strings.
        let value_start = i;
        let mut depth = 0i32;
        let mut in_string = false;
        while i < bytes.len() {
            let c = bytes[i];
            if in_string {
                if c == b'\\' {
                    i += 1;
                } else if c == b'"' {
                    in_string = false;
                }
            } else {
                match c {
                    b'"' => in_string = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if depth != 0 || in_string {
            return None;
        }
        let value = inner.get(value_start..i)?.trim().to_string();
        sections.push((key, value));
    }
    Some(sections)
}

/// Replaces (or appends) the top-level section `key` of the JSON object in
/// `path` with `value` (itself a serialized JSON value), preserving every
/// other section.  A missing file starts a fresh document; an existing but
/// unscannable one is reported on stderr before being replaced, so a
/// clobbered sibling section never disappears silently.  The write goes
/// through a sibling temp file + rename, so a killed bench run leaves
/// either the old document or the new one, never a truncated file.
pub fn update_json_section(path: &Path, key: &str, value: &str) -> io::Result<()> {
    let existing = std::fs::read_to_string(path).ok();
    let mut sections = match existing.as_deref() {
        None => Vec::new(),
        Some(content) => match split_top_level(content) {
            Some(sections) => sections,
            None => {
                eprintln!(
                    "{}: existing content is not a scannable JSON object; starting fresh \
                     (other benches' sections are lost)",
                    path.display()
                );
                Vec::new()
            }
        },
    };
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value.trim().to_string(),
        None => sections.push((key.to_string(), value.trim().to_string())),
    }
    let mut out = String::from("{\n");
    for (idx, (k, v)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{k}\": {v}"));
        out.push_str(if idx + 1 < sections.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("}\n");
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_nested_sections() {
        let doc = r#"{
  "a": { "x": 1, "y": { "z": [1, 2, 3] } },
  "b": 4.5,
  "c": "s,tr\"ing"
}"#;
        let sections = split_top_level(doc).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].0, "a");
        assert!(sections[0].1.contains("[1, 2, 3]"));
        assert_eq!(sections[1], ("b".to_string(), "4.5".to_string()));
        assert_eq!(sections[2].1, "\"s,tr\\\"ing\"");
    }

    #[test]
    fn rejects_mangled_documents() {
        assert!(split_top_level("not json").is_none());
        assert!(split_top_level("{ \"a\": { }").is_none());
        assert!(split_top_level("{ a: 1 }").is_none());
    }

    #[test]
    fn update_preserves_other_sections() {
        let dir = std::env::temp_dir().join("voronet_bench_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);

        update_json_section(&path, "route_hot_path", "{ \"ns\": 9000 }").unwrap();
        update_json_section(&path, "batched_ops", "{ \"ns\": 1200 }").unwrap();
        update_json_section(&path, "route_hot_path", "{ \"ns\": 8500 }").unwrap();

        let content = std::fs::read_to_string(&path).unwrap();
        let sections = split_top_level(&content).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "route_hot_path");
        assert!(sections[0].1.contains("8500"));
        assert_eq!(sections[1].0, "batched_ops");
        assert!(sections[1].1.contains("1200"));
        std::fs::remove_file(&path).unwrap();
    }
}
