//! Regenerates the data behind every figure of the VoroNet evaluation.
//!
//! ```text
//! cargo run -p voronet-bench --release --bin figures -- all
//! cargo run -p voronet-bench --release --bin figures -- fig6 --objects 300000 --pairs 100000
//! cargo run -p voronet-bench --release --bin figures -- fig5 --paper
//! ```
//!
//! Output: aligned tables on stdout and CSV files under `results/`.

use std::fs;
use std::path::PathBuf;
use voronet_bench::{
    run_ablation_kleinberg, run_ablation_maintenance, run_fig5, run_fig6, run_fig7, run_fig8,
    ExperimentScale,
};
use voronet_stats::{series_to_csv, series_to_table, Series};

struct Options {
    figures: Vec<String>,
    scale: ExperimentScale,
    out_dir: PathBuf,
}

fn parse_args() -> Options {
    let mut figures = Vec::new();
    let mut scale = ExperimentScale::quick();
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "fig5" | "fig6" | "fig7" | "fig8" | "ablations" | "all" => figures.push(arg),
            "--paper" => scale = ExperimentScale::paper(),
            "--quick" => scale = ExperimentScale::quick(),
            "--smoke" => scale = ExperimentScale::smoke(),
            "--objects" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--objects requires an integer");
                scale = scale.with_objects(n);
            }
            "--pairs" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pairs requires an integer");
                scale = scale.with_pairs(n);
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out requires a path"));
            }
            "--seed" => {
                scale.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures [fig5|fig6|fig7|fig8|ablations|all]* \
                     [--paper|--quick|--smoke] [--objects N] [--pairs N] [--seed S] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Options {
        figures,
        scale,
        out_dir,
    }
}

fn wants(opts: &Options, name: &str) -> bool {
    opts.figures.iter().any(|f| f == name || f == "all")
}

fn save(opts: &Options, name: &str, content: &str) {
    let path = opts.out_dir.join(name);
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  wrote {}", path.display());
    }
}

fn print_series(title: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    print!("{}", series_to_table(series));
}

fn main() {
    let opts = parse_args();
    let _ = fs::create_dir_all(&opts.out_dir);
    println!(
        "VoroNet figure harness: {} objects, {} route pairs, seed {}",
        opts.scale.objects, opts.scale.pairs, opts.scale.seed
    );

    if wants(&opts, "fig5") {
        println!("\nrunning Figure 5 (Voronoi out-degree distribution)...");
        let out = run_fig5(opts.scale);
        for (label, hist) in &out.histograms {
            println!("\n=== Figure 5: |vn(o)| distribution, {label} ===");
            println!("{:>10} {:>12}", "out-degree", "objects");
            for (deg, count) in hist.dense_rows() {
                println!("{deg:>10} {count:>12}");
            }
            println!(
                "mean {:.3}  mode {}  p99 {}",
                hist.mean(),
                hist.mode().unwrap_or(0),
                hist.quantile(0.99).unwrap_or(0)
            );
            let csv: String = std::iter::once("degree,count\n".to_string())
                .chain(
                    hist.dense_rows()
                        .into_iter()
                        .map(|(d, c)| format!("{d},{c}\n")),
                )
                .collect();
            save(
                &opts,
                &format!("fig5_{}.csv", label.replace([' ', '='], "_")),
                &csv,
            );
        }
    }

    let mut fig6_series: Option<Vec<Series>> = None;
    if wants(&opts, "fig6") || wants(&opts, "fig7") {
        println!("\nrunning Figure 6 (route length vs overlay size, 4 distributions)...");
        let series = run_fig6(opts.scale);
        print_series("Figure 6: mean route length vs overlay size", &series);
        save(&opts, "fig6_route_length.csv", &series_to_csv(&series));
        fig6_series = Some(series);
    }

    if wants(&opts, "fig7") {
        let fig6 = fig6_series
            .as_ref()
            .expect("figure 7 is derived from figure 6");
        println!("\nderiving Figure 7 (log H vs log log N)...");
        let fig7 = run_fig7(fig6);
        let transformed: Vec<Series> = fig7.iter().map(|(s, _)| s.clone()).collect();
        print_series("Figure 7: log(hops) vs log(log(objects))", &transformed);
        println!("\nfitted slopes (paper reports x ~= 2):");
        for (s, fit) in &fig7 {
            match fit {
                Some(f) => println!(
                    "  {:<22} slope {:.3}  r^2 {:.3}",
                    s.label, f.slope, f.r_squared
                ),
                None => println!("  {:<22} not enough points to fit", s.label),
            }
        }
        save(&opts, "fig7_loglog.csv", &series_to_csv(&transformed));
    }

    if wants(&opts, "fig8") {
        println!("\nrunning Figure 8 (route length vs number of long links)...");
        let series = run_fig8(opts.scale);
        print_series(
            "Figure 8: mean route length vs long links per object",
            &series,
        );
        save(&opts, "fig8_long_links.csv", &series_to_csv(&series));
    }

    if wants(&opts, "ablations") {
        println!("\nrunning ablations (not in the paper; see DESIGN.md)...");
        let k = run_ablation_kleinberg(opts.scale);
        print_series("Ablation: VoroNet vs Kleinberg grid", &k);
        save(&opts, "ablation_kleinberg.csv", &series_to_csv(&k));
        let m = run_ablation_maintenance(opts.scale);
        print_series("Ablation: per-operation maintenance messages", &m);
        save(&opts, "ablation_maintenance.csv", &series_to_csv(&m));
    }

    println!("\ndone.");
}
