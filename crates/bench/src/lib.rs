//! # voronet-bench
//!
//! Benchmark harness regenerating every figure of the VoroNet evaluation
//! (Section 5 of the paper) plus the ablations listed in DESIGN.md.
//!
//! The same figure runners back two entry points:
//!
//! * the `figures` binary (`cargo run -p voronet-bench --release --bin
//!   figures -- all`), which prints the series and writes CSV files;
//! * the Criterion benches (`cargo bench`), which time representative
//!   slices of each experiment at a fixed small scale.
//!
//! Scale is a parameter everywhere: the paper's 300 000-object runs are the
//! `ExperimentScale::paper()` preset, CI and the default bench output use
//! `ExperimentScale::quick()`.

#![warn(missing_docs)]

pub mod record;

use voronet_core::experiments::{
    build_overlay, long_link_sweep, mean_route_length, route_length_growth, GrowthExperiment,
};
use voronet_core::VoroNetConfig;
use voronet_smallworld::{KleinbergConfig, KleinbergGrid};
use voronet_stats::{fit_loglog_exponent, IntHistogram, LinearFit, Series};
use voronet_workloads::Distribution;

/// Scale parameters shared by all figure runners.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Final overlay size for Figures 5, 6/7 and 8.
    pub objects: usize,
    /// Number of random object pairs per routing measurement.
    pub pairs: usize,
    /// Number of growth samples taken while building the overlay (Figure 6).
    pub samples: usize,
    /// Largest number of long links swept in Figure 8.
    pub max_long_links: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's scale: 300 000 objects, 100 000 route pairs, samples
    /// every 10 000 insertions, 10 long links.
    pub fn paper() -> Self {
        ExperimentScale {
            objects: 300_000,
            pairs: 100_000,
            samples: 30,
            max_long_links: 10,
            seed: 2006,
        }
    }

    /// A laptop/CI scale preserving every qualitative feature of the
    /// figures (minutes instead of hours).
    pub fn quick() -> Self {
        ExperimentScale {
            objects: 20_000,
            pairs: 4_000,
            samples: 10,
            max_long_links: 8,
            seed: 2006,
        }
    }

    /// A tiny scale for smoke tests and Criterion micro-runs.
    pub fn smoke() -> Self {
        ExperimentScale {
            objects: 2_000,
            pairs: 500,
            samples: 4,
            max_long_links: 4,
            seed: 2006,
        }
    }

    /// Overrides the overlay size.
    pub fn with_objects(mut self, n: usize) -> Self {
        self.objects = n.max(10);
        self
    }

    /// Overrides the number of measured route pairs.
    pub fn with_pairs(mut self, pairs: usize) -> Self {
        self.pairs = pairs.max(10);
        self
    }

    fn growth(&self, dist_seed_offset: u64) -> GrowthExperiment {
        GrowthExperiment {
            max_objects: self.objects,
            step: (self.objects / self.samples).max(1),
            pairs_per_sample: self.pairs,
            long_links: 1,
            seed: self.seed + dist_seed_offset,
        }
    }
}

/// Output of the Figure 5 runner: one degree histogram per distribution.
#[derive(Debug, Clone)]
pub struct Fig5Output {
    /// `(distribution label, out-degree histogram)` pairs.
    pub histograms: Vec<(String, IntHistogram)>,
}

/// Figure 5: distribution of the Voronoi out-degree `|vn(o)|` for the
/// uniform and highly skewed (α = 5) workloads.
pub fn run_fig5(scale: ExperimentScale) -> Fig5Output {
    let dists = [Distribution::Uniform, Distribution::PowerLaw { alpha: 5.0 }];
    let histograms = run_per_distribution(&dists, |dist| {
        let cfg = VoroNetConfig::new(scale.objects).with_seed(scale.seed);
        let (net, _) = build_overlay(dist, scale.objects, cfg);
        (dist.label(), net.degree_histogram())
    });
    Fig5Output { histograms }
}

/// Figure 6: mean greedy route length as a function of the overlay size for
/// the four distributions of the paper (uniform, α = 1, 2, 5).
pub fn run_fig6(scale: ExperimentScale) -> Vec<Series> {
    let dists = Distribution::paper_set();
    run_per_distribution(&dists, |dist| {
        let offset = match dist {
            Distribution::Uniform => 0,
            Distribution::PowerLaw { alpha } => alpha as u64,
            _ => 17,
        };
        route_length_growth(dist, scale.growth(offset))
    })
}

/// Figure 7: the `log H` vs `log log N` transformation of the Figure 6
/// series, together with the fitted slope per distribution (≈ 2 at paper
/// scale, confirming `O(log² N)` routing).
pub fn run_fig7(fig6: &[Series]) -> Vec<(Series, Option<LinearFit>)> {
    fig6.iter()
        .map(|s| {
            let transformed = Series {
                label: s.label.clone(),
                points: s
                    .points
                    .iter()
                    .filter(|&&(x, y)| x > std::f64::consts::E && y > 0.0)
                    .map(|&(x, y)| (x.ln().ln(), y.ln()))
                    .collect(),
            };
            let fit = fit_loglog_exponent(&s.points);
            (transformed, fit)
        })
        .collect()
}

/// Figure 8: mean route length at full size as a function of the number of
/// long-range links (1..=max), for the uniform and α = 5 workloads.
pub fn run_fig8(scale: ExperimentScale) -> Vec<Series> {
    let dists = [Distribution::Uniform, Distribution::PowerLaw { alpha: 5.0 }];
    run_per_distribution(&dists, |dist| {
        long_link_sweep(
            dist,
            scale.objects,
            scale.max_long_links,
            scale.pairs,
            scale.seed,
        )
    })
}

/// Ablation: VoroNet versus the Kleinberg grid baseline at equal population,
/// one series per structure.
pub fn run_ablation_kleinberg(scale: ExperimentScale) -> Vec<Series> {
    let mut grid_series = Series::new("kleinberg grid (s=2)");
    let mut net_series = Series::new("voronet (uniform)");
    let sides: Vec<u32> = [16u32, 24, 32, 48, 64]
        .into_iter()
        .filter(|&s| (s * s) as usize <= scale.objects.max(256))
        .collect();
    for side in sides {
        let population = (side * side) as usize;
        let grid = KleinbergGrid::build(KleinbergConfig::navigable(side), scale.seed);
        grid_series.push(
            population as f64,
            grid.mean_route_length(scale.pairs.min(2_000), scale.seed),
        );
        let cfg = VoroNetConfig::new(population).with_seed(scale.seed);
        let (mut net, ids) = build_overlay(Distribution::Uniform, population, cfg);
        net_series.push(
            population as f64,
            mean_route_length(&mut net, &ids, scale.pairs.min(2_000), scale.seed ^ 1),
        );
    }
    vec![grid_series, net_series]
}

/// Ablation: per-operation maintenance message cost (join and leave) as the
/// overlay grows — the O(1) claim of Section 4.2.
pub fn run_ablation_maintenance(scale: ExperimentScale) -> Vec<Series> {
    let mut join_series = Series::new("join messages (non-routing)");
    let mut leave_series = Series::new("leave messages");
    let sizes = [
        scale.objects / 8,
        scale.objects / 4,
        scale.objects / 2,
        scale.objects,
    ];
    for &n in sizes.iter().filter(|&&n| n >= 50) {
        let cfg = VoroNetConfig::new(n).with_seed(scale.seed);
        let (mut net, ids) = build_overlay(Distribution::Uniform, n, cfg);
        let mut qg = voronet_workloads::QueryGenerator::new(scale.seed);
        let trials = 50usize;
        let mut join_msgs = 0.0;
        let mut joins = 0.0f64;
        for _ in 0..trials {
            let p = qg.point();
            if let Ok(r) = net.insert(p) {
                join_msgs += r.messages as f64 - (r.routing_hops + r.long_link_hops) as f64;
                joins += 1.0;
            }
        }
        let mut leave_msgs = 0.0;
        for &id in ids.iter().take(trials) {
            leave_msgs += net.remove(id).unwrap().messages as f64;
        }
        join_series.push(n as f64, join_msgs / joins.max(1.0));
        leave_series.push(n as f64, leave_msgs / trials as f64);
    }
    vec![join_series, leave_series]
}

/// Runs `f` once per distribution, in parallel (one thread per
/// distribution; the experiments are completely independent).
fn run_per_distribution<T: Send>(
    dists: &[Distribution],
    f: impl Fn(Distribution) -> T + Sync,
) -> Vec<T> {
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(dists.len(), || None);
    std::thread::scope(|scope| {
        for (slot, &dist) in out.iter_mut().zip(dists.iter()) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(dist));
            });
        }
    });
    out.into_iter()
        .map(|t| t.expect("worker filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            objects: 400,
            pairs: 150,
            samples: 3,
            max_long_links: 2,
            seed: 7,
        }
    }

    #[test]
    fn fig5_runner_produces_centred_histograms() {
        let out = run_fig5(tiny());
        assert_eq!(out.histograms.len(), 2);
        for (label, h) in &out.histograms {
            assert_eq!(h.total(), 400, "{label}");
            let mode = h.mode().unwrap();
            assert!((4..=8).contains(&mode), "{label}: mode {mode}");
        }
    }

    #[test]
    fn fig6_and_fig7_runners_are_consistent() {
        let fig6 = run_fig6(tiny());
        assert_eq!(fig6.len(), 4);
        for s in &fig6 {
            assert_eq!(s.len(), 3, "{}", s.label);
        }
        let fig7 = run_fig7(&fig6);
        assert_eq!(fig7.len(), 4);
        for (s, _fit) in &fig7 {
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn fig8_runner_sweeps_long_links() {
        let out = run_fig8(tiny());
        assert_eq!(out.len(), 2);
        for s in &out {
            assert_eq!(s.len(), 2);
            assert!(s.points[1].1 <= s.points[0].1 * 1.2);
        }
    }

    #[test]
    fn ablation_runners_produce_series() {
        let scale = tiny();
        let k = run_ablation_kleinberg(scale);
        assert_eq!(k.len(), 2);
        assert!(!k[0].is_empty());
        let m = run_ablation_maintenance(ExperimentScale {
            objects: 400,
            ..scale
        });
        assert_eq!(m.len(), 2);
        assert!(!m[0].is_empty());
    }

    #[test]
    fn scale_presets() {
        assert_eq!(ExperimentScale::paper().objects, 300_000);
        assert!(ExperimentScale::quick().objects < ExperimentScale::paper().objects);
        let s = ExperimentScale::smoke().with_objects(5).with_pairs(3);
        assert_eq!(s.objects, 10);
        assert_eq!(s.pairs, 10);
    }
}
