//! Criterion bench for overlay maintenance: join and leave cost at steady
//! state, and the close-neighbour ablation (routing with and without the
//! `cn(o)` sets under extreme clustering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use voronet_core::experiments::build_overlay;
use voronet_core::{VoroNet, VoroNetConfig};
use voronet_workloads::{Distribution, PointGenerator, QueryGenerator};

fn bench_join_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(20);
    for n in [2_000usize, 8_000] {
        let cfg = VoroNetConfig::new(n).with_seed(2006);
        let (mut net, _) = build_overlay(Distribution::Uniform, n, cfg);
        let mut gen = PointGenerator::new(Distribution::Uniform, 99);
        group.bench_with_input(BenchmarkId::new("join_then_leave", n), &n, |b, _| {
            b.iter(|| {
                let p = gen.next_point();
                if let Ok(r) = net.insert(p) {
                    black_box(r.messages);
                    net.remove(r.id).expect("just-joined object is removable");
                }
            });
        });
    }
    group.finish();
}

fn bench_clustered_routing(c: &mut Criterion) {
    // Ablation `ablation_close_neighbours`: routing under extreme clustering,
    // where the close-neighbour sets are what keeps hops bounded.
    let mut group = c.benchmark_group("clustered_routing");
    group.sample_size(10);
    let n = 3_000usize;
    let dist = Distribution::Clusters {
        clusters: 3,
        spread: 0.01,
    };
    let cfg = VoroNetConfig::new(n).with_seed(11);
    let (mut net, ids) = build_overlay(dist, n, cfg);
    let mut qg = QueryGenerator::new(3);
    let pairs: Vec<_> = qg
        .object_pairs(ids.len(), 300)
        .into_iter()
        .map(|(a, b)| (ids[a], ids[b]))
        .collect();
    group.bench_function("greedy_routes_3_clusters", |b| {
        b.iter(|| black_box(net.measure_routes(&pairs).mean()));
    });
    group.finish();
    let _: &VoroNet = &net;
}

criterion_group!(benches, bench_join_leave, bench_clustered_routing);
criterion_main!(benches);
