//! Operation latency under faults: p50/p99 of distributed route and KV
//! get over a 3-host `FaultyCluster` in three modes — healthy link, 10%
//! frame loss, and one host crash-stopped (reads served degraded from
//! Voronoi replicas, routes that need the dead host failing fast).
//!
//! Latencies are wall-clock per driver op, including the retry/backoff
//! machinery (`RetryPolicy::tight`), so the loss and crash columns show
//! the real cost of retransmission and of the failure detector's
//! fail-fast path, not just the happy-path frame exchange.  Results
//! land in the `fault_modes` section of `BENCH_routes.json`; smoke mode
//! (`VORONET_SMOKE=1`, CI) shrinks the sample counts and skips the
//! JSON record.

use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::path::Path;
use std::time::{Duration, Instant};
use voronet_core::VoroNetConfig;
use voronet_net::{
    host_of, FaultyCluster, HostState, LinkFaults, Liveness, OpOutcome, RetryPolicy,
};
use voronet_workloads::{Distribution, PointGenerator};

const SEED: u64 = 4242;
const HOSTS: u64 = 3;

fn smoke() -> bool {
    std::env::var_os("VORONET_SMOKE").is_some_and(|v| v != "0")
}

fn overlay_size() -> usize {
    if smoke() {
        24
    } else {
        64
    }
}

fn samples() -> usize {
    if smoke() {
        40
    } else {
        200
    }
}

fn kv_keys() -> usize {
    if smoke() {
        32
    } else {
        96
    }
}

/// Per-mode measurement: op latency percentiles plus the realised
/// success rate (crashed-host routes legitimately fail fast).
struct ModeResult {
    name: &'static str,
    route_p50_us: f64,
    route_p99_us: f64,
    route_ok: usize,
    get_p50_us: f64,
    get_p99_us: f64,
    get_ok: usize,
    degraded_reads: u64,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Builds a populated faulty cluster, optionally crashes one host
/// (converging the failure detector first), then samples route and KV
/// get latencies from surviving-host origins.
fn run_mode(name: &'static str, link: LinkFaults, crash: bool) -> ModeResult {
    let mut cluster = FaultyCluster::start(
        HOSTS,
        VoroNetConfig::new(512).with_seed(SEED),
        link,
        SEED ^ name.len() as u64,
    );
    cluster.driver().set_retry_policy(RetryPolicy::tight());
    cluster.driver().set_liveness(Liveness::tight());
    let points =
        PointGenerator::new(Distribution::Uniform, SEED ^ 0xF0).take_points(overlay_size());
    for &p in &points {
        cluster.driver().insert(p).expect("insert");
    }
    for key in 0..kv_keys() as u64 {
        cluster
            .driver()
            .kv_put(0, key, key * 3 + 1)
            .expect("kv_put");
    }

    let crashed_host = if crash {
        // Crash the host owning object 1's cell and converge detection.
        let victim = host_of(1, HOSTS);
        cluster.ctl().crash(victim);
        let deadline = Instant::now() + Duration::from_secs(15);
        while cluster.driver().host_state(victim) != HostState::Dead {
            assert!(Instant::now() < deadline, "failure detector stalled");
            cluster.driver().heartbeat().expect("heartbeat");
            std::thread::sleep(Duration::from_millis(2));
        }
        Some(victim)
    } else {
        None
    };

    // Origins (and route targets) on surviving hosts only: the dead
    // host's fail-fast path is measured by the in-process tests; here we
    // want the latency of ops the cluster *can* serve.
    let survivors: Vec<usize> = (0..cluster.driver().population())
        .filter(|&i| {
            let id = cluster.driver().net().id_at(i).unwrap().0;
            Some(host_of(id, HOSTS)) != crashed_host
        })
        .collect();
    assert!(survivors.len() >= 2, "need surviving route endpoints");

    let mut rng = StdRng::seed_from_u64(SEED ^ 0xBE);
    let mut route_us = Vec::new();
    for _ in 0..samples() {
        let from = survivors[rng.random_range(0..survivors.len())];
        let to = survivors[rng.random_range(0..survivors.len())];
        if from == to {
            continue;
        }
        let t0 = Instant::now();
        if cluster.driver().route_indices(from, to).is_ok() {
            route_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    let mut get_us = Vec::new();
    for _ in 0..samples() {
        let from = survivors[rng.random_range(0..survivors.len())];
        let key = rng.random_range(0..kv_keys() as u64);
        let t0 = Instant::now();
        if let Ok(OpOutcome::KvFetched { value, .. }) = cluster.driver().kv_get(from, key) {
            get_us.push(t0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(value, Some(key * 3 + 1), "acked write must read back");
        }
    }

    route_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    get_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let result = ModeResult {
        name,
        route_p50_us: percentile(&route_us, 0.5),
        route_p99_us: percentile(&route_us, 0.99),
        route_ok: route_us.len(),
        get_p50_us: percentile(&get_us, 0.5),
        get_p99_us: percentile(&get_us, 0.99),
        get_ok: get_us.len(),
        degraded_reads: cluster.driver().cluster_stats().degraded_reads,
    };
    assert!(result.get_ok > 0, "every mode must serve some reads");
    cluster.ctl().heal_all();
    let _ = cluster.shutdown();
    result
}

fn fault_modes(c: &mut Criterion) {
    let modes = [
        ("healthy", LinkFaults::default(), false),
        ("loss_10pct", LinkFaults::lossy(0.10), false),
        ("one_host_crashed", LinkFaults::default(), true),
    ];
    let mut results = Vec::new();
    for (name, link, crash) in modes {
        let r = run_mode(name, link, crash);
        println!(
            "fault_modes {}: route p50 {:.0}us p99 {:.0}us ({} ok), \
             kv_get p50 {:.0}us p99 {:.0}us ({} ok, {} degraded)",
            r.name,
            r.route_p50_us,
            r.route_p99_us,
            r.route_ok,
            r.get_p50_us,
            r.get_p99_us,
            r.get_ok,
            r.degraded_reads
        );
        results.push(r);
    }

    // Regression gate for the retry-stall fix: before fast retransmit
    // the driver sent each request once and waited out the full jittered
    // attempt timeout, so 10% frame loss pushed the kv_get median from
    // ~16µs to ~107ms (~6600×).  With retransmit the lossy median must
    // stay within 100× of healthy (smoke runs are looser — tiny sample
    // counts make the healthy median itself noisy — and an absolute
    // low-millisecond median always passes).
    let healthy = results.iter().find(|r| r.name == "healthy").unwrap();
    let lossy = results.iter().find(|r| r.name == "loss_10pct").unwrap();
    let ratio = lossy.get_p50_us / healthy.get_p50_us;
    let max_ratio = if smoke() { 400.0 } else { 100.0 };
    assert!(
        ratio <= max_ratio || lossy.get_p50_us < 2_000.0,
        "lossy kv_get p50 {:.1}µs is {ratio:.0}× the healthy {:.1}µs — \
         the fast-retransmit path regressed",
        lossy.get_p50_us,
        healthy.get_p50_us
    );

    let mut group = c.benchmark_group("fault_modes");
    group.sample_size(10);
    group.bench_function("healthy_route_pass", |b| {
        b.iter(|| black_box(run_mode("healthy", LinkFaults::default(), false).route_p50_us));
    });
    group.finish();

    if smoke() {
        println!("smoke mode: JSON record skipped");
        return;
    }
    let mode_sections: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "\"{}\": {{ \"route_p50_us\": {:.1}, \"route_p99_us\": {:.1}, \
                 \"route_ok\": {}, \"kv_get_p50_us\": {:.1}, \"kv_get_p99_us\": {:.1}, \
                 \"kv_get_ok\": {}, \"degraded_reads\": {} }}",
                r.name,
                r.route_p50_us,
                r.route_p99_us,
                r.route_ok,
                r.get_p50_us,
                r.get_p99_us,
                r.get_ok,
                r.degraded_reads
            )
        })
        .collect();
    let section = format!(
        "{{ \"hosts\": {HOSTS}, \"overlay_size\": {}, \"samples_per_op\": {}, \
         \"kv_keys\": {}, \"modes\": {{ {} }} }}",
        overlay_size(),
        samples(),
        kv_keys(),
        mode_sections.join(", ")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routes.json");
    match voronet_bench::record::update_json_section(Path::new(out), "fault_modes", &section) {
        Err(e) => eprintln!("could not write {out}: {e}"),
        Ok(()) => println!("recorded fault_modes results to {out}"),
    }
}

criterion_group!(benches, fault_modes);

fn main() {
    benches();
}
