//! Mixed read/write traffic over the epoch-patched frozen read path:
//! `OpMix::mixed` batches (99:1, 95:5, 80:20 read/write) on a pre-built
//! 10,000-node overlay, submitted through `SyncEngine::apply_batch`
//! under both view-maintenance policies — the incremental delta-patch
//! path against rebuild-per-barrier as the baseline.
//!
//! This is the measurement behind the tentpole claim of the epoch work:
//! the ~5× frozen read path only pays off under sustained read traffic
//! if interleaved writers don't force a full snapshot rebuild at every
//! barrier.  The bench records ns/op for both policies and the
//! incremental speedup per mix as the `mixed_ops` section of
//! `BENCH_routes.json`, together with the snapshot economics
//! (patches / rebuilds / patched rows), and **asserts** that both
//! policies produce element-wise identical results.
//!
//! Smoke mode (`VORONET_SMOKE=1`, used by CI) shrinks the overlay and
//! the batches so the bench finishes in seconds, keeps the determinism
//! assertions, and skips the JSON record.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use voronet_api::{resolve_workload, Op, Overlay, SyncEngine, ViewMaintenance};
use voronet_core::experiments::build_overlay;
use voronet_core::{SnapshotStats, VoroNet, VoroNetConfig};
use voronet_workloads::{Distribution, OpBatchGenerator, OpMix};

const SEED: u64 = 2007;
const READ_PCTS: [u32; 3] = [99, 95, 80];

fn smoke() -> bool {
    std::env::var_os("VORONET_SMOKE").is_some_and(|v| v != "0")
}

fn overlay_size() -> usize {
    if smoke() {
        1_500
    } else {
        10_000
    }
}

fn batch_size() -> usize {
    if smoke() {
        256
    } else {
        1_024
    }
}

fn batch_count() -> usize {
    if smoke() {
        3
    } else {
        6
    }
}

fn build_net() -> VoroNet {
    let n = overlay_size();
    let cfg = VoroNetConfig::new(n).with_seed(SEED);
    build_overlay(Distribution::Uniform, n, cfg).0
}

/// Pre-resolves the whole mixed script against an untimed scratch replay
/// of the same overlay, so both timed engines execute identical id-named
/// batches (the scratch engine evolves exactly as the timed ones will).
fn scripts_for(net: &VoroNet, read_pct: u32) -> Vec<Vec<Op>> {
    let mut scratch = SyncEngine::from_net(net.clone());
    let mut gen = OpBatchGenerator::new(
        Distribution::Uniform,
        SEED ^ u64::from(read_pct),
        OpMix::mixed(read_pct),
    )
    .with_zipf_destinations(0.9);
    (0..batch_count())
        .map(|_| {
            let ops = resolve_workload(&scratch, &gen.batch(scratch.len(), batch_size()));
            scratch.apply_batch(&ops);
            ops
        })
        .collect()
}

/// Replays the full batch sequence on a fresh engine under `policy`;
/// returns (ns/op, all results in order, snapshot economics).
fn run_policy(
    net: &VoroNet,
    scripts: &[Vec<Op>],
    policy: ViewMaintenance,
) -> (f64, Vec<voronet_api::OpResult>, SnapshotStats) {
    let mut engine = SyncEngine::from_net(net.clone())
        .with_threads(4)
        .with_view_maintenance(policy);
    let total: usize = scripts.iter().map(Vec::len).sum();
    let mut results = Vec::with_capacity(total);
    let start = Instant::now();
    for ops in scripts {
        results.extend(engine.apply_batch(ops));
    }
    let ns = start.elapsed().as_nanos() as f64 / total as f64;
    (ns, results, engine.snapshot_stats())
}

fn mixed_ops(c: &mut Criterion) {
    let net = build_net();

    let mut group = c.benchmark_group("mixed_ops");
    group.sample_size(10);
    let mut sections = Vec::new();
    for &pct in &READ_PCTS {
        let scripts = scripts_for(&net, pct);
        let (inc_ns, inc_results, inc_snap) =
            run_policy(&net, &scripts, ViewMaintenance::Incremental);
        let (reb_ns, reb_results, reb_snap) =
            run_policy(&net, &scripts, ViewMaintenance::RebuildPerBarrier);
        assert_eq!(
            inc_results,
            reb_results,
            "{pct}:{} mix: both maintenance policies must produce identical results",
            100 - pct
        );
        assert!(
            inc_snap.delta_patches > 0,
            "{pct}:{} mix: the incremental engine never took the patch path: {inc_snap}",
            100 - pct
        );
        assert_eq!(
            reb_snap.delta_patches, 0,
            "rebuild-per-barrier must never patch: {reb_snap}"
        );
        let speedup = reb_ns / inc_ns;
        println!(
            "mixed_ops {pct}:{}: incremental {inc_ns:.0} ns/op ({inc_snap}), \
             rebuild-per-barrier {reb_ns:.0} ns/op ({reb_snap}), speedup {speedup:.2}x",
            100 - pct
        );
        sections.push(format!(
            "\"{pct}\": {{ \"incremental_ns_per_op\": {inc_ns:.1}, \
             \"rebuild_per_barrier_ns_per_op\": {reb_ns:.1}, \"speedup\": {speedup:.2}, \
             \"delta_patches\": {}, \"patched_nodes\": {}, \"full_rebuilds\": {}, \
             \"views_reused\": {} }}",
            inc_snap.delta_patches, inc_snap.patched_nodes, inc_snap.full_rebuilds, inc_snap.reused
        ));

        // Criterion timing for the 95:5 headline mix only (each sample
        // replays the whole sequence from a fresh engine clone, so the
        // mutation script stays applicable).
        if pct == 95 {
            for (policy, label) in [
                (ViewMaintenance::Incremental, "incremental"),
                (ViewMaintenance::RebuildPerBarrier, "rebuild_per_barrier"),
            ] {
                group.bench_function(BenchmarkId::new("replay_95_5", label), |b| {
                    b.iter(|| black_box(run_policy(&net, &scripts, policy).0));
                });
            }
        }
    }
    group.finish();

    if smoke() {
        println!("smoke mode: determinism asserted, JSON record skipped");
        return;
    }
    let section = format!(
        "{{ \"overlay_size\": {}, \"batch\": {}, \"batches\": {}, \"threads\": 4, \
         \"mixes\": {{ {} }}, \"results_identical\": true }}",
        overlay_size(),
        batch_size(),
        batch_count(),
        sections.join(", ")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routes.json");
    match voronet_bench::record::update_json_section(Path::new(out), "mixed_ops", &section) {
        Err(e) => eprintln!("could not write {out}: {e}"),
        Ok(()) => println!("recorded mixed_ops results to {out}"),
    }
}

criterion_group!(benches, mixed_ops);

fn main() {
    benches();
}
