//! Service-layer operation costs over a pre-built overlay: region
//! publish fan-out (resolution rides the area flood, so cost scales with
//! the region's cell footprint) and coordinate-keyed KV put/get (one
//! greedy route plus a map touch each).
//!
//! A quarter of the population subscribes with small random regions,
//! then publishes sweep three region sides — small (cell-sized), medium
//! and large — timing ns/publish and the realised delivery fan-out.
//! KV cost is measured as ns/op over a fill pass, an overwrite pass and
//! a Zipf-skewed read pass.  Everything lands in the `services` section
//! of `BENCH_routes.json`; smoke mode (`VORONET_SMOKE=1`, CI) shrinks
//! the overlay and skips the JSON record.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use voronet_api::{OpResult, Overlay, ServiceOp, ServiceResult, SyncEngine};
use voronet_core::experiments::build_overlay;
use voronet_core::VoroNetConfig;
use voronet_geom::{Point2, Rect};
use voronet_services::ServiceEngine;
use voronet_workloads::Distribution;

const SEED: u64 = 2007;
const REGION_SIDES: [f64; 3] = [0.05, 0.2, 0.5];

fn smoke() -> bool {
    std::env::var_os("VORONET_SMOKE").is_some_and(|v| v != "0")
}

fn overlay_size() -> usize {
    if smoke() {
        800
    } else {
        5_000
    }
}

fn publishes() -> usize {
    if smoke() {
        50
    } else {
        200
    }
}

fn kv_keys() -> usize {
    if smoke() {
        1_000
    } else {
        8_192
    }
}

fn build_engine() -> ServiceEngine<SyncEngine> {
    let n = overlay_size();
    let cfg = VoroNetConfig::new(n).with_seed(SEED);
    let net = build_overlay(Distribution::Uniform, n, cfg).0;
    let mut engine = ServiceEngine::new(SyncEngine::from_net(net));
    // Every 4th object subscribes to a small region around a random
    // centre, so publishes have real subscriber sets to resolve.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5B);
    for i in (0..engine.len()).step_by(4) {
        let id = engine.id_at(i).expect("dense index");
        let c = Point2::new(rng.random(), rng.random());
        let half = 0.05;
        let region = Rect::new(
            Point2::new((c.x - half).max(0.0), (c.y - half).max(0.0)),
            Point2::new((c.x + half).min(1.0), (c.y + half).min(1.0)),
        );
        engine.exec_service(ServiceOp::Subscribe { id, region });
    }
    engine
}

/// Times `publishes()` randomly-centred publishes of side `side`;
/// returns (ns per publish, mean delivered fan-out, mean flood visited).
fn run_publishes(engine: &mut ServiceEngine<SyncEngine>, side: f64) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(SEED ^ side.to_bits());
    let count = publishes();
    let mut delivered = 0u64;
    let mut visited = 0u64;
    let start = Instant::now();
    for p in 0..count {
        let from = engine.id_at(p % engine.len()).expect("dense index");
        let c = Point2::new(rng.random(), rng.random());
        let half = side / 2.0;
        let region = Rect::new(
            Point2::new((c.x - half).max(0.0), (c.y - half).max(0.0)),
            Point2::new((c.x + half).min(1.0), (c.y + half).min(1.0)),
        );
        match engine.exec_service(ServiceOp::Publish {
            from,
            region,
            payload: p as u64,
        }) {
            OpResult::Service(ServiceResult::Published(out)) => {
                delivered += out.delivered.len() as u64;
                visited += out.visited as u64;
            }
            other => panic!("publish failed: {other:?}"),
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / count as f64;
    (
        ns,
        delivered as f64 / count as f64,
        visited as f64 / count as f64,
    )
}

/// Times a KV pass over `kv_keys()` keys; `read` switches get vs put.
/// Reads are Zipf-ish skewed (quadratic bias to low key indices).
fn run_kv(engine: &mut ServiceEngine<SyncEngine>, pass: u64, read: bool) -> f64 {
    let mut rng = StdRng::seed_from_u64(SEED ^ pass);
    let keys = kv_keys();
    let start = Instant::now();
    for i in 0..keys {
        let from = engine.id_at(i % engine.len()).expect("dense index");
        let key = if read {
            let r: f64 = rng.random();
            (r * r * keys as f64) as u64
        } else {
            i as u64
        };
        let result = if read {
            engine.exec_service(ServiceOp::KvGet { from, key })
        } else {
            engine.exec_service(ServiceOp::KvPut {
                from,
                key,
                value: pass ^ key,
            })
        };
        match result {
            OpResult::Service(_) => {}
            other => panic!("kv op failed: {other:?}"),
        }
    }
    start.elapsed().as_nanos() as f64 / keys as f64
}

fn services_ops(c: &mut Criterion) {
    let mut engine = build_engine();

    let mut group = c.benchmark_group("services_ops");
    group.sample_size(10);

    let mut publish_sections = Vec::new();
    for &side in &REGION_SIDES {
        let (ns, fanout, visited) = run_publishes(&mut engine, side);
        println!(
            "services_ops publish side {side}: {ns:.0} ns/publish, fan-out {fanout:.1}, \
             flood visited {visited:.1}"
        );
        publish_sections.push(format!(
            "\"{side}\": {{ \"ns_per_publish\": {ns:.1}, \"mean_fanout\": {fanout:.2}, \
             \"mean_visited\": {visited:.2} }}"
        ));
    }

    let fill_ns = run_kv(&mut engine, 1, false);
    let overwrite_ns = run_kv(&mut engine, 2, false);
    let get_ns = run_kv(&mut engine, 3, true);
    println!(
        "services_ops kv: fill {fill_ns:.0} ns/put, overwrite {overwrite_ns:.0} ns/put, \
         get {get_ns:.0} ns/get"
    );

    group.bench_function(BenchmarkId::new("publish", "side_0.2"), |b| {
        b.iter(|| black_box(run_publishes(&mut engine, 0.2).0));
    });
    group.bench_function(BenchmarkId::new("kv", "get"), |b| {
        b.iter(|| black_box(run_kv(&mut engine, 4, true)));
    });
    group.finish();

    if smoke() {
        println!("smoke mode: JSON record skipped");
        return;
    }
    let section = format!(
        "{{ \"overlay_size\": {}, \"subscribers\": {}, \"publishes_per_side\": {}, \
         \"kv_keys\": {}, \"publish\": {{ {} }}, \"kv\": {{ \"fill_ns_per_put\": {fill_ns:.1}, \
         \"overwrite_ns_per_put\": {overwrite_ns:.1}, \"get_ns_per_get\": {get_ns:.1} }} }}",
        overlay_size(),
        engine.service_state().subscriptions.len(),
        publishes(),
        kv_keys(),
        publish_sections.join(", ")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routes.json");
    match voronet_bench::record::update_json_section(Path::new(out), "services", &section) {
        Err(e) => eprintln!("could not write {out}: {e}"),
        Ok(()) => println!("recorded services results to {out}"),
    }
}

criterion_group!(benches, services_ops);

fn main() {
    benches();
}
