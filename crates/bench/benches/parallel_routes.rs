//! The parallel read path: 4096-route batches over a pre-built
//! 10,000-node overlay, submitted through `SyncEngine::apply_batch` at
//! 1, 2, 4 and 8 worker threads, against the pre-parallel sequential
//! per-op path as the baseline.
//!
//! Besides the Criterion console output, the bench records its headline
//! numbers as the `parallel_ops` section of `BENCH_routes.json` and
//! **asserts** that every thread count reproduces the sequential results
//! element-wise — so a thread-pool regression fails the run instead of
//! silently shipping wrong numbers.
//!
//! Smoke mode (`VORONET_SMOKE=1`, used by CI) shrinks the overlay and the
//! batch so the whole bench finishes in seconds, keeps every determinism
//! assertion, and skips the JSON record (small-size numbers would clobber
//! the full-size section).

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use voronet_api::{Op, Overlay, SyncEngine};
use voronet_core::experiments::build_overlay;
use voronet_core::{VoroNet, VoroNetConfig};
use voronet_workloads::{Distribution, QueryGenerator};

const SEED: u64 = 2006;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var_os("VORONET_SMOKE").is_some_and(|v| v != "0")
}

fn overlay_size() -> usize {
    if smoke() {
        1_500
    } else {
        10_000
    }
}

fn batch_size() -> usize {
    if smoke() {
        512
    } else {
        4_096
    }
}

fn build_net() -> VoroNet {
    let n = overlay_size();
    let cfg = VoroNetConfig::new(n).with_seed(SEED);
    build_overlay(Distribution::Uniform, n, cfg).0
}

fn route_batch(net: &VoroNet, len: usize, seed: u64) -> Vec<Op> {
    let ids: Vec<_> = net.ids().collect();
    let mut qg = QueryGenerator::new(seed);
    (0..len)
        .map(|_| {
            let (a, b) = qg.object_pair(ids.len());
            Op::RouteBetween {
                from: ids[a],
                to: ids[b],
            }
        })
        .collect()
}

/// One warmed, timed `apply_batch` pass; returns (ns/op, results).
fn time_batch(engine: &mut SyncEngine, ops: &[Op]) -> (f64, Vec<voronet_api::OpResult>) {
    engine.apply_batch(ops);
    let start = Instant::now();
    let results = engine.apply_batch(ops);
    let ns = start.elapsed().as_nanos() as f64 / ops.len() as f64;
    (ns, results)
}

fn parallel_routes(c: &mut Criterion) {
    let net = build_net();
    let ops = route_batch(&net, batch_size(), 42);

    // Baseline: the pre-parallel sequential submission path (per-op
    // `apply`, inline accounting) — the number the parallel path is
    // measured against.
    let mut sequential = SyncEngine::from_net(net.clone()).with_threads(1);
    for op in &ops {
        black_box(sequential.apply(op));
    }
    let start = Instant::now();
    let reference: Vec<_> = ops.iter().map(|op| sequential.apply(op)).collect();
    let sequential_ns = start.elapsed().as_nanos() as f64 / ops.len() as f64;

    let mut group = c.benchmark_group("parallel_routes");
    group.sample_size(10);
    let mut per_thread_ns = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut engine = SyncEngine::from_net(net.clone()).with_threads(threads);
        let (ns, results) = time_batch(&mut engine, &ops);
        assert_eq!(
            results, reference,
            "frozen-view batch at {threads} thread(s) must reproduce the sequential results"
        );
        per_thread_ns.push((threads, ns));
        group.bench_function(BenchmarkId::new("route_batch", threads), |b| {
            b.iter(|| black_box(engine.apply_batch(&ops)));
        });
    }
    group.finish();

    let ns_at = |threads: usize| {
        per_thread_ns
            .iter()
            .find(|&&(t, _)| t == threads)
            .expect("THREAD_COUNTS covers this count")
            .1
    };
    let t1 = ns_at(1);
    let t4 = ns_at(4);
    println!(
        "parallel_routes: sequential {sequential_ns:.0} ns/op, frozen 1T {t1:.0} ns/op, \
         4T {t4:.0} ns/op ({:.2}x vs sequential)",
        sequential_ns / t4
    );

    if smoke() {
        println!("smoke mode: determinism asserted, JSON record skipped");
        return;
    }
    let threads_json = per_thread_ns
        .iter()
        .map(|(t, ns)| format!("\"{t}\": {{ \"ns_per_op\": {ns:.1} }}"))
        .collect::<Vec<_>>()
        .join(", ");
    let section = format!(
        "{{ \"overlay_size\": {}, \"batch\": {}, \"sequential_ns_per_op\": {sequential_ns:.1}, \
         \"threads\": {{ {threads_json} }}, \"speedup_1_thread\": {:.2}, \
         \"speedup_4_threads\": {:.2}, \"results_identical\": true }}",
        overlay_size(),
        batch_size(),
        sequential_ns / t1,
        sequential_ns / t4,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routes.json");
    match voronet_bench::record::update_json_section(Path::new(out), "parallel_ops", &section) {
        Err(e) => eprintln!("could not write {out}: {e}"),
        Ok(()) => println!("recorded parallel_ops results to {out}"),
    }
}

criterion_group!(benches, parallel_routes);

fn main() {
    benches();
}
