//! Heavy-traffic scenario suite: production-shaped traffic replayed
//! against three engines, with the full latency tail recorded.
//!
//! Each [`ScenarioKind`] (Zipf-skewed hotspots, a regional flash crowd,
//! correlated mass churn, an adversarial near-degenerate geometry
//! stream) is scripted once per seed and replayed against:
//!
//! - **sync** — the live greedy walk over the mutable overlay
//!   (`VoroNet::route_between_in`);
//! - **frozen** — the epoch-refreshed parallel read path
//!   (`FrozenView::route_between_in`, refreshed on writes so routes pay
//!   only the frozen walk);
//! - **cluster** — the socketed driver + hosts deployment, routes
//!   pipelined through `Driver::route_indices_pipelined`, plus one
//!   lossy-link run of the hotspot scenario.
//!
//! Per engine and scenario the route latency p50/p99/p999 (µs), hop
//! percentiles and — for the cluster — retry/fast-resend/degraded-read
//! counters land in the `scenarios` section of `BENCH_scenarios.json`.
//! Smoke mode (`VORONET_SMOKE=1`, the CI `scenario-smoke` gate) shrinks
//! the sizes, skips the JSON record and *asserts* the SLOs: bounded
//! p99/p50 tail ratios and absolute sanity ceilings.  Full runs compare
//! the fresh numbers against the committed baselines (within a generous
//! factor; set `VORONET_BLESS=1` to re-record past an intended change).

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use voronet_core::{FrozenView, RouteScratch, VoroNet, VoroNetConfig};
use voronet_net::{FaultyCluster, LinkFaults, Liveness, RetryPolicy};
use voronet_stats::{tail_summary, TailSummary};
use voronet_workloads::{Scenario, ScenarioKind, ScenarioSpec, WorkloadOp};

const SEED: u64 = 0x5CE7A;
const HOSTS: u64 = 3;
const PIPELINE_WINDOW: usize = 8;

fn smoke() -> bool {
    std::env::var_os("VORONET_SMOKE").is_some_and(|v| v != "0")
}

fn population() -> usize {
    if smoke() {
        48
    } else {
        256
    }
}

fn ops() -> usize {
    if smoke() {
        64
    } else {
        400
    }
}

fn cluster_population() -> usize {
    if smoke() {
        24
    } else {
        64
    }
}

fn cluster_ops() -> usize {
    if smoke() {
        40
    } else {
        120
    }
}

/// One engine's replay of one scenario: the route latency tail, the hop
/// tail and (for the cluster) the driver's resilience counters.
struct EngineRun {
    engine: &'static str,
    latency_us: TailSummary,
    hops: TailSummary,
    routes_ok: usize,
    routes_lost: usize,
    counters: Option<ClusterCounters>,
}

struct ClusterCounters {
    retries: u64,
    fast_resends: u64,
    degraded_reads: u64,
    fail_fast: u64,
}

fn summarize(
    engine: &'static str,
    lat_us: Vec<f64>,
    hops: Vec<f64>,
    lost: usize,
    counters: Option<ClusterCounters>,
) -> EngineRun {
    let routes_ok = lat_us.len();
    assert!(routes_ok > 0, "{engine}: no route completed");
    EngineRun {
        engine,
        latency_us: tail_summary(&lat_us).expect("non-empty latencies"),
        hops: tail_summary(&hops).expect("non-empty hops"),
        routes_ok,
        routes_lost: lost,
        counters,
    }
}

/// Replays the scenario against the live synchronous walk.
fn run_sync(sc: &Scenario) -> EngineRun {
    let mut net = VoroNet::new(VoroNetConfig::new(512).with_seed(SEED));
    for &p in &sc.setup {
        let _ = net.insert(p);
    }
    let mut scratch = RouteScratch::default();
    let (mut lat, mut hops) = (Vec::new(), Vec::new());
    for op in sc.phases.iter().flat_map(|p| &p.ops) {
        match *op {
            WorkloadOp::Insert { position } => {
                let _ = net.insert(position);
            }
            WorkloadOp::Remove { index } => {
                if let Some(id) = net.id_at(index % net.len()) {
                    let _ = net.remove(id);
                }
            }
            WorkloadOp::Route { from, to } => {
                let n = net.len();
                let a = net.id_at(from % n).expect("index below len");
                let b = net.id_at(to % n).expect("index below len");
                let t0 = Instant::now();
                if let Ok((_, h)) = net.route_between_in(a, b, &mut scratch) {
                    lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    hops.push(h as f64);
                }
            }
            _ => {}
        }
    }
    summarize("sync", lat, hops, 0, None)
}

/// Replays the scenario against the frozen parallel read path: writes
/// mutate the live overlay and refresh the view (the epoch discipline),
/// routes pay only the frozen walk.
fn run_frozen(sc: &Scenario) -> EngineRun {
    let mut net = VoroNet::new(VoroNetConfig::new(512).with_seed(SEED));
    for &p in &sc.setup {
        let _ = net.insert(p);
    }
    let mut view = FrozenView::new(&net);
    let mut dirty = false;
    let mut scratch = RouteScratch::default();
    let (mut lat, mut hops) = (Vec::new(), Vec::new());
    for op in sc.phases.iter().flat_map(|p| &p.ops) {
        match *op {
            WorkloadOp::Insert { position } => {
                let _ = net.insert(position);
                dirty = true;
            }
            WorkloadOp::Remove { index } => {
                if let Some(id) = net.id_at(index % net.len()) {
                    let _ = net.remove(id);
                    dirty = true;
                }
            }
            WorkloadOp::Route { from, to } => {
                if dirty {
                    view.refresh(&net);
                    dirty = false;
                }
                let n = net.len();
                let a = net.id_at(from % n).expect("index below len");
                let b = net.id_at(to % n).expect("index below len");
                let t0 = Instant::now();
                if let Ok((_, h)) = view.route_between_in(a, b, &mut scratch) {
                    lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    hops.push(h as f64);
                }
            }
            _ => {}
        }
    }
    summarize("frozen", lat, hops, 0, None)
}

/// Replays the scenario against the socketed cluster.  Consecutive
/// routes travel as one pipelined batch so a single slow operation
/// cannot head-of-line-block the stream — exactly the production shape
/// the suite is meant to measure.
fn run_cluster(sc: &Scenario, engine: &'static str, link: LinkFaults) -> EngineRun {
    let mut cluster = FaultyCluster::start(
        HOSTS,
        VoroNetConfig::new(512).with_seed(SEED),
        link,
        SEED ^ engine.len() as u64,
    );
    cluster.driver().set_retry_policy(RetryPolicy::tight());
    cluster.driver().set_liveness(Liveness::tight());
    for &p in &sc.setup {
        cluster.driver().insert(p).expect("setup insert");
    }
    let (mut lat, mut hops) = (Vec::new(), Vec::new());
    let mut lost = 0usize;
    let mut batch: Vec<(usize, usize)> = Vec::new();
    let flush = |cluster: &mut FaultyCluster,
                 batch: &mut Vec<(usize, usize)>,
                 lat: &mut Vec<f64>,
                 hops: &mut Vec<f64>,
                 lost: &mut usize| {
        if batch.is_empty() {
            return;
        }
        let results = cluster
            .driver()
            .route_indices_pipelined(batch, PIPELINE_WINDOW)
            .expect("pipelined batch");
        for r in results {
            match r.owner_hops {
                Some((_, h)) => {
                    lat.push(r.latency.as_secs_f64() * 1e6);
                    hops.push(h as f64);
                }
                None => *lost += 1,
            }
        }
        batch.clear();
    };
    for op in sc.phases.iter().flat_map(|p| &p.ops) {
        match *op {
            WorkloadOp::Route { from, to } => batch.push((from, to)),
            WorkloadOp::Insert { position } => {
                flush(&mut cluster, &mut batch, &mut lat, &mut hops, &mut lost);
                cluster.driver().insert(position).expect("insert");
            }
            WorkloadOp::Remove { index } => {
                flush(&mut cluster, &mut batch, &mut lat, &mut hops, &mut lost);
                cluster.driver().remove_index(index).expect("remove");
            }
            _ => {}
        }
    }
    flush(&mut cluster, &mut batch, &mut lat, &mut hops, &mut lost);
    let stats = cluster.driver().cluster_stats();
    let counters = ClusterCounters {
        retries: stats.retries,
        fast_resends: stats.fast_resends,
        degraded_reads: stats.degraded_reads,
        fail_fast: stats.fail_fast,
    };
    let _ = cluster.shutdown();
    summarize(engine, lat, hops, lost, Some(counters))
}

/// The SLO gates of one engine run.  Generous bounds — they exist to
/// catch order-of-magnitude pathologies (a reintroduced retry stall, a
/// quadratic walk), not micro-noise.
fn assert_slos(kind: ScenarioKind, run: &EngineRun) {
    let lat = &run.latency_us;
    let name = kind.name();
    let engine = run.engine;
    // Tail shape: the p99 may not run away from the median.  In-process
    // engines route in microseconds where timer quantisation makes
    // ratios noisy, so the ratio gate only arms above a 50µs median.
    if lat.p50 > 50.0 {
        let k = if engine == "cluster_lossy" {
            200.0
        } else {
            100.0
        };
        assert!(
            lat.p99 <= k * lat.p50,
            "{name}/{engine}: p99 {:.1}µs > {k}× p50 {:.1}µs",
            lat.p99,
            lat.p50
        );
    }
    // Absolute ceilings: a lossy cluster median in the tens of
    // milliseconds means the fast-retransmit fix regressed (pre-fix it
    // sat at ~107ms); in-process medians in the milliseconds mean the
    // walk went pathological.
    let p50_ceiling_us = match engine {
        "sync" | "frozen" => 5_000.0,
        "cluster" => 50_000.0,
        _ => 100_000.0,
    };
    assert!(
        lat.p50 <= p50_ceiling_us,
        "{name}/{engine}: route p50 {:.1}µs above the {p50_ceiling_us:.0}µs SLO",
        lat.p50
    );
    // Completeness: pipelined batches may abandon ops under injected
    // loss, but losing more than half the stream is a routing failure.
    assert!(
        run.routes_ok > run.routes_lost,
        "{name}/{engine}: lost {} of {} routes",
        run.routes_lost,
        run.routes_ok + run.routes_lost
    );
}

fn fmt_run(run: &EngineRun) -> String {
    let counters = match &run.counters {
        Some(c) => format!(
            ", \"retries\": {}, \"fast_resends\": {}, \"degraded_reads\": {}, \
             \"fail_fast\": {}",
            c.retries, c.fast_resends, c.degraded_reads, c.fail_fast
        ),
        None => String::new(),
    };
    format!(
        "\"{}\": {{ \"route_p50_us\": {:.1}, \"route_p99_us\": {:.1}, \
         \"route_p999_us\": {:.1}, \"route_max_us\": {:.1}, \
         \"hops_p50\": {:.1}, \"hops_p99\": {:.1}, \"hops_max\": {:.0}, \
         \"routes_ok\": {}, \"routes_lost\": {}{} }}",
        run.engine,
        run.latency_us.p50,
        run.latency_us.p99,
        run.latency_us.p999,
        run.latency_us.max,
        run.hops.p50,
        run.hops.p99,
        run.hops.max,
        run.routes_ok,
        run.routes_lost,
        counters
    )
}

/// Pulls `scenario.engine.route_p50_us` out of the committed baseline
/// document with a plain scan (the vendored serde has no JSON parser).
fn baseline_p50(content: &str, scenario: &str, engine: &str) -> Option<f64> {
    let at = content.find(&format!("\"{scenario}\""))?;
    let rest = &content[at..];
    let at = rest.find(&format!("\"{engine}\""))?;
    let rest = &rest[at..];
    let at = rest.find("\"route_p50_us\":")?;
    let rest = rest[at + "\"route_p50_us\":".len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".+-eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scenarios(c: &mut Criterion) {
    let out = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scenarios.json"
    ));
    let baseline = std::fs::read_to_string(out).ok();
    let bless = std::env::var_os("VORONET_BLESS").is_some_and(|v| v != "0");

    let mut sections = Vec::new();
    for kind in ScenarioKind::all() {
        let scenario = Scenario::build(&ScenarioSpec::new(kind, SEED, population(), ops()));
        let cluster_scenario = Scenario::build(&ScenarioSpec::new(
            kind,
            SEED,
            cluster_population(),
            cluster_ops(),
        ));
        let mut runs = vec![
            run_sync(&scenario),
            run_frozen(&scenario),
            run_cluster(&cluster_scenario, "cluster", LinkFaults::default()),
        ];
        if kind == ScenarioKind::ZipfHotspot {
            // The hotspot stream doubles as the loss-resilience probe:
            // skewed destinations + 10% frame loss is where the retry
            // stall used to blow the median up by ~6600×.
            runs.push(run_cluster(
                &cluster_scenario,
                "cluster_lossy",
                LinkFaults::lossy(0.10),
            ));
        }
        for run in &runs {
            println!(
                "scenarios {}/{}: route p50 {:.1}us p99 {:.1}us p999 {:.1}us, \
                 hops p50 {:.1} ({} ok, {} lost)",
                kind.name(),
                run.engine,
                run.latency_us.p50,
                run.latency_us.p99,
                run.latency_us.p999,
                run.hops.p50,
                run.routes_ok,
                run.routes_lost,
            );
            assert_slos(kind, run);
            if let (false, false, Some(doc)) = (smoke(), bless, baseline.as_deref()) {
                if let Some(old) = baseline_p50(doc, kind.name(), run.engine) {
                    assert!(
                        run.latency_us.p50 <= (8.0 * old).max(old + 500.0),
                        "{}/{}: route p50 {:.1}µs regressed past 8× the committed \
                         baseline {:.1}µs (VORONET_BLESS=1 re-records)",
                        kind.name(),
                        run.engine,
                        run.latency_us.p50,
                        old
                    );
                }
            }
        }
        let engines: Vec<String> = runs.iter().map(fmt_run).collect();
        sections.push(format!("\"{}\": {{ {} }}", kind.name(), engines.join(", ")));
    }

    let mut group = c.benchmark_group("scenarios");
    group.sample_size(10);
    group.bench_function("zipf_hotspot_sync_pass", |b| {
        let scenario = Scenario::build(&ScenarioSpec::new(
            ScenarioKind::ZipfHotspot,
            SEED,
            cluster_population(),
            cluster_ops(),
        ));
        b.iter(|| black_box(run_sync(&scenario).latency_us.p50));
    });
    group.finish();

    if smoke() {
        println!("smoke mode: SLOs asserted, JSON record skipped");
        return;
    }
    let section = format!(
        "{{ \"seed\": {SEED}, \"hosts\": {HOSTS}, \"population\": {}, \"ops\": {}, \
         \"cluster_population\": {}, \"cluster_ops\": {}, \
         \"pipeline_window\": {PIPELINE_WINDOW}, \"scenarios\": {{ {} }} }}",
        population(),
        ops(),
        cluster_population(),
        cluster_ops(),
        sections.join(", ")
    );
    match voronet_bench::record::update_json_section(out, "scenarios", &section) {
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
        Ok(()) => println!("recorded scenario results to {}", out.display()),
    }
}

criterion_group!(benches, scenarios);

fn main() {
    benches();
}
