//! Criterion bench for Figure 8: the effect of the number of long-range
//! links on greedy routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use voronet_core::experiments::{build_overlay, mean_route_length};
use voronet_core::VoroNetConfig;
use voronet_workloads::Distribution;

fn fig8_long_links(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_long_links");
    group.sample_size(10);
    let n = 3_000usize;
    for k in [1usize, 2, 4, 6, 10] {
        let cfg = VoroNetConfig::new(n).with_long_links(k).with_seed(2006);
        let (mut net, ids) = build_overlay(Distribution::Uniform, n, cfg);
        group.bench_with_input(BenchmarkId::new("uniform", k), &k, |b, _| {
            b.iter(|| black_box(mean_route_length(&mut net, &ids, 500, 7)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig8_long_links);
criterion_main!(benches);
