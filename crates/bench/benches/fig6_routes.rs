//! Criterion bench for Figures 6/7: greedy-route measurement cost on
//! overlays of increasing size and varying skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use voronet_core::experiments::{build_overlay, mean_route_length};
use voronet_core::VoroNetConfig;
use voronet_workloads::Distribution;

fn fig6_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_route_length");
    group.sample_size(10);
    for (label, dist) in [
        ("uniform", Distribution::Uniform),
        ("sparse_alpha1", Distribution::PowerLaw { alpha: 1.0 }),
        ("sparse_alpha5", Distribution::PowerLaw { alpha: 5.0 }),
    ] {
        for n in [2_000usize, 6_000] {
            let cfg = VoroNetConfig::new(n).with_seed(2006);
            let (mut net, ids) = build_overlay(dist, n, cfg);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(mean_route_length(&mut net, &ids, 500, 42)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig6_routes);
criterion_main!(benches);
