//! The routing hot path over a pre-built 10,000-node overlay: greedy
//! (`route_to_point_into`, the allocation-free caller-buffer form) and
//! Algorithm 5 (`algorithm5_route`), measuring pure per-route cost with no
//! overlay construction in the timed region.
//!
//! Besides the Criterion console output, the bench records its measurements
//! to `BENCH_routes.json` at the workspace root so successive runs can be
//! diffed.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;
use voronet_core::experiments::build_overlay;
use voronet_core::{algorithm5_route, ObjectId, VoroNet, VoroNetConfig};
use voronet_workloads::Distribution;

const OVERLAY_SIZE: usize = 10_000;
const PAIRS: usize = 256;

fn build() -> (VoroNet, Vec<ObjectId>) {
    let cfg = VoroNetConfig::new(OVERLAY_SIZE).with_seed(2006);
    build_overlay(Distribution::Uniform, OVERLAY_SIZE, cfg)
}

fn sample_pairs(ids: &[ObjectId], n: usize, seed: u64) -> Vec<(ObjectId, ObjectId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(n);
    while pairs.len() < n {
        let a = ids[rng.random_range(0..ids.len())];
        let b = ids[rng.random_range(0..ids.len())];
        if a != b {
            pairs.push((a, b));
        }
    }
    pairs
}

fn route_hot_path(c: &mut Criterion) {
    let (mut net, ids) = build();
    let pairs = sample_pairs(&ids, PAIRS, 42);
    let mut group = c.benchmark_group("route_hot_path");
    group.sample_size(10);

    // Greedy walk through the caller-buffer path: after the first route the
    // buffer has warmed up and every hop is a borrowed-view scan — no heap
    // allocation in the loop.
    let mut path: Vec<ObjectId> = Vec::with_capacity(64);
    group.bench_function(BenchmarkId::new("greedy_into", OVERLAY_SIZE), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (a, t) = pairs[i % pairs.len()];
            i += 1;
            let target = net.coords(t).expect("pair endpoints are live");
            black_box(
                net.route_to_point_into(a, target, &mut path)
                    .expect("route between live objects"),
            )
        });
    });

    group.bench_function(BenchmarkId::new("algorithm5", OVERLAY_SIZE), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (a, t) = pairs[i % pairs.len()];
            i += 1;
            let target = net.coords(t).expect("pair endpoints are live");
            black_box(algorithm5_route(&net, a, target).expect("route between live objects"))
        });
    });

    group.finish();

    record_json(&mut net, &pairs);
}

/// The `q`-quantile of a set of per-route samples (nearest-rank on the
/// sorted copy, like `voronet_stats`' summaries).
fn quantile(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank]
}

/// One timed pass per mode — each route timed individually so the tail
/// (p99) is visible, not just the mean — recorded as the `route_hot_path`
/// section of `BENCH_routes.json` (other benches own the other sections)
/// so routing regressions are diffable without parsing console output.
fn record_json(net: &mut VoroNet, pairs: &[(ObjectId, ObjectId)]) {
    let mut path: Vec<ObjectId> = Vec::with_capacity(64);
    // Warm-up (buffers + branch predictors), then measure.
    for &(a, t) in pairs {
        let target = net.coords(t).expect("live");
        net.route_to_point_into(a, target, &mut path)
            .expect("route");
    }

    let mut greedy_ns_samples = Vec::with_capacity(pairs.len());
    let mut greedy_hop_samples = Vec::with_capacity(pairs.len());
    for &(a, t) in pairs {
        let target = net.coords(t).expect("live");
        let start = Instant::now();
        let (_, hops) = net
            .route_to_point_into(a, target, &mut path)
            .expect("route");
        greedy_ns_samples.push(start.elapsed().as_nanos() as u64);
        greedy_hop_samples.push(hops as u64);
    }
    let greedy_ns = greedy_ns_samples.iter().sum::<u64>() as f64 / pairs.len() as f64;
    let greedy_hops: u64 = greedy_hop_samples.iter().sum();

    let start = Instant::now();
    let mut alg5_hops = 0u64;
    for &(a, t) in pairs {
        let target = net.coords(t).expect("live");
        alg5_hops += algorithm5_route(net, a, target)
            .expect("route")
            .forwarding_hops as u64;
    }
    let alg5_ns = start.elapsed().as_nanos() as f64 / pairs.len() as f64;

    let section = format!(
        "{{ \"overlay_size\": {}, \"pairs\": {}, \"greedy_into\": {{ \"mean_ns_per_route\": {:.1}, \"p50_ns_per_route\": {}, \"p99_ns_per_route\": {}, \"mean_hops\": {:.2}, \"p50_hops\": {}, \"p99_hops\": {} }}, \"algorithm5\": {{ \"mean_ns_per_route\": {:.1}, \"mean_forwarding_hops\": {:.2} }} }}",
        OVERLAY_SIZE,
        pairs.len(),
        greedy_ns,
        quantile(&mut greedy_ns_samples, 0.5),
        quantile(&mut greedy_ns_samples, 0.99),
        greedy_hops as f64 / pairs.len() as f64,
        quantile(&mut greedy_hop_samples, 0.5),
        quantile(&mut greedy_hop_samples, 0.99),
        alg5_ns,
        alg5_hops as f64 / pairs.len() as f64,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routes.json");
    match voronet_bench::record::update_json_section(
        std::path::Path::new(out),
        "route_hot_path",
        &section,
    ) {
        Err(e) => eprintln!("could not write {out}: {e}"),
        Ok(()) => println!("recorded route_hot_path results to {out}"),
    }
}

criterion_group!(benches, route_hot_path);

fn main() {
    benches();
}
