//! Criterion bench of the asynchronous runtime: churn under latency.
//!
//! Measures the cost of executing a scripted churn scenario (interleaved
//! joins, departures and routes) message-by-message on the per-node runtime,
//! for an ideal network and for a lossy, latency-skewed one — the marginal
//! cost of realism over the synchronous fast path.
//!
//! The warmup overlay is built **once** per configuration and cloned into
//! each iteration, so the timed region is the message-driven execution
//! itself, not the synchronous Delaunay warmup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use voronet_core::runtime::AsyncOverlay;
use voronet_core::VoroNetConfig;
use voronet_sim::{LatencyModel, NetworkModel, Scenario};
use voronet_workloads::{Distribution, PointGenerator};

fn churn_script(ops: usize, seed: u64) -> Scenario {
    let mut joins = PointGenerator::new(Distribution::Uniform, seed ^ 0xCD);
    Scenario::builder("bench-churn", seed)
        .churn(0, (ops as u64) * 4, ops, 0.35, 0.15, move || {
            joins.next_point()
        })
        .build()
}

fn bench_async_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_churn");
    group.sample_size(10);
    for (label, network) in [
        ("ideal", NetworkModel::ideal()),
        (
            "lossy_skewed",
            NetworkModel::new(
                7,
                LatencyModel::Skewed {
                    min: 1,
                    max: 50,
                    alpha: 1.3,
                },
            )
            .with_loss(0.05),
        ),
    ] {
        for n in [500usize, 2_000] {
            let scenario = churn_script(n / 2, 2006);
            let mut base = AsyncOverlay::new(
                VoroNetConfig::new(2 * n).with_seed(2006),
                network.clone(),
                scenario.seed,
            );
            base.warmup(&PointGenerator::new(Distribution::Uniform, 2006 ^ 0xAB).take_points(n));
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let mut overlay = base.clone();
                    for &(t, op) in scenario.events() {
                        overlay.schedule_op(t, op);
                    }
                    overlay.run_to_quiescence();
                    black_box(overlay.counters())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_async_churn);
criterion_main!(benches);
