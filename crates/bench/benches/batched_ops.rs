//! Batched operations through the backend-agnostic `Overlay` trait: route
//! and insert+route batches on a pre-built 10,000-node overlay, submitted
//! via `apply_batch` on the synchronous engine, plus the asynchronous
//! engine's pipelined route batches at a smaller scale.
//!
//! Besides the Criterion console output, the bench records its headline
//! numbers as the `batched_ops` section of `BENCH_routes.json`, next to
//! the `route_hot_path` numbers, so the batched submission path is diffed
//! run over run exactly like the raw hot path.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use voronet_api::{AsyncEngine, Op, Overlay, OverlayBuilder, SyncEngine};
use voronet_core::experiments::build_overlay;
use voronet_core::VoroNetConfig;
use voronet_sim::{LatencyModel, NetworkModel};
use voronet_workloads::{Distribution, PointGenerator, QueryGenerator};

const OVERLAY_SIZE: usize = 10_000;
const ASYNC_OVERLAY_SIZE: usize = 2_000;
const BATCH: usize = 256;
const SEED: u64 = 2006;

/// A route-only batch over random live pairs (routes never mutate overlay
/// structure, so the batch can be replayed under Criterion).
fn route_batch(net: &dyn Overlay, len: usize, seed: u64) -> Vec<Op> {
    let ids = net.ids();
    let mut qg = QueryGenerator::new(seed);
    (0..len)
        .map(|_| {
            let (a, b) = qg.object_pair(ids.len());
            Op::RouteBetween {
                from: ids[a],
                to: ids[b],
            }
        })
        .collect()
}

fn build_sync() -> SyncEngine {
    let cfg = VoroNetConfig::new(OVERLAY_SIZE).with_seed(SEED);
    let (net, _) = build_overlay(Distribution::Uniform, OVERLAY_SIZE, cfg);
    SyncEngine::from_net(net)
}

fn build_async() -> AsyncEngine {
    let mut engine = OverlayBuilder::new(ASYNC_OVERLAY_SIZE)
        .seed(SEED)
        .network(NetworkModel::ideal())
        .build_async();
    let points = PointGenerator::new(Distribution::Uniform, SEED ^ 0x9E3779B9)
        .take_points(ASYNC_OVERLAY_SIZE);
    engine.overlay_mut().warmup(&points);
    engine
}

fn batched_ops(c: &mut Criterion) {
    let mut sync_engine = build_sync();
    let sync_routes = route_batch(&sync_engine, BATCH, 42);
    let mut async_engine = build_async();
    let async_routes = route_batch(&async_engine, BATCH, 42);

    let mut group = c.benchmark_group("batched_ops");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("sync_route_batch", OVERLAY_SIZE), |b| {
        b.iter(|| black_box(sync_engine.apply_batch(&sync_routes)));
    });

    group.bench_function(
        BenchmarkId::new("async_route_batch", ASYNC_OVERLAY_SIZE),
        |b| {
            b.iter(|| black_box(async_engine.apply_batch(&async_routes)));
        },
    );

    group.finish();

    record_json(
        &mut sync_engine,
        &sync_routes,
        &mut async_engine,
        &async_routes,
    );
}

/// One timed pass per engine and submission style, recorded as the
/// `batched_ops` section of `BENCH_routes.json`.
fn record_json(
    sync_engine: &mut SyncEngine,
    sync_routes: &[Op],
    async_engine: &mut AsyncEngine,
    async_routes: &[Op],
) {
    // Warm both submission paths before timing either, so neither
    // measurement benefits from running second.
    let time_batch = |net: &mut dyn Overlay, ops: &[Op]| -> f64 {
        net.apply_batch(ops);
        for op in ops.iter().take(8) {
            black_box(net.apply(op));
        }
        let start = Instant::now();
        let results = net.apply_batch(ops);
        assert!(results.iter().all(|r| r.is_ok()));
        start.elapsed().as_nanos() as f64 / ops.len() as f64
    };
    let time_per_op = |net: &mut dyn Overlay, ops: &[Op]| -> f64 {
        net.apply_batch(ops);
        let start = Instant::now();
        for op in ops {
            black_box(net.apply(op));
        }
        start.elapsed().as_nanos() as f64 / ops.len() as f64
    };

    let sync_batch_ns = time_batch(sync_engine, sync_routes);
    let sync_per_op_ns = time_per_op(sync_engine, sync_routes);
    let async_batch_ns = time_batch(async_engine, async_routes);
    let async_per_op_ns = time_per_op(async_engine, async_routes);

    // The asynchronous engine's batching lever is *protocol time*, not
    // host ns: under network latency a batched run of routes is in flight
    // concurrently and quiesces in roughly the slowest route's end-to-end
    // latency, while per-op submission pays every route's full latency
    // chain back to back on the simulated clock.
    let mut lat_engine = OverlayBuilder::new(ASYNC_OVERLAY_SIZE)
        .seed(SEED)
        .network(NetworkModel::new(
            SEED,
            LatencyModel::Uniform { min: 5, max: 50 },
        ))
        .build_async();
    let points = PointGenerator::new(Distribution::Uniform, SEED ^ 0x9E3779B9)
        .take_points(ASYNC_OVERLAY_SIZE);
    lat_engine.overlay_mut().warmup(&points);
    let lat_routes = route_batch(&lat_engine, BATCH, 42);
    let t0 = lat_engine.overlay().now();
    for op in &lat_routes {
        black_box(lat_engine.apply(op));
    }
    let per_op_sim_time = lat_engine.overlay().now() - t0;
    let t0 = lat_engine.overlay().now();
    black_box(lat_engine.apply_batch(&lat_routes));
    let batch_sim_time = lat_engine.overlay().now() - t0;

    // One mixed insert+route batch (timed once — inserts mutate the
    // overlay, so this sample is not replayed).
    let mut points = PointGenerator::new(Distribution::Uniform, 77);
    let ids = sync_engine.ids();
    let mut qg = QueryGenerator::new(78);
    let mixed: Vec<Op> = (0..BATCH)
        .map(|i| {
            if i % 8 == 0 {
                Op::Insert {
                    position: points.next_point(),
                }
            } else {
                let (a, b) = qg.object_pair(ids.len());
                Op::RouteBetween {
                    from: ids[a],
                    to: ids[b],
                }
            }
        })
        .collect();
    let start = Instant::now();
    let results = sync_engine.apply_batch(&mixed);
    let mixed_ns = start.elapsed().as_nanos() as f64 / mixed.len() as f64;
    let mixed_ok = results.iter().filter(|r| r.is_ok()).count();

    let section = format!(
        "{{ \"batch\": {BATCH}, \"sync\": {{ \"overlay_size\": {OVERLAY_SIZE}, \"route_batch_ns_per_op\": {sync_batch_ns:.1}, \"route_per_op_ns\": {sync_per_op_ns:.1}, \"mixed_insert_route_ns_per_op\": {mixed_ns:.1}, \"mixed_ok\": {mixed_ok} }}, \"async\": {{ \"overlay_size\": {ASYNC_OVERLAY_SIZE}, \"route_batch_ns_per_op\": {async_batch_ns:.1}, \"route_per_op_ns\": {async_per_op_ns:.1}, \"latency_network_sim_time_batch\": {batch_sim_time}, \"latency_network_sim_time_per_op\": {per_op_sim_time} }} }}",
    );
    println!(
        "async pipelining under latency: {BATCH} routes quiesce in {batch_sim_time} simulated \
         units batched vs {per_op_sim_time} per-op"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routes.json");
    match voronet_bench::record::update_json_section(Path::new(out), "batched_ops", &section) {
        Err(e) => eprintln!("could not write {out}: {e}"),
        Ok(()) => println!("recorded batched_ops results to {out}"),
    }
}

criterion_group!(benches, batched_ops);

fn main() {
    benches();
}
