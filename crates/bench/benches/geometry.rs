//! Criterion micro-benchmarks of the geometric substrate: predicate cost,
//! incremental insertion, removal and point location.  These back the
//! `ablation_predicates` entry of DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use voronet_geom::{incircle, orient2d, Point2, Triangulation};

fn random_points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
        .collect()
}

fn bench_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicates");
    let pts = random_points(4_000, 1);
    group.bench_function("orient2d_fast_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 3) % (pts.len() - 3);
            black_box(orient2d(pts[i], pts[i + 1], pts[i + 2]))
        });
    });
    group.bench_function("orient2d_degenerate_exact_path", |b| {
        // Collinear points force the exact expansion fallback every time.
        let a = Point2::new(0.1, 0.1);
        let bb = Point2::new(0.5, 0.5);
        let cc = Point2::new(0.9, 0.9);
        b.iter(|| black_box(orient2d(a, bb, cc)));
    });
    group.bench_function("incircle_fast_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 4) % (pts.len() - 4);
            black_box(incircle(pts[i], pts[i + 1], pts[i + 2], pts[i + 3]))
        });
    });
    group.bench_function("incircle_cocircular_exact_path", |b| {
        let a = Point2::new(0.0, 0.0);
        let bb = Point2::new(1.0, 0.0);
        let cc = Point2::new(1.0, 1.0);
        let d = Point2::new(0.0, 1.0);
        b.iter(|| black_box(incircle(a, bb, cc, d)));
    });
    group.finish();
}

fn bench_triangulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangulation");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let pts = random_points(n, 2);
        group.bench_with_input(BenchmarkId::new("incremental_insert", n), &n, |b, _| {
            b.iter(|| {
                let mut tri = Triangulation::unit_square();
                for &p in &pts {
                    let _ = tri.insert(p);
                }
                black_box(tri.len())
            });
        });
    }
    // Point location / nearest-vertex on a fixed triangulation.
    let pts = random_points(10_000, 3);
    let mut tri = Triangulation::unit_square();
    for &p in &pts {
        let _ = tri.insert(p);
    }
    let queries = random_points(1_000, 4);
    group.bench_function("nearest_vertex_10k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            black_box(tri.nearest_vertex(queries[i]))
        });
    });
    group.bench_function("locate_10k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            black_box(tri.locate(queries[i]))
        });
    });
    // Insert/remove churn at steady state.
    group.bench_function("insert_remove_cycle_10k", |b| {
        let mut extra = random_points(4_096, 5).into_iter().cycle();
        b.iter(|| {
            let p = extra.next().expect("cycle iterator never ends");
            if let Ok(v) = tri.insert(p) {
                tri.remove(v).expect("just-inserted vertex is removable");
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_predicates, bench_triangulation);
criterion_main!(benches);
