//! Criterion bench for Figure 5: overlay construction plus degree-histogram
//! extraction under the uniform and heavily skewed distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use voronet_core::experiments::build_overlay;
use voronet_core::VoroNetConfig;
use voronet_workloads::Distribution;

fn fig5_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_degree_distribution");
    group.sample_size(10);
    for (label, dist) in [
        ("uniform", Distribution::Uniform),
        ("sparse_alpha5", Distribution::PowerLaw { alpha: 5.0 }),
    ] {
        for n in [1_000usize, 4_000] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let cfg = VoroNetConfig::new(n).with_seed(2006);
                    let (net, _) = build_overlay(dist, n, cfg);
                    let hist = net.degree_histogram();
                    black_box((hist.mean(), hist.mode()))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5_degree);
criterion_main!(benches);
