//! Robust geometric predicates.
//!
//! The VoroNet paper relies on the Sugihara–Iri topology-consistent
//! incremental Voronoi construction to survive calculation degeneracy
//! (co-linear and co-circular objects).  This reproduction achieves the same
//! goal differently but equivalently: the two predicates that drive the
//! incremental Delaunay construction — orientation and in-circle — are
//! evaluated with a floating-point *filter* and fall back to exact expansion
//! arithmetic ([`crate::expansion`]) whenever the filter cannot certify the
//! sign.  The combinatorial structure produced is therefore always that of an
//! exact Delaunay triangulation of the input, regardless of degeneracies.
//!
//! Filter constants follow Shewchuk's classic derivation for IEEE-754
//! binary64.

use crate::expansion::Expansion;
use crate::point::Point2;

/// Machine epsilon for `f64` as used in the filter bounds (2^-53).
const EPSILON: f64 = 1.110_223_024_625_156_5e-16;

/// Filter coefficient for [`orient2d`]: `(3 + 16ε)ε`.
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;

/// Filter coefficient for [`incircle`]: `(10 + 96ε)ε`.
const ICC_ERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;

/// Sign of a determinant, i.e. the answer of a geometric predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Strictly positive determinant: counter-clockwise / inside.
    Positive,
    /// Exactly zero determinant: degenerate configuration.
    Zero,
    /// Strictly negative determinant: clockwise / outside.
    Negative,
}

impl Orientation {
    /// Maps an exact sign (`-1`, `0`, `1`) to an [`Orientation`].
    #[inline]
    fn from_sign(s: i32) -> Self {
        match s.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::Positive,
            std::cmp::Ordering::Equal => Orientation::Zero,
            std::cmp::Ordering::Less => Orientation::Negative,
        }
    }

    /// Maps a certified non-ambiguous floating-point value to an
    /// [`Orientation`].
    #[inline]
    fn from_f64(v: f64) -> Self {
        if v > 0.0 {
            Orientation::Positive
        } else if v < 0.0 {
            Orientation::Negative
        } else {
            Orientation::Zero
        }
    }

    /// True for [`Orientation::Positive`].
    #[inline]
    pub fn is_positive(self) -> bool {
        self == Orientation::Positive
    }

    /// True for [`Orientation::Negative`].
    #[inline]
    pub fn is_negative(self) -> bool {
        self == Orientation::Negative
    }

    /// True for [`Orientation::Zero`].
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Orientation::Zero
    }
}

/// Orientation of the triangle `(a, b, c)`.
///
/// Returns [`Orientation::Positive`] when the three points make a left turn
/// (counter-clockwise), [`Orientation::Negative`] for a right turn and
/// [`Orientation::Zero`] when they are exactly collinear.  The sign is exact.
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> Orientation {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return Orientation::from_f64(det);
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return Orientation::from_f64(det);
        }
        -detleft - detright
    } else {
        return Orientation::from_f64(det);
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return Orientation::from_f64(det);
    }

    Orientation::from_sign(orient2d_exact(a, b, c))
}

/// Fully exact orientation evaluation through expansion arithmetic.
fn orient2d_exact(a: Point2, b: Point2, c: Point2) -> i32 {
    let acx = Expansion::diff(a.x, c.x);
    let bcy = Expansion::diff(b.y, c.y);
    let acy = Expansion::diff(a.y, c.y);
    let bcx = Expansion::diff(b.x, c.x);
    let left = acx.mul(&bcy);
    let right = acy.mul(&bcx);
    left.sub(&right).sign()
}

/// Raw signed value of the orientation determinant (non-robust). Exposed for
/// distance computations and heuristics that do not need an exact sign.
#[inline]
pub fn orient2d_fast(a: Point2, b: Point2, c: Point2) -> f64 {
    (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x)
}

/// In-circle test for the circumcircle of the counter-clockwise triangle
/// `(a, b, c)`.
///
/// Returns [`Orientation::Positive`] when `d` lies strictly inside the
/// circumcircle, [`Orientation::Negative`] when strictly outside and
/// [`Orientation::Zero`] when the four points are exactly co-circular.  The
/// triangle must be counter-clockwise for the sign convention to hold (this
/// is an invariant of the triangulation).  The sign is exact.
pub fn incircle(a: Point2, b: Point2, c: Point2, d: Point2) -> Orientation {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return Orientation::from_f64(det);
    }

    Orientation::from_sign(incircle_exact(a, b, c, d))
}

/// Fully exact in-circle evaluation through expansion arithmetic.
fn incircle_exact(a: Point2, b: Point2, c: Point2, d: Point2) -> i32 {
    let adx = Expansion::diff(a.x, d.x);
    let ady = Expansion::diff(a.y, d.y);
    let bdx = Expansion::diff(b.x, d.x);
    let bdy = Expansion::diff(b.y, d.y);
    let cdx = Expansion::diff(c.x, d.x);
    let cdy = Expansion::diff(c.y, d.y);

    let alift = adx.mul(&adx).add(&ady.mul(&ady));
    let blift = bdx.mul(&bdx).add(&bdy.mul(&bdy));
    let clift = cdx.mul(&cdx).add(&cdy.mul(&cdy));

    let bcd = bdx.mul(&cdy).sub(&cdx.mul(&bdy));
    let cad = cdx.mul(&ady).sub(&adx.mul(&cdy));
    let abd = adx.mul(&bdy).sub(&bdx.mul(&ady));

    alift
        .mul(&bcd)
        .add(&blift.mul(&cad))
        .add(&clift.mul(&abd))
        .sign()
}

/// Circumcentre of the triangle `(a, b, c)`.
///
/// Returns `None` when the triangle is (numerically) degenerate.  The result
/// is computed in plain floating point; Voronoi vertices are only used for
/// reporting (cell polygons, figures), never for combinatorial decisions, so
/// exactness is not required here.
pub fn circumcenter(a: Point2, b: Point2, c: Point2) -> Option<Point2> {
    let bax = b.x - a.x;
    let bay = b.y - a.y;
    let cax = c.x - a.x;
    let cay = c.y - a.y;
    let d = 2.0 * (bax * cay - bay * cax);
    if d == 0.0 || !d.is_finite() {
        return None;
    }
    let b2 = bax * bax + bay * bay;
    let c2 = cax * cax + cay * cay;
    let ux = (cay * b2 - bay * c2) / d;
    let uy = (bax * c2 - cax * b2) / d;
    let center = Point2::new(a.x + ux, a.y + uy);
    center.is_finite().then_some(center)
}

/// Squared circumradius of the triangle `(a, b, c)`, or `None` when
/// degenerate.
pub fn circumradius2(a: Point2, b: Point2, c: Point2) -> Option<f64> {
    circumcenter(a, b, c).map(|cc| cc.distance2(a))
}

/// True when `p` lies strictly inside the (counter-clockwise) triangle
/// `(a, b, c)`; points on the boundary return `false`.
pub fn point_strictly_in_triangle(a: Point2, b: Point2, c: Point2, p: Point2) -> bool {
    orient2d(a, b, p).is_positive()
        && orient2d(b, c, p).is_positive()
        && orient2d(c, a, p).is_positive()
}

/// True when `p` lies inside or on the boundary of the (counter-clockwise)
/// triangle `(a, b, c)`.
pub fn point_in_triangle(a: Point2, b: Point2, c: Point2, p: Point2) -> bool {
    !orient2d(a, b, p).is_negative()
        && !orient2d(b, c, p).is_negative()
        && !orient2d(c, a, p).is_negative()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert_eq!(orient2d(a, b, c), Orientation::Positive);
        assert_eq!(orient2d(a, c, b), Orientation::Negative);
        assert_eq!(
            orient2d(a, b, Point2::new(2.0, 0.0)),
            Orientation::Zero,
            "collinear points must be detected exactly"
        );
    }

    #[test]
    fn orientation_near_degenerate_is_exact() {
        // Three points that are collinear up to the last bit of precision:
        // the filter must hand over to the exact path and report the true
        // (non-zero) sign.
        let a = Point2::new(0.5, 0.5);
        let b = Point2::new(12.0, 12.0);
        let c = Point2::new(24.0, 24.0 + 2f64.powi(-46));
        assert_eq!(orient2d(a, b, c), Orientation::Positive);
        let c2 = Point2::new(24.0, 24.0 - 2f64.powi(-46));
        assert_eq!(orient2d(a, b, c2), Orientation::Negative);
        let c3 = Point2::new(24.0, 24.0);
        assert_eq!(orient2d(a, b, c3), Orientation::Zero);
    }

    #[test]
    fn orientation_antisymmetry_exhaustive_small_grid() {
        // On a tiny grid with perturbations the predicate must be
        // antisymmetric under swapping two points and invariant under cyclic
        // permutation.
        let vals = [0.0, 0.25, 0.5, 1.0, 1.0 + 2f64.powi(-50)];
        let pts: Vec<Point2> = vals
            .iter()
            .flat_map(|&x| vals.iter().map(move |&y| Point2::new(x, y)))
            .collect();
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    let o1 = orient2d(a, b, c);
                    let o2 = orient2d(b, c, a);
                    let o3 = orient2d(b, a, c);
                    assert_eq!(o1, o2);
                    match o1 {
                        Orientation::Positive => assert_eq!(o3, Orientation::Negative),
                        Orientation::Negative => assert_eq!(o3, Orientation::Positive),
                        Orientation::Zero => assert_eq!(o3, Orientation::Zero),
                    }
                }
            }
        }
    }

    #[test]
    fn incircle_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        // circumcircle has centre (0.5, 0.5) and radius sqrt(0.5)
        assert_eq!(
            incircle(a, b, c, Point2::new(0.5, 0.5)),
            Orientation::Positive
        );
        assert_eq!(
            incircle(a, b, c, Point2::new(5.0, 5.0)),
            Orientation::Negative
        );
        assert_eq!(
            incircle(a, b, c, Point2::new(1.0, 1.0)),
            Orientation::Zero,
            "the fourth cocircular corner must be detected exactly"
        );
    }

    #[test]
    fn incircle_near_cocircular_is_exact() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(1.0, 1.0);
        let just_inside = Point2::new(0.0, 1.0 - 2f64.powi(-48));
        let just_outside = Point2::new(0.0, 1.0 + 2f64.powi(-48));
        assert_eq!(incircle(a, b, c, just_inside), Orientation::Positive);
        assert_eq!(incircle(a, b, c, just_outside), Orientation::Negative);
    }

    #[test]
    fn incircle_orientation_convention() {
        // For a clockwise triangle the sign flips; the triangulation never
        // stores clockwise triangles but the predicate behaviour is defined.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        let c = Point2::new(1.0, 0.0);
        assert_eq!(
            incircle(a, b, c, Point2::new(0.4, 0.4)),
            Orientation::Negative
        );
    }

    #[test]
    fn circumcenter_matches_equidistance() {
        let a = Point2::new(0.1, 0.2);
        let b = Point2::new(0.9, 0.25);
        let c = Point2::new(0.4, 0.8);
        let cc = circumcenter(a, b, c).unwrap();
        let ra = cc.distance(a);
        let rb = cc.distance(b);
        let rc = cc.distance(c);
        assert!((ra - rb).abs() < 1e-12);
        assert!((ra - rc).abs() < 1e-12);
        assert!((circumradius2(a, b, c).unwrap() - ra * ra).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_degenerate_is_none() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(0.5, 0.5);
        let c = Point2::new(1.0, 1.0);
        assert!(circumcenter(a, b, c).is_none());
    }

    #[test]
    fn point_in_triangle_boundaries() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        let edge_mid = Point2::new(0.5, 0.0);
        assert!(point_in_triangle(a, b, c, edge_mid));
        assert!(!point_strictly_in_triangle(a, b, c, edge_mid));
        assert!(point_strictly_in_triangle(a, b, c, Point2::new(0.2, 0.2)));
        assert!(!point_in_triangle(a, b, c, Point2::new(0.7, 0.7)));
    }

    #[test]
    fn incircle_consistency_with_circumcenter() {
        // Random-ish points: the robust predicate and the floating-point
        // circumcircle agree away from degeneracy.
        let a = Point2::new(0.12, 0.77);
        let b = Point2::new(0.55, 0.13);
        let c = Point2::new(0.91, 0.64);
        // ensure CCW
        let (a, b, c) = if orient2d(a, b, c).is_positive() {
            (a, b, c)
        } else {
            (a, c, b)
        };
        let cc = circumcenter(a, b, c).unwrap();
        let r2 = cc.distance2(a);
        for &(x, y) in &[(0.3, 0.4), (0.9, 0.9), (0.5, 0.5), (0.05, 0.05)] {
            let p = Point2::new(x, y);
            let inside_fp = cc.distance2(p) < r2 - 1e-9;
            let outside_fp = cc.distance2(p) > r2 + 1e-9;
            match incircle(a, b, c, p) {
                Orientation::Positive => assert!(inside_fp),
                Orientation::Negative => assert!(outside_fp),
                Orientation::Zero => {}
            }
        }
    }
}
