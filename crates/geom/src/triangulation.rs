//! Incremental Delaunay triangulation of the VoroNet attribute space.
//!
//! The triangulation is the data structure behind every Voronoi-related
//! operation of the overlay: an object's Voronoi neighbours `vn(o)` are its
//! Delaunay neighbours, `AddVoronoiRegion` is a point insertion and
//! `RemoveVoronoiRegion` is a vertex removal.
//!
//! # Representation
//!
//! A classic triangle-based structure: a flat `Vec` of triangles, each
//! storing its three vertex indices in counter-clockwise order and the three
//! adjacent triangles (`n[i]` lies opposite vertex `v[i]`).  The attribute
//! domain (the unit square in the paper) is enclosed in a *sentinel box*:
//! four auxiliary vertices placed far outside the domain.  Every real vertex
//! is therefore always interior, which removes all convex-hull special cases
//! from insertion, removal and point location.  Because the sentinels are
//! more than an order of magnitude farther from the domain than its diagonal,
//! the owner of any domain point and the greedy-routing behaviour inside the
//! domain are identical to those of the unbounded Voronoi diagram (see
//! DESIGN.md for the argument); only the reported degree of convex-hull
//! objects may differ marginally, which the evaluation tolerates.
//!
//! # Robustness
//!
//! All combinatorial decisions go through the exact predicates of
//! [`crate::predicates`]; co-linear and co-circular inputs (the "calculation
//! degeneracy" the paper delegates to Sugihara–Iri) are handled exactly.

use crate::point::{Point2, Rect};
use crate::predicates::{incircle, orient2d, Orientation};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sentinel value for "no triangle / no vertex".
pub const NIL: u32 = u32::MAX;

/// Number of sentinel vertices enclosing the domain.
pub const SENTINEL_COUNT: u32 = 4;

/// Identifier of a vertex of the triangulation (stable across removals of
/// other vertices).
pub type VertexId = u32;

/// Identifier of a triangle (unstable: recycled by insertions/removals).
pub type TriId = u32;

/// A triangle of the mesh: vertices in counter-clockwise order and the
/// adjacent triangle opposite each vertex.
#[derive(Debug, Clone, Copy)]
struct Triangle {
    v: [u32; 3],
    n: [u32; 3],
}

impl Triangle {
    fn index_of_vertex(&self, v: u32) -> Option<usize> {
        (0..3).find(|&i| self.v[i] == v)
    }

    /// Index `i` such that the edge opposite `v[i]` is `{a, b}`.
    fn index_of_edge(&self, a: u32, b: u32) -> Option<usize> {
        (0..3).find(|&i| {
            let p = self.v[(i + 1) % 3];
            let q = self.v[(i + 2) % 3];
            (p == a && q == b) || (p == b && q == a)
        })
    }
}

/// Result of locating a point in the triangulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locate {
    /// The point lies strictly inside the returned triangle.
    Inside(TriId),
    /// The point lies on the edge opposite vertex `.1` of triangle `.0`.
    OnEdge(TriId, u8),
    /// The point coincides exactly with an existing vertex.
    OnVertex(VertexId),
    /// The point lies outside the sentinel box (outside the supported
    /// domain).
    Outside,
}

/// Error returned by [`Triangulation::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The point coincides exactly with an existing vertex.
    Duplicate(VertexId),
    /// The point lies outside the domain covered by the sentinel box.
    OutsideDomain,
    /// The point has a non-finite coordinate.
    NotFinite,
}

/// Error returned by [`Triangulation::remove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveError {
    /// The vertex id does not refer to a live vertex.
    NotFound,
    /// Sentinel vertices cannot be removed.
    Sentinel,
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::Duplicate(v) => write!(f, "point duplicates existing vertex {v}"),
            InsertError::OutsideDomain => write!(f, "point lies outside the supported domain"),
            InsertError::NotFinite => write!(f, "point has a non-finite coordinate"),
        }
    }
}

impl std::fmt::Display for RemoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoveError::NotFound => write!(f, "vertex is not part of the triangulation"),
            RemoveError::Sentinel => write!(f, "sentinel vertices cannot be removed"),
        }
    }
}

impl std::error::Error for InsertError {}
impl std::error::Error for RemoveError {}

/// Incremental Delaunay triangulation over a rectangular domain.
///
/// The structure is `Sync`: point location ([`Triangulation::locate`],
/// [`Triangulation::nearest_vertex`]) and every neighbourhood query take
/// `&self` and keep their walk state (the last-touched-triangle hint and
/// the walk-tiebreak RNG) in relaxed atomics, so concurrent readers are
/// sound.  Under contention the hint/RNG updates may interleave, which only
/// perturbs *which* walk a reader takes — never the located triangle or the
/// nearest vertex it returns.
pub struct Triangulation {
    points: Vec<Point2>,
    vert_tri: Vec<u32>,
    vert_alive: Vec<bool>,
    free_verts: Vec<u32>,
    tris: Vec<Triangle>,
    tri_alive: Vec<bool>,
    free_tris: Vec<u32>,
    /// Conflict-search epoch marks, indexed by triangle id.
    marks: Vec<u64>,
    epoch: u64,
    hint: AtomicU32,
    rng: AtomicU64,
    domain: Rect,
    live_real_vertices: usize,
}

impl Clone for Triangulation {
    fn clone(&self) -> Self {
        Triangulation {
            points: self.points.clone(),
            vert_tri: self.vert_tri.clone(),
            vert_alive: self.vert_alive.clone(),
            free_verts: self.free_verts.clone(),
            tris: self.tris.clone(),
            tri_alive: self.tri_alive.clone(),
            free_tris: self.free_tris.clone(),
            marks: self.marks.clone(),
            epoch: self.epoch,
            hint: AtomicU32::new(self.hint.load(Ordering::Relaxed)),
            rng: AtomicU64::new(self.rng.load(Ordering::Relaxed)),
            domain: self.domain,
            live_real_vertices: self.live_real_vertices,
        }
    }
}

impl Triangulation {
    /// Creates an empty triangulation covering `domain`.
    ///
    /// Points inserted later must lie inside `domain` (inclusive of its
    /// boundary).
    pub fn new(domain: Rect) -> Self {
        let margin = 16.0 * domain.width().max(domain.height()).max(1.0);
        let bbox = domain.inflate(margin);
        let corners = bbox.corners();
        let points = corners.to_vec();
        // Two triangles covering the sentinel box: (0,1,2) and (0,2,3),
        // both counter-clockwise because corners() is counter-clockwise.
        let t0 = Triangle {
            v: [0, 1, 2],
            n: [NIL, 1, NIL],
        };
        let t1 = Triangle {
            v: [0, 2, 3],
            n: [NIL, NIL, 0],
        };
        Triangulation {
            points,
            vert_tri: vec![0, 0, 0, 1],
            vert_alive: vec![true; 4],
            free_verts: Vec::new(),
            tris: vec![t0, t1],
            tri_alive: vec![true, true],
            free_tris: Vec::new(),
            marks: vec![0, 0],
            epoch: 0,
            hint: AtomicU32::new(0),
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            domain,
            live_real_vertices: 0,
        }
    }

    /// Creates a triangulation over the unit square (the paper's attribute
    /// space).
    pub fn unit_square() -> Self {
        Triangulation::new(Rect::UNIT)
    }

    /// The domain passed at construction.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// Number of live real (non-sentinel) vertices.
    pub fn len(&self) -> usize {
        self.live_real_vertices
    }

    /// True when no real vertex is present.
    pub fn is_empty(&self) -> bool {
        self.live_real_vertices == 0
    }

    /// True when `v` is one of the four sentinel vertices.
    #[inline]
    pub fn is_sentinel(&self, v: VertexId) -> bool {
        v < SENTINEL_COUNT
    }

    /// True when `v` refers to a live vertex (sentinel or real).
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.vert_alive.len() && self.vert_alive[v as usize]
    }

    /// Coordinates of a live vertex.
    ///
    /// # Panics
    /// Panics if `v` is not a live vertex.
    #[inline]
    pub fn point(&self, v: VertexId) -> Point2 {
        debug_assert!(self.contains_vertex(v));
        self.points[v as usize]
    }

    /// Iterator over the ids of all live real vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (SENTINEL_COUNT..self.vert_alive.len() as u32).filter(move |&v| self.vert_alive[v as usize])
    }

    /// Iterator over live triangles as vertex-id triples (including triangles
    /// touching sentinels).
    pub fn triangles(&self) -> impl Iterator<Item = [VertexId; 3]> + '_ {
        (0..self.tris.len()).filter_map(move |t| self.tri_alive[t].then_some(self.tris[t].v))
    }

    /// Iterator over live triangles whose three vertices are real objects.
    pub fn real_triangles(&self) -> impl Iterator<Item = [VertexId; 3]> + '_ {
        self.triangles()
            .filter(move |t| t.iter().all(|&v| !self.is_sentinel(v)))
    }

    /// Number of live triangles (including sentinel triangles).
    pub fn num_triangles(&self) -> usize {
        self.tri_alive.iter().filter(|&&a| a).count()
    }

    /// Vertex ids of a live triangle, or `None` if the id refers to a
    /// recycled triangle.
    pub fn triangle_vertices(&self, t: TriId) -> Option<[VertexId; 3]> {
        ((t as usize) < self.tris.len() && self.tri_alive[t as usize])
            .then(|| self.tris[t as usize].v)
    }

    // ------------------------------------------------------------------
    // Point location
    // ------------------------------------------------------------------

    fn next_rand(&self) -> u64 {
        // xorshift64*; quality is irrelevant, it only breaks walk cycles.
        // Relaxed load/store: a racy interleaving merely reuses or skips a
        // draw, which is as good as any other draw for cycle breaking.
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng.store(x, Ordering::Relaxed);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn any_live_triangle(&self) -> TriId {
        let h = self.hint.load(Ordering::Relaxed);
        if (h as usize) < self.tri_alive.len() && self.tri_alive[h as usize] {
            return h;
        }
        self.tri_alive
            .iter()
            .position(|&a| a)
            .expect("triangulation always has at least two live triangles") as u32
    }

    /// Locates `p` in the triangulation by a stochastic walk from the last
    /// touched triangle.
    pub fn locate(&self, p: Point2) -> Locate {
        if !p.is_finite() {
            return Locate::Outside;
        }
        let mut cur = self.any_live_triangle();
        // A walk in a Delaunay triangulation with randomised edge order
        // terminates with probability 1; the bound below is a defensive cap
        // that is never hit in practice.
        let cap = 8 * (self.tris.len() + 16);
        for _ in 0..cap {
            let t = &self.tris[cur as usize];
            let r = (self.next_rand() % 3) as usize;
            let mut moved = false;
            for k in 0..3 {
                let i = (r + k) % 3;
                let a = self.points[t.v[(i + 1) % 3] as usize];
                let b = self.points[t.v[(i + 2) % 3] as usize];
                if orient2d(a, b, p).is_negative() {
                    let nb = t.n[i];
                    if nb == NIL {
                        return Locate::Outside;
                    }
                    cur = nb;
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            // p is inside or on the boundary of `cur`.
            self.hint.store(cur, Ordering::Relaxed);
            for i in 0..3 {
                let vp = self.points[t.v[i] as usize];
                if vp.x == p.x && vp.y == p.y {
                    return Locate::OnVertex(t.v[i]);
                }
            }
            for i in 0..3 {
                let a = self.points[t.v[(i + 1) % 3] as usize];
                let b = self.points[t.v[(i + 2) % 3] as usize];
                if orient2d(a, b, p).is_zero() {
                    return Locate::OnEdge(cur, i as u8);
                }
            }
            return Locate::Inside(cur);
        }
        // Defensive fallback: exhaustive scan (should be unreachable).
        for (ti, tri) in self.tris.iter().enumerate() {
            if !self.tri_alive[ti] {
                continue;
            }
            let a = self.points[tri.v[0] as usize];
            let b = self.points[tri.v[1] as usize];
            let c = self.points[tri.v[2] as usize];
            if crate::predicates::point_in_triangle(a, b, c, p) {
                return Locate::Inside(ti as u32);
            }
        }
        Locate::Outside
    }

    /// The live vertex nearest to `p`, found by greedy descent over the
    /// Delaunay graph (the "Voronoi region owner" of `p`).
    ///
    /// Returns `None` when the triangulation holds no real vertex.  For a
    /// point of the domain the result is always a real vertex because the
    /// sentinels are farther from the domain than any real object can be.
    pub fn nearest_vertex(&self, p: Point2) -> Option<VertexId> {
        if self.live_real_vertices == 0 {
            return None;
        }
        let mut cur = self
            .vertices()
            .next()
            .expect("live_real_vertices > 0 implies at least one real vertex");
        let mut cur_d = self.points[cur as usize].distance2(p);
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for nb in self.neighbors_iter(cur) {
                let d = self.points[nb as usize].distance2(p);
                if d < best_d {
                    best = nb;
                    best_d = d;
                }
            }
            if best == cur {
                return Some(cur);
            }
            cur = best;
            cur_d = best_d;
        }
    }

    // ------------------------------------------------------------------
    // Neighbourhood queries
    // ------------------------------------------------------------------
    //
    // The iterator forms ([`Triangulation::neighbors_iter`],
    // [`Triangulation::real_neighbors_iter`]) and the caller-buffer forms
    // (`*_into`) are the hot-path API: they walk the triangle fan in place
    // and never touch the heap.  The `Vec`-returning methods are thin
    // wrappers kept for convenience and for cold callers.

    /// Allocation-free iterator over all Delaunay neighbours of `v`
    /// (possibly including sentinels), in counter-clockwise order around `v`
    /// for interior vertices.
    pub fn neighbors_iter(&self, v: VertexId) -> NeighborIter<'_> {
        debug_assert!(self.contains_vertex(v));
        let start = self.vert_tri[v as usize];
        debug_assert!(start != NIL && self.tri_alive[start as usize]);
        NeighborIter {
            t: self,
            v,
            start,
            cur: start,
            phase: FanPhase::Ccw,
        }
    }

    /// Allocation-free iterator over the Delaunay neighbours of `v`
    /// restricted to real vertices.
    pub fn real_neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbors_iter(v).filter(|&u| !self.is_sentinel(u))
    }

    /// Collects all Delaunay neighbours of `v` into `out` (cleared first),
    /// in the order of [`Triangulation::neighbors_iter`].
    pub fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.neighbors_iter(v));
    }

    /// All Delaunay neighbours of `v` (possibly including sentinels), in
    /// counter-clockwise order around `v` for interior vertices.
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.neighbors_iter(v).collect()
    }

    /// Collects the real Delaunay neighbours of `v` into `out` (cleared
    /// first).
    pub fn real_neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.real_neighbors_iter(v));
    }

    /// Delaunay neighbours of `v` restricted to real vertices.
    pub fn real_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.real_neighbors_iter(v).collect()
    }

    /// Degree of `v` counting only real neighbours (the `|vn(o)|` statistic
    /// of the paper's Figure 5).  Allocation-free.
    pub fn real_degree(&self, v: VertexId) -> usize {
        self.real_neighbors_iter(v).count()
    }

    /// Collects the ids of live triangles incident to `v` into `out`
    /// (cleared first; counter-clockwise for interior vertices).
    pub fn incident_triangles_into(&self, v: VertexId, out: &mut Vec<TriId>) {
        out.clear();
        let start = self.vert_tri[v as usize];
        let mut cur = start;
        loop {
            let tri = &self.tris[cur as usize];
            let i = match tri.index_of_vertex(v) {
                Some(i) => i,
                None => break,
            };
            out.push(cur);
            let next = tri.n[(i + 1) % 3];
            if next == NIL || next == start {
                break;
            }
            cur = next;
        }
    }

    /// Ids of live triangles incident to `v` (counter-clockwise for interior
    /// vertices).
    pub fn incident_triangles(&self, v: VertexId) -> Vec<TriId> {
        let mut out = Vec::with_capacity(8);
        self.incident_triangles_into(v, &mut out);
        out
    }

    /// True when `a` and `b` are Delaunay neighbours.  Allocation-free.
    pub fn are_neighbors(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors_iter(a).any(|u| u == b)
    }

    /// Collects into `out` (cleared first) the vertices of the triangles
    /// incident to `v` at distance 2 or less (neighbours and neighbours'
    /// neighbours), excluding `v` itself and sentinels, sorted and deduped.
    /// Used by the overlay to seed close-neighbour discovery (Lemma 1 of the
    /// paper).
    pub fn two_hop_real_neighborhood_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        for n in self.real_neighbors_iter(v) {
            out.push(n);
            for m in self.real_neighbors_iter(n) {
                if m != v {
                    out.push(m);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Vertices of the triangles incident to `v` at distance 2 or less
    /// (neighbours and neighbours' neighbours), excluding `v` itself and
    /// sentinels.
    pub fn two_hop_real_neighborhood(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.two_hop_real_neighborhood_into(v, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    fn alloc_vertex(&mut self, p: Point2) -> u32 {
        if let Some(v) = self.free_verts.pop() {
            self.points[v as usize] = p;
            self.vert_alive[v as usize] = true;
            self.vert_tri[v as usize] = NIL;
            v
        } else {
            self.points.push(p);
            self.vert_alive.push(true);
            self.vert_tri.push(NIL);
            (self.points.len() - 1) as u32
        }
    }

    fn alloc_triangle(&mut self, v: [u32; 3]) -> u32 {
        let tri = Triangle { v, n: [NIL; 3] };
        if let Some(t) = self.free_tris.pop() {
            self.tris[t as usize] = tri;
            self.tri_alive[t as usize] = true;
            self.marks[t as usize] = 0;
            t
        } else {
            self.tris.push(tri);
            self.tri_alive.push(true);
            self.marks.push(0);
            (self.tris.len() - 1) as u32
        }
    }

    fn free_triangle(&mut self, t: u32) {
        self.tri_alive[t as usize] = false;
        self.free_tris.push(t);
    }

    /// Inserts a point of the domain and returns its vertex id.
    pub fn insert(&mut self, p: Point2) -> Result<VertexId, InsertError> {
        if !p.is_finite() {
            return Err(InsertError::NotFinite);
        }
        if !self.domain.contains(p) {
            return Err(InsertError::OutsideDomain);
        }
        let seed = match self.locate(p) {
            Locate::OnVertex(v) => return Err(InsertError::Duplicate(v)),
            Locate::Outside => return Err(InsertError::OutsideDomain),
            Locate::Inside(t) | Locate::OnEdge(t, _) => t,
        };

        // --- conflict region (cavity) -----------------------------------
        self.epoch += 1;
        let epoch = self.epoch;
        let mut cavity: Vec<u32> = Vec::with_capacity(8);
        let mut stack = vec![seed];
        self.marks[seed as usize] = epoch;
        while let Some(t) = stack.pop() {
            cavity.push(t);
            for i in 0..3 {
                let nb = self.tris[t as usize].n[i];
                if nb == NIL || self.marks[nb as usize] == epoch {
                    continue;
                }
                let tv = self.tris[nb as usize].v;
                let a = self.points[tv[0] as usize];
                let b = self.points[tv[1] as usize];
                let c = self.points[tv[2] as usize];
                if incircle(a, b, c, p) == Orientation::Positive {
                    self.marks[nb as usize] = epoch;
                    stack.push(nb);
                }
            }
        }

        // --- boundary of the cavity --------------------------------------
        // Each entry: (first vertex, second vertex, outer triangle).
        let mut boundary: Vec<(u32, u32, u32)> = Vec::with_capacity(cavity.len() + 2);
        for &t in &cavity {
            let tri = self.tris[t as usize];
            for i in 0..3 {
                let nb = tri.n[i];
                if nb == NIL || self.marks[nb as usize] != epoch {
                    boundary.push((tri.v[(i + 1) % 3], tri.v[(i + 2) % 3], nb));
                }
            }
        }

        let vid = self.alloc_vertex(p);

        // --- re-triangulate the cavity -----------------------------------
        let mut new_tris: Vec<(u32, u32, u32)> = Vec::with_capacity(boundary.len());
        for &(a, b, outer) in &boundary {
            let nt = self.alloc_triangle([vid, a, b]);
            // Neighbour opposite the new vertex is the old outer triangle.
            self.tris[nt as usize].n[0] = outer;
            if outer != NIL {
                let oi = self.tris[outer as usize]
                    .index_of_edge(a, b)
                    .expect("outer triangle shares the boundary edge");
                self.tris[outer as usize].n[oi] = nt;
            }
            self.vert_tri[a as usize] = nt;
            self.vert_tri[b as usize] = nt;
            new_tris.push((a, b, nt));
        }
        // Wire the fan: the triangle on edge (a, b) is adjacent, across the
        // edge (b, vid), to the triangle on the boundary edge starting at b.
        for &(a, b, nt) in &new_tris {
            let next = new_tris
                .iter()
                .find(|&&(s, _, _)| s == b)
                .map(|&(_, _, t)| t)
                .expect("cavity boundary is a closed cycle");
            let prev = new_tris
                .iter()
                .find(|&&(_, e, _)| e == a)
                .map(|&(_, _, t)| t)
                .expect("cavity boundary is a closed cycle");
            self.tris[nt as usize].n[1] = next;
            self.tris[nt as usize].n[2] = prev;
        }
        self.vert_tri[vid as usize] = new_tris[0].2;
        self.hint.store(new_tris[0].2, Ordering::Relaxed);

        for t in cavity {
            self.free_triangle(t);
        }
        self.live_real_vertices += 1;
        Ok(vid)
    }

    // ------------------------------------------------------------------
    // Removal
    // ------------------------------------------------------------------

    /// Removes a real vertex, re-triangulating its star (the overlay's
    /// `RemoveVoronoiRegion`).
    pub fn remove(&mut self, v: VertexId) -> Result<(), RemoveError> {
        if !self.contains_vertex(v) {
            return Err(RemoveError::NotFound);
        }
        if self.is_sentinel(v) {
            return Err(RemoveError::Sentinel);
        }

        // Ordered star: incident triangles counter-clockwise, the link
        // polygon and the outer neighbour across each link edge.
        let star = self.incident_triangles(v);
        debug_assert!(star.len() >= 3);
        let mut link: Vec<u32> = Vec::with_capacity(star.len());
        let mut outer: Vec<u32> = Vec::with_capacity(star.len());
        for &t in &star {
            let tri = self.tris[t as usize];
            let i = tri
                .index_of_vertex(v)
                .expect("star triangles contain the removed vertex");
            link.push(tri.v[(i + 1) % 3]);
            outer.push(tri.n[i]);
        }
        let k = link.len();

        // Edge bookkeeping for the hole: entry j describes the edge from
        // polygon[j] to polygon[j+1] and holds the triangle on its far side.
        #[derive(Clone, Copy)]
        enum EdgeRef {
            Outside(u32),
            Created(u32),
        }
        let mut polygon: Vec<u32> = link.clone();
        let mut edges: Vec<EdgeRef> = outer.iter().map(|&o| EdgeRef::Outside(o)).collect();

        for &t in &star {
            self.free_triangle(t);
        }

        let mut created: Vec<u32> = Vec::with_capacity(k.saturating_sub(2));
        let mut flip_queue: Vec<(u32, usize)> = Vec::new();

        // Wires triangle `nt`'s slot `slot` (edge {a,b}) to whatever is on
        // the far side of that edge.
        let wire = |this: &mut Self, nt: u32, slot: usize, a: u32, b: u32, far: EdgeRef| match far {
            EdgeRef::Outside(o) | EdgeRef::Created(o) => {
                this.tris[nt as usize].n[slot] = o;
                if o != NIL {
                    let oi = this.tris[o as usize]
                        .index_of_edge(a, b)
                        .expect("far triangle shares the hole edge");
                    this.tris[o as usize].n[oi] = nt;
                }
            }
        };

        while polygon.len() > 3 {
            let n = polygon.len();
            let ear = self
                .find_ear(&polygon)
                .expect("a simple polygon with positive area always has an ear");
            let prev = (ear + n - 1) % n;
            let next = (ear + 1) % n;
            let (a, b, c) = (polygon[prev], polygon[ear], polygon[next]);
            let nt = self.alloc_triangle([a, b, c]);
            created.push(nt);
            // Slot 2 is edge (a, b); slot 0 is edge (b, c); slot 1 is the new
            // diagonal (c, a).
            let e_ab = edges[prev];
            let e_bc = edges[ear];
            wire(self, nt, 2, a, b, e_ab);
            wire(self, nt, 0, b, c, e_bc);
            self.vert_tri[a as usize] = nt;
            self.vert_tri[b as usize] = nt;
            self.vert_tri[c as usize] = nt;
            flip_queue.push((nt, 1));
            // Collapse the two consumed edges into the diagonal.
            edges[prev] = EdgeRef::Created(nt);
            polygon.remove(ear);
            edges.remove(ear);
        }
        // Final triangle closing the hole.
        let (a, b, c) = (polygon[0], polygon[1], polygon[2]);
        let nt = self.alloc_triangle([a, b, c]);
        created.push(nt);
        wire(self, nt, 2, a, b, edges[0]);
        wire(self, nt, 0, b, c, edges[1]);
        wire(self, nt, 1, c, a, edges[2]);
        self.vert_tri[a as usize] = nt;
        self.vert_tri[b as usize] = nt;
        self.vert_tri[c as usize] = nt;

        // Free the vertex.
        self.vert_alive[v as usize] = false;
        self.vert_tri[v as usize] = NIL;
        self.free_verts.push(v);
        self.live_real_vertices -= 1;
        self.hint.store(
            *created.last().expect("at least one triangle created"),
            Ordering::Relaxed,
        );

        // Restore the Delaunay property on the diagonals created by ear
        // clipping (Lawson flips; hole boundary edges are already Delaunay).
        self.restore_delaunay(flip_queue);
        Ok(())
    }

    /// Finds a clippable ear of the hole polygon: a strictly convex corner
    /// whose triangle contains no other polygon vertex.  Among clippable
    /// ears, one whose circumcircle is empty of the other polygon vertices is
    /// preferred (it is already Delaunay and will not need flipping).
    fn find_ear(&self, polygon: &[u32]) -> Option<usize> {
        let n = polygon.len();
        let mut fallback = None;
        for j in 0..n {
            let a = polygon[(j + n - 1) % n];
            let b = polygon[j];
            let c = polygon[(j + 1) % n];
            let pa = self.points[a as usize];
            let pb = self.points[b as usize];
            let pc = self.points[c as usize];
            if orient2d(pa, pb, pc) != Orientation::Positive {
                continue;
            }
            let mut valid = true;
            let mut delaunay = true;
            for (idx, &q) in polygon.iter().enumerate() {
                if idx == j || idx == (j + n - 1) % n || idx == (j + 1) % n {
                    continue;
                }
                let pq = self.points[q as usize];
                if crate::predicates::point_in_triangle(pa, pb, pc, pq) {
                    valid = false;
                    break;
                }
                if incircle(pa, pb, pc, pq) == Orientation::Positive {
                    delaunay = false;
                }
            }
            if valid {
                if delaunay {
                    return Some(j);
                }
                fallback.get_or_insert(j);
            }
        }
        fallback
    }

    /// Lawson flip propagation from the given (triangle, edge-slot) seeds.
    fn restore_delaunay(&mut self, mut queue: Vec<(u32, usize)>) {
        let mut guard = 0usize;
        let cap = 64 * (queue.len() + 4) * (queue.len() + 4) + 4096;
        while let Some((t, i)) = queue.pop() {
            guard += 1;
            if guard > cap {
                debug_assert!(false, "flip propagation exceeded its bound");
                break;
            }
            if !self.tri_alive[t as usize] {
                continue;
            }
            let nb = self.tris[t as usize].n[i];
            if nb == NIL || !self.tri_alive[nb as usize] {
                continue;
            }
            let tri = self.tris[t as usize];
            let a = self.points[tri.v[0] as usize];
            let b = self.points[tri.v[1] as usize];
            let c = self.points[tri.v[2] as usize];
            let other = self.tris[nb as usize];
            let oi = other
                .index_of_edge(tri.v[(i + 1) % 3], tri.v[(i + 2) % 3])
                .expect("adjacent triangles share an edge");
            let d = self.points[other.v[oi] as usize];
            if incircle(a, b, c, d) == Orientation::Positive {
                self.flip(t, i);
                // Re-examine the four outer edges of the new pair.
                for &(tt, slot) in &[(t, 1usize), (t, 2usize), (nb, 1usize), (nb, 2usize)] {
                    queue.push((tt, slot));
                }
                // Also re-check the flipped diagonal's far sides.
                queue.push((t, 0));
                queue.push((nb, 0));
            }
        }
    }

    /// Flips the edge opposite slot `i1` of triangle `t1` with its neighbour.
    ///
    /// After the flip, `t1` and the old neighbour `t2` are reused for the two
    /// new triangles and the flipped diagonal is the edge at slot 0 of both.
    fn flip(&mut self, t1: u32, i1: usize) {
        let t2 = self.tris[t1 as usize].n[i1];
        debug_assert!(t2 != NIL);
        let tri1 = self.tris[t1 as usize];
        let tri2 = self.tris[t2 as usize];
        let a = tri1.v[i1];
        let b = tri1.v[(i1 + 1) % 3];
        let c = tri1.v[(i1 + 2) % 3];
        let i2 = tri2
            .index_of_edge(b, c)
            .expect("neighbour shares the flipped edge");
        let d = tri2.v[i2];

        // Outer neighbours of the quad (a, b, d, c).
        let n_ab = tri1.n[(i1 + 2) % 3]; // opposite c: edge (a, b)
        let n_ca = tri1.n[(i1 + 1) % 3]; // opposite b: edge (c, a)
        let n_bd = tri2
            .n
            .iter()
            .enumerate()
            .find(|&(j, _)| {
                let p = tri2.v[(j + 1) % 3];
                let q = tri2.v[(j + 2) % 3];
                (p == b && q == d) || (p == d && q == b)
            })
            .map(|(j, _)| tri2.n[j])
            .expect("quad edge (b, d) exists");
        let n_dc = tri2
            .n
            .iter()
            .enumerate()
            .find(|&(j, _)| {
                let p = tri2.v[(j + 1) % 3];
                let q = tri2.v[(j + 2) % 3];
                (p == d && q == c) || (p == c && q == d)
            })
            .map(|(j, _)| tri2.n[j])
            .expect("quad edge (d, c) exists");

        // New triangles: (a, b, d) and (a, d, c); diagonal (a, d) at slot 0
        // of... careful: slot 0 is opposite v[0]. For (a, b, d) the diagonal
        // (a, d) is opposite b (slot 1); re-derive slots explicitly instead.
        self.tris[t1 as usize] = Triangle {
            v: [a, b, d],
            n: [n_bd, t2, n_ab],
        };
        self.tris[t2 as usize] = Triangle {
            v: [a, d, c],
            n: [n_dc, n_ca, t1],
        };

        // Fix back-pointers of the outer neighbours.
        for &(outer, x, y, me) in &[
            (n_ab, a, b, t1),
            (n_bd, b, d, t1),
            (n_dc, d, c, t2),
            (n_ca, c, a, t2),
        ] {
            if outer != NIL {
                let oi = self.tris[outer as usize]
                    .index_of_edge(x, y)
                    .expect("outer neighbour shares its edge");
                self.tris[outer as usize].n[oi] = me;
            }
        }

        // Vertex-to-triangle hints.
        self.vert_tri[a as usize] = t1;
        self.vert_tri[b as usize] = t1;
        self.vert_tri[d as usize] = t2;
        self.vert_tri[c as usize] = t2;
    }

    // ------------------------------------------------------------------
    // Validation (used by tests and debug assertions)
    // ------------------------------------------------------------------

    /// Checks the structural invariants and the Delaunay property of every
    /// live edge.  Intended for tests; cost is O(T · cost(incircle)).
    pub fn validate(&self) -> Result<(), String> {
        for (ti, tri) in self.tris.iter().enumerate() {
            if !self.tri_alive[ti] {
                continue;
            }
            let pa = self.points[tri.v[0] as usize];
            let pb = self.points[tri.v[1] as usize];
            let pc = self.points[tri.v[2] as usize];
            for &v in &tri.v {
                if !self.contains_vertex(v) {
                    return Err(format!("triangle {ti} references dead vertex {v}"));
                }
            }
            if orient2d(pa, pb, pc) != Orientation::Positive {
                return Err(format!("triangle {ti} is not counter-clockwise"));
            }
            for i in 0..3 {
                let nb = tri.n[i];
                if nb == NIL {
                    continue;
                }
                if !self.tri_alive[nb as usize] {
                    return Err(format!("triangle {ti} has dead neighbour {nb}"));
                }
                let a = tri.v[(i + 1) % 3];
                let b = tri.v[(i + 2) % 3];
                let other = &self.tris[nb as usize];
                let oi = match other.index_of_edge(a, b) {
                    Some(oi) => oi,
                    None => {
                        return Err(format!(
                            "triangles {ti} and {nb} disagree about their shared edge"
                        ))
                    }
                };
                if other.n[oi] != ti as u32 {
                    return Err(format!(
                        "neighbour back-pointer broken between {ti} and {nb}"
                    ));
                }
                // Local Delaunay check.
                let d = self.points[other.v[oi] as usize];
                if incircle(pa, pb, pc, d) == Orientation::Positive {
                    return Err(format!(
                        "edge between triangles {ti} and {nb} violates the Delaunay property"
                    ));
                }
            }
        }
        for v in 0..self.vert_alive.len() {
            if !self.vert_alive[v] {
                continue;
            }
            let t = self.vert_tri[v];
            if t == NIL || !self.tri_alive[t as usize] {
                return Err(format!("vertex {v} has no live incident triangle"));
            }
            if self.tris[t as usize].index_of_vertex(v as u32).is_none() {
                return Err(format!("vertex {v} hint triangle does not contain it"));
            }
        }
        Ok(())
    }

    /// Euler-characteristic sanity count: `T = 2·V − 2 − H` for a
    /// triangulated convex region with `H` hull vertices (here the sentinel
    /// box, `H = 4`), counting all live vertices.
    pub fn euler_check(&self) -> bool {
        let v = self.live_real_vertices + SENTINEL_COUNT as usize;
        let t = self.num_triangles();
        t == 2 * v - 2 - 4
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FanPhase {
    Ccw,
    Cw,
    Done,
}

/// Allocation-free iterator over the Delaunay neighbours of one vertex,
/// produced by [`Triangulation::neighbors_iter`].
///
/// Walks the incident-triangle fan counter-clockwise; when the fan is open
/// (which only happens at the sentinel vertices, since the sentinel box
/// keeps every real vertex interior) it restarts at the first triangle and
/// sweeps clockwise to cover the remaining wedge.
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    t: &'a Triangulation,
    v: VertexId,
    start: u32,
    cur: u32,
    phase: FanPhase,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        match self.phase {
            FanPhase::Done => None,
            FanPhase::Ccw => {
                let tri = &self.t.tris[self.cur as usize];
                let i = tri
                    .index_of_vertex(self.v)
                    .expect("vert_tri invariant: triangle contains its vertex");
                let out = tri.v[(i + 1) % 3];
                let next = tri.n[(i + 1) % 3];
                if next == NIL {
                    // Open fan: switch to the clockwise sweep from the start.
                    self.phase = FanPhase::Cw;
                    self.cur = self.start;
                } else if next == self.start {
                    self.phase = FanPhase::Done;
                } else {
                    self.cur = next;
                }
                Some(out)
            }
            FanPhase::Cw => {
                let tri = &self.t.tris[self.cur as usize];
                let i = tri
                    .index_of_vertex(self.v)
                    .expect("vert_tri invariant: triangle contains its vertex");
                let prev = tri.n[(i + 2) % 3];
                if prev == NIL || prev == self.start {
                    self.phase = FanPhase::Done;
                    return None;
                }
                self.cur = prev;
                let tri = &self.t.tris[self.cur as usize];
                let i = tri
                    .index_of_vertex(self.v)
                    .expect("vert_tri invariant: triangle contains its vertex");
                Some(tri.v[(i + 1) % 3])
            }
        }
    }
}

impl std::fmt::Debug for Triangulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Triangulation")
            .field("real_vertices", &self.live_real_vertices)
            .field("triangles", &self.num_triangles())
            .field("domain", &self.domain)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
            .collect()
    }

    #[test]
    fn empty_triangulation_invariants() {
        let t = Triangulation::unit_square();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.num_triangles(), 2);
        assert!(t.euler_check());
        t.validate().unwrap();
        assert_eq!(t.nearest_vertex(Point2::new(0.5, 0.5)), None);
    }

    #[test]
    fn single_insertion() {
        let mut t = Triangulation::unit_square();
        let v = t.insert(Point2::new(0.5, 0.5)).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_sentinel(v));
        assert_eq!(t.num_triangles(), 4);
        assert!(t.euler_check());
        t.validate().unwrap();
        assert_eq!(t.real_degree(v), 0);
        assert_eq!(t.neighbors(v).len(), 4);
        assert_eq!(t.nearest_vertex(Point2::new(0.1, 0.9)), Some(v));
    }

    #[test]
    fn duplicate_insertion_rejected() {
        let mut t = Triangulation::unit_square();
        let v = t.insert(Point2::new(0.25, 0.75)).unwrap();
        assert_eq!(
            t.insert(Point2::new(0.25, 0.75)),
            Err(InsertError::Duplicate(v))
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn outside_domain_rejected() {
        let mut t = Triangulation::unit_square();
        assert_eq!(
            t.insert(Point2::new(1.5, 0.5)),
            Err(InsertError::OutsideDomain)
        );
        assert_eq!(
            t.insert(Point2::new(f64::NAN, 0.5)),
            Err(InsertError::NotFinite)
        );
    }

    #[test]
    fn random_insertions_stay_delaunay() {
        let mut t = Triangulation::unit_square();
        for p in random_points(300, 42) {
            t.insert(p).unwrap();
        }
        assert_eq!(t.len(), 300);
        assert!(t.euler_check());
        t.validate().unwrap();
    }

    #[test]
    fn grid_insertions_handle_cocircular_points() {
        // A regular grid is maximally degenerate: every unit cell is
        // co-circular and many points are collinear.
        let mut t = Triangulation::unit_square();
        let n = 12;
        for i in 0..n {
            for j in 0..n {
                let p = Point2::new(i as f64 / (n - 1) as f64, j as f64 / (n - 1) as f64);
                t.insert(p).unwrap();
            }
        }
        assert_eq!(t.len(), n * n);
        assert!(t.euler_check());
        t.validate().unwrap();
    }

    #[test]
    fn collinear_insertions() {
        let mut t = Triangulation::unit_square();
        for i in 0..50 {
            let x = i as f64 / 49.0;
            t.insert(Point2::new(x, 0.5)).unwrap();
        }
        assert_eq!(t.len(), 50);
        t.validate().unwrap();
    }

    #[test]
    fn locate_results_are_consistent() {
        let mut t = Triangulation::unit_square();
        let pts = random_points(100, 7);
        let ids: Vec<_> = pts.iter().map(|&p| t.insert(p).unwrap()).collect();
        for (&p, &v) in pts.iter().zip(&ids) {
            assert_eq!(t.locate(p), Locate::OnVertex(v));
        }
        match t.locate(Point2::new(0.5, 0.5)) {
            Locate::Inside(_) | Locate::OnEdge(_, _) | Locate::OnVertex(_) => {}
            Locate::Outside => panic!("interior point located outside"),
        }
        assert_eq!(t.locate(Point2::new(500.0, 0.5)), Locate::Outside);
    }

    #[test]
    fn nearest_vertex_matches_brute_force() {
        let mut t = Triangulation::unit_square();
        let pts = random_points(200, 3);
        let ids: Vec<_> = pts.iter().map(|&p| t.insert(p).unwrap()).collect();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let q = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            let found = t.nearest_vertex(q).unwrap();
            let brute = ids
                .iter()
                .min_by(|&&a, &&b| {
                    t.point(a)
                        .distance2(q)
                        .partial_cmp(&t.point(b).distance2(q))
                        .unwrap()
                })
                .copied()
                .unwrap();
            assert_eq!(
                t.point(found).distance2(q),
                t.point(brute).distance2(q),
                "greedy descent must find a true nearest vertex"
            );
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let mut t = Triangulation::unit_square();
        for p in random_points(150, 11) {
            t.insert(p).unwrap();
        }
        for v in t.vertices().collect::<Vec<_>>() {
            for n in t.real_neighbors(v) {
                assert!(
                    t.real_neighbors(n).contains(&v),
                    "neighbour relation must be symmetric"
                );
            }
        }
    }

    #[test]
    fn removal_restores_delaunay() {
        let mut t = Triangulation::unit_square();
        let pts = random_points(120, 5);
        let ids: Vec<_> = pts.iter().map(|&p| t.insert(p).unwrap()).collect();
        // Remove every third vertex.
        for (i, &v) in ids.iter().enumerate() {
            if i % 3 == 0 {
                t.remove(v).unwrap();
                assert!(!t.contains_vertex(v));
            }
        }
        assert_eq!(t.len(), 120 - 40);
        assert!(t.euler_check());
        t.validate().unwrap();
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let mut t = Triangulation::unit_square();
        let pts = random_points(60, 13);
        let ids: Vec<_> = pts.iter().map(|&p| t.insert(p).unwrap()).collect();
        for &v in &ids {
            t.remove(v).unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.num_triangles(), 2);
        t.validate().unwrap();
        for p in random_points(60, 14) {
            t.insert(p).unwrap();
        }
        assert_eq!(t.len(), 60);
        t.validate().unwrap();
    }

    #[test]
    fn removal_errors() {
        let mut t = Triangulation::unit_square();
        let v = t.insert(Point2::new(0.3, 0.3)).unwrap();
        assert_eq!(t.remove(0), Err(RemoveError::Sentinel));
        assert_eq!(t.remove(9999), Err(RemoveError::NotFound));
        t.remove(v).unwrap();
        assert_eq!(t.remove(v), Err(RemoveError::NotFound));
    }

    #[test]
    fn removal_on_grid_degeneracies() {
        let mut t = Triangulation::unit_square();
        let n = 8;
        let mut ids = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let p = Point2::new(i as f64 / (n - 1) as f64, j as f64 / (n - 1) as f64);
                ids.push(t.insert(p).unwrap());
            }
        }
        // Remove the interior of the grid in a checkerboard pattern.
        for (k, &v) in ids.iter().enumerate() {
            if k % 2 == 0 {
                t.remove(v).unwrap();
            }
        }
        t.validate().unwrap();
        assert!(t.euler_check());
    }

    #[test]
    fn churn_insert_remove_interleaved() {
        let mut t = Triangulation::unit_square();
        let mut rng = StdRng::seed_from_u64(77);
        let mut live: Vec<u32> = Vec::new();
        for step in 0..600 {
            if live.len() < 5 || rng.random::<f64>() < 0.6 {
                let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
                if let Ok(v) = t.insert(p) {
                    live.push(v);
                }
            } else {
                let idx = rng.random_range(0..live.len());
                let v = live.swap_remove(idx);
                t.remove(v).unwrap();
            }
            if step % 100 == 0 {
                t.validate().unwrap();
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), live.len());
    }

    #[test]
    fn expected_degree_is_about_six() {
        let mut t = Triangulation::unit_square();
        for p in random_points(2000, 21) {
            t.insert(p).unwrap();
        }
        let degrees: Vec<usize> = t.vertices().map(|v| t.real_degree(v)).collect();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        // Interior vertices have expected degree 6; hull-adjacent vertices
        // lower the average slightly.
        assert!(mean > 5.4 && mean < 6.2, "mean degree {mean} out of range");
    }

    #[test]
    fn neighbor_iter_matches_collected_forms_and_brute_force() {
        use std::collections::{BTreeMap, BTreeSet};
        let mut t = Triangulation::unit_square();
        for p in random_points(120, 91) {
            t.insert(p).unwrap();
        }
        // Independent oracle: adjacency reconstructed by scanning every live
        // triangle, with no fan walking involved.
        let mut oracle: BTreeMap<VertexId, BTreeSet<VertexId>> = BTreeMap::new();
        for tri in t.triangles() {
            for i in 0..3 {
                oracle.entry(tri[i]).or_default().insert(tri[(i + 1) % 3]);
                oracle.entry(tri[i]).or_default().insert(tri[(i + 2) % 3]);
            }
        }
        let mut buf = Vec::new();
        // Real vertices and the four sentinels (open fans) must agree across
        // the iterator, the `_into` and the `Vec` forms — and with the
        // oracle, each neighbour emitted exactly once.  Real vertices are
        // always interior (closed fans), so the walk must reproduce the
        // mesh adjacency exactly; a sentinel's open fan yields one
        // neighbour per incident triangle, which under-reports the far end
        // of its boundary edge — irrelevant to the overlay (sentinels are
        // never routed through) but pinned here as a subset.
        for v in (0..SENTINEL_COUNT).chain(t.vertices().collect::<Vec<_>>()) {
            let collected: Vec<_> = t.neighbors_iter(v).collect();
            let as_set: BTreeSet<_> = collected.iter().copied().collect();
            if t.is_sentinel(v) {
                assert!(
                    as_set.is_subset(&oracle[&v]),
                    "fan walk invented a neighbour at sentinel {v}"
                );
            } else {
                assert_eq!(
                    as_set, oracle[&v],
                    "fan walk disagrees with the mesh at {v}"
                );
            }
            assert_eq!(as_set.len(), collected.len(), "duplicate neighbour at {v}");
            assert_eq!(collected, t.neighbors(v));
            t.neighbors_into(v, &mut buf);
            assert_eq!(collected, buf);
            t.real_neighbors_into(v, &mut buf);
            assert_eq!(buf, t.real_neighbors(v));
            assert_eq!(t.real_degree(v), buf.len());
            for &n in &collected {
                assert!(t.are_neighbors(v, n));
            }
        }
    }

    #[test]
    fn removal_of_low_degree_vertices_keeps_invariants() {
        // A vertex inserted inside a triangle has degree 3 (the minimum);
        // removing it exercises the smallest possible hole polygon.
        let mut t = Triangulation::unit_square();
        let a = t.insert(Point2::new(0.2, 0.2)).unwrap();
        let b = t.insert(Point2::new(0.8, 0.2)).unwrap();
        let c = t.insert(Point2::new(0.5, 0.8)).unwrap();
        let mid = t.insert(Point2::new(0.5, 0.4)).unwrap();
        assert_eq!(t.real_degree(mid), 3);
        t.remove(mid).unwrap();
        t.validate().unwrap();
        assert!(t.euler_check());
        // Remove the remaining vertices down to the empty triangulation,
        // checking the structure after every single removal.
        for v in [a, b, c] {
            t.remove(v).unwrap();
            t.validate().unwrap();
            assert!(t.euler_check());
        }
        assert!(t.is_empty());
    }

    #[test]
    fn removal_of_hull_adjacent_vertices_keeps_invariants() {
        // Vertices on the domain boundary (corners and edge midpoints) are
        // Delaunay neighbours of the sentinel vertices; their stars contain
        // sentinel triangles, which the ear-clipping removal must handle.
        let mut t = Triangulation::unit_square();
        let boundary = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.0),
            Point2::new(1.0, 0.5),
            Point2::new(0.5, 1.0),
            Point2::new(0.0, 0.5),
        ];
        let mut ids = Vec::new();
        for p in boundary {
            ids.push(t.insert(p).unwrap());
        }
        for p in random_points(40, 93) {
            t.insert(p).unwrap();
        }
        t.validate().unwrap();
        for v in ids {
            assert!(
                t.neighbors_iter(v).any(|u| t.is_sentinel(u)),
                "boundary vertex {v} should touch the sentinel hull"
            );
            t.remove(v).unwrap();
            t.validate().unwrap();
            assert!(t.euler_check());
        }
        assert_eq!(t.len(), 40);
    }

    #[test]
    fn point_location_is_sound_under_concurrent_readers() {
        // The walk hint and tiebreak RNG are relaxed atomics, so `&self`
        // point location is sound (and deterministic in its *result*) when
        // many threads locate through one shared triangulation.
        fn assert_sync<T: Sync>() {}
        assert_sync::<Triangulation>();

        let mut t = Triangulation::unit_square();
        let pts = random_points(300, 61);
        let ids: Vec<_> = pts.iter().map(|&p| t.insert(p).unwrap()).collect();
        let queries = random_points(400, 62);
        let expected: Vec<VertexId> = queries
            .iter()
            .map(|&q| t.nearest_vertex(q).unwrap())
            .collect();
        std::thread::scope(|s| {
            for worker in 0..4 {
                let t = &t;
                let queries = &queries;
                let expected = &expected;
                let ids = &ids;
                s.spawn(move || {
                    for (i, &q) in queries.iter().enumerate() {
                        assert_eq!(t.nearest_vertex(q), Some(expected[i]));
                        match t.locate(q) {
                            Locate::Inside(_) | Locate::OnEdge(_, _) | Locate::OnVertex(_) => {}
                            Locate::Outside => panic!("interior point located outside"),
                        }
                        let v = ids[(i * 7 + worker) % ids.len()];
                        assert_eq!(t.locate(t.point(v)), Locate::OnVertex(v));
                    }
                });
            }
        });
    }

    #[test]
    fn two_hop_neighborhood_contains_direct_neighbors() {
        let mut t = Triangulation::unit_square();
        for p in random_points(100, 31) {
            t.insert(p).unwrap();
        }
        for v in t.vertices().take(20).collect::<Vec<_>>() {
            let direct = t.real_neighbors(v);
            let two_hop = t.two_hop_real_neighborhood(v);
            for d in direct {
                assert!(two_hop.contains(&d));
            }
            assert!(!two_hop.contains(&v));
        }
    }
}
