//! Exact floating-point expansion arithmetic.
//!
//! The robust predicates of [`crate::predicates`] fall back to exact
//! arithmetic when their floating-point filter cannot certify a sign.  The
//! exact path represents every intermediate value as an *expansion*: a sum of
//! non-overlapping `f64` components whose exact mathematical sum is the value
//! being represented (Shewchuk, *Adaptive Precision Floating-Point Arithmetic
//! and Fast Robust Geometric Predicates*, 1997).
//!
//! Only the handful of primitives needed by the predicates is implemented:
//! error-free transformations ([`two_sum`], [`two_diff`], [`two_product`]),
//! expansion growth and addition, scaling by a scalar, full expansion
//! products, and sign extraction.  The code favours clarity over raw speed:
//! the exact path is only exercised on (near-)degenerate inputs, which are a
//! vanishing fraction of the predicate calls issued while building a
//! 300 000-object overlay.

/// Splitter constant used by [`split`]: `2^27 + 1` for IEEE-754 binary64.
const SPLITTER: f64 = 134_217_729.0;

/// Error-free transformation of a sum: returns `(hi, lo)` with
/// `hi + lo == a + b` exactly and `hi = fl(a + b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bvirt = hi - a;
    let avirt = hi - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (hi, around + bround)
}

/// Error-free transformation of a sum when `|a| >= |b|` is known.
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bvirt = hi - a;
    (hi, b - bvirt)
}

/// Error-free transformation of a difference: `(hi, lo)` with
/// `hi + lo == a - b` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bvirt = a - hi;
    let avirt = hi + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (hi, around + bround)
}

/// Splits a double into two non-overlapping halves whose sum is exact.
#[inline]
pub fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let ahi = c - abig;
    let alo = a - ahi;
    (ahi, alo)
}

/// Error-free transformation of a product: `(hi, lo)` with
/// `hi + lo == a * b` exactly.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = hi - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (hi, alo * blo - err3)
}

/// An exact multi-component value: the mathematical value is the exact sum of
/// `components`, stored in order of increasing magnitude.
///
/// The representation is not necessarily canonical (zero components may be
/// present); [`Expansion::estimate`] and [`Expansion::sign`] are nonetheless
/// exact because they rely only on the exact-sum invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    components: Vec<f64>,
}

impl Expansion {
    /// The zero expansion.
    pub fn zero() -> Self {
        Expansion { components: vec![] }
    }

    /// An expansion holding a single double.
    pub fn from_f64(a: f64) -> Self {
        if a == 0.0 {
            Expansion::zero()
        } else {
            Expansion {
                components: vec![a],
            }
        }
    }

    /// Builds an expansion from the error-free pair produced by
    /// [`two_sum`]/[`two_diff`]/[`two_product`] (`hi`, `lo`).
    pub fn from_two(hi: f64, lo: f64) -> Self {
        let mut e = Expansion {
            components: Vec::with_capacity(2),
        };
        if lo != 0.0 {
            e.components.push(lo);
        }
        if hi != 0.0 {
            e.components.push(hi);
        }
        e
    }

    /// Exact difference of two doubles as an expansion.
    pub fn diff(a: f64, b: f64) -> Self {
        let (hi, lo) = two_diff(a, b);
        Expansion::from_two(hi, lo)
    }

    /// Exact product of two doubles as an expansion.
    pub fn product(a: f64, b: f64) -> Self {
        let (hi, lo) = two_product(a, b);
        Expansion::from_two(hi, lo)
    }

    /// Number of (possibly zero) stored components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the expansion has no components (value exactly zero).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Adds a single double exactly (Shewchuk's `GROW-EXPANSION` with zero
    /// elimination).
    pub fn grow(&self, b: f64) -> Expansion {
        let mut h = Vec::with_capacity(self.components.len() + 1);
        let mut q = b;
        for &e in &self.components {
            let (qnew, hh) = two_sum(q, e);
            if hh != 0.0 {
                h.push(hh);
            }
            q = qnew;
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion { components: h }
    }

    /// Exact sum of two expansions (repeated `grow`, with zero elimination).
    ///
    /// Not the asymptotically fastest algorithm (`FAST-EXPANSION-SUM` would
    /// be), but the operand sizes in the exact predicate fallback are tiny and
    /// correctness is what matters here.
    pub fn add(&self, other: &Expansion) -> Expansion {
        let mut acc = self.clone();
        for &c in &other.components {
            acc = acc.grow(c);
        }
        acc
    }

    /// Exact difference `self - other`.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.negate())
    }

    /// Exact negation.
    pub fn negate(&self) -> Expansion {
        Expansion {
            components: self.components.iter().map(|c| -c).collect(),
        }
    }

    /// Exact product by a single double (Shewchuk's `SCALE-EXPANSION`).
    pub fn scale(&self, b: f64) -> Expansion {
        if b == 0.0 || self.components.is_empty() {
            return Expansion::zero();
        }
        let mut h = Vec::with_capacity(2 * self.components.len());
        let (mut q, hh) = two_product(self.components[0], b);
        if hh != 0.0 {
            h.push(hh);
        }
        for &e in &self.components[1..] {
            let (t1, t0) = two_product(e, b);
            let (q2, h2) = two_sum(q, t0);
            if h2 != 0.0 {
                h.push(h2);
            }
            let (q3, h3) = fast_two_sum(t1, q2);
            if h3 != 0.0 {
                h.push(h3);
            }
            q = q3;
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion { components: h }
    }

    /// Exact product of two expansions (distributes `scale` over the
    /// components of `other` and sums).
    pub fn mul(&self, other: &Expansion) -> Expansion {
        let mut acc = Expansion::zero();
        for &c in &other.components {
            acc = acc.add(&self.scale(c));
        }
        acc
    }

    /// Approximate value: the floating-point sum of the components. By the
    /// non-overlapping property the approximation error is below one ulp of
    /// the result, so in particular the sign of a non-zero estimate matches
    /// the exact sign when the estimate's magnitude dominates rounding — the
    /// exact sign is obtained from the largest-magnitude component instead,
    /// see [`Expansion::sign`].
    pub fn estimate(&self) -> f64 {
        self.components.iter().sum()
    }

    /// Exact sign of the represented value: `-1`, `0` or `1`.
    ///
    /// For an expansion produced by the operations above, the last non-zero
    /// component dominates the sum, so its sign is the sign of the value.
    pub fn sign(&self) -> i32 {
        for &c in self.components.iter().rev() {
            if c > 0.0 {
                return 1;
            }
            if c < 0.0 {
                return -1;
            }
        }
        0
    }

    /// Read-only view of the components (ascending magnitude order).
    pub fn components(&self) -> &[f64] {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_sum_as_f64(e: &Expansion) -> f64 {
        // For the small values used in tests the estimate is exact.
        e.estimate()
    }

    #[test]
    fn two_sum_is_error_free() {
        let a = 1.0;
        let b = 1e-30;
        let (hi, lo) = two_sum(a, b);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, 1e-30);
    }

    #[test]
    fn two_diff_recovers_cancellation() {
        let a = 1.0 + 2f64.powi(-52);
        let b = 1.0;
        let (hi, lo) = two_diff(a, b);
        assert_eq!(hi + lo, 2f64.powi(-52));
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn two_product_error_term() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-30);
        let (hi, lo) = two_product(a, b);
        // a*b = 1 + 2^-29 + 2^-60 ; the 2^-60 term is the roundoff.
        assert_eq!(hi, 1.0 + 2f64.powi(-29));
        assert_eq!(lo, 2f64.powi(-60));
    }

    #[test]
    fn split_halves_sum_exactly() {
        let a = std::f64::consts::PI * 1e10;
        let (hi, lo) = split(a);
        assert_eq!(hi + lo, a);
    }

    #[test]
    fn expansion_grow_and_sign() {
        let e = Expansion::from_f64(1.0).grow(1e-40).grow(-1.0);
        assert_eq!(e.sign(), 1);
        assert_eq!(exact_sum_as_f64(&e), 1e-40);
    }

    #[test]
    fn expansion_add_sub() {
        let a = Expansion::from_f64(3.5);
        let b = Expansion::from_f64(-1.25);
        assert_eq!(exact_sum_as_f64(&a.add(&b)), 2.25);
        assert_eq!(exact_sum_as_f64(&a.sub(&b)), 4.75);
        assert_eq!(a.sub(&a).sign(), 0);
    }

    #[test]
    fn expansion_scale_and_mul() {
        let a = Expansion::diff(1.0 + 2f64.powi(-50), 1.0); // 2^-50 exactly
        let s = a.scale(4.0);
        assert_eq!(exact_sum_as_f64(&s), 2f64.powi(-48));
        let sq = a.mul(&a);
        assert_eq!(exact_sum_as_f64(&sq), 2f64.powi(-100));
        assert_eq!(sq.sign(), 1);
    }

    #[test]
    fn zero_expansion_behaviour() {
        let z = Expansion::zero();
        assert_eq!(z.sign(), 0);
        assert_eq!(z.estimate(), 0.0);
        assert!(z.mul(&Expansion::from_f64(5.0)).sign() == 0);
        assert_eq!(z.add(&Expansion::from_f64(2.0)).estimate(), 2.0);
    }

    #[test]
    fn catastrophic_cancellation_sign_is_exact() {
        // (a*a) - (b*c) where the floating point results are equal but the
        // exact values differ in the last bit.
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-29);
        let c = 1.0;
        let aa = Expansion::product(a, a);
        let bc = Expansion::product(b, c);
        let d = aa.sub(&bc);
        // a^2 = 1 + 2^-29 + 2^-60 ; b*c = 1 + 2^-29  => difference = 2^-60 > 0
        assert_eq!(d.sign(), 1);
    }

    #[test]
    fn negate_flips_sign() {
        let e = Expansion::from_f64(2.0).grow(3e-20);
        assert_eq!(e.negate().sign(), -1);
        assert_eq!(e.negate().negate().estimate(), e.estimate());
    }
}
