//! Planar points and elementary vector operations.
//!
//! VoroNet places every object at a point of the unit square; all geometric
//! reasoning in the overlay is ultimately expressed through [`Point2`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point (or vector) of the Euclidean plane, stored as two `f64`
/// coordinates.
///
/// `Point2` is `Copy` and deliberately tiny (16 bytes) so that the Delaunay
/// triangulation can keep millions of them in a flat `Vec` without pointer
/// chasing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Abscissa (first attribute value in the VoroNet attribute space).
    pub x: f64,
    /// Ordinate (second attribute value in the VoroNet attribute space).
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point2::distance`] and sufficient whenever only
    /// comparisons are needed (greedy routing compares distances, it never
    /// needs the actual metric value).
    #[inline]
    pub fn distance2(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point2) -> f64 {
        self.distance2(other).sqrt()
    }

    /// Component-wise sum, treating both points as vectors.
    #[inline]
    pub fn add(&self, other: Point2) -> Point2 {
        Point2::new(self.x + other.x, self.y + other.y)
    }

    /// Component-wise difference `self - other`.
    #[inline]
    pub fn sub(&self, other: Point2) -> Point2 {
        Point2::new(self.x - other.x, self.y - other.y)
    }

    /// Scales the point (seen as a vector) by `s`.
    #[inline]
    pub fn scale(&self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product `self × other`.
    #[inline]
    pub fn cross(&self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm2().sqrt()
    }

    /// Midpoint of the segment `[self, other]`.
    #[inline]
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: returns `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Distance from `self` to the closed segment `[a, b]`.
    ///
    /// Used by the range-query extension (distance from an object to a query
    /// segment) and by `DistanceToRegion` when clipping against cell edges.
    pub fn distance_to_segment(&self, a: Point2, b: Point2) -> f64 {
        self.distance(self.project_on_segment(a, b))
    }

    /// Orthogonal projection of `self` on the closed segment `[a, b]`.
    ///
    /// When the projection on the supporting line falls outside the segment,
    /// the nearest endpoint is returned instead.
    pub fn project_on_segment(&self, a: Point2, b: Point2) -> Point2 {
        let ab = b.sub(a);
        let len2 = ab.norm2();
        if len2 == 0.0 {
            return a;
        }
        let t = (self.sub(a).dot(ab) / len2).clamp(0.0, 1.0);
        a.lerp(b, t)
    }

    /// Lexicographic comparison (by `x`, then `y`); total order used by the
    /// convex-hull and brute-force Delaunay reference implementations.
    pub fn lex_cmp(&self, other: &Point2) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

impl std::ops::Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, rhs: f64) -> Point2 {
        self.scale(rhs)
    }
}

/// An axis-aligned rectangle, used to describe the attribute-space domain
/// (the unit square in the paper) and the sentinel bounding box of the
/// triangulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Rect {
    /// Creates a rectangle from two opposite corners; the corners are
    /// normalised so that `min` is component-wise below `max`.
    pub fn new(a: Point2, b: Point2) -> Self {
        Rect {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The unit square `[0,1] × [0,1]`, the attribute space used throughout
    /// the paper.
    pub const UNIT: Rect = Rect {
        min: Point2 { x: 0.0, y: 0.0 },
        max: Point2 { x: 1.0, y: 1.0 },
    };

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Length of the diagonal.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.width().hypot(self.height())
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Returns `true` when the point lies inside the rectangle or on its
    /// boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the two rectangles share at least one point
    /// (closed-interval semantics: touching edges intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Clamps a point to the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect {
            min: Point2::new(self.min.x - margin, self.min.y - margin),
            max: Point2::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// The four corners, counter-clockwise starting from `min`.
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.min,
            Point2::new(self.max.x, self.min.y),
            self.max,
            Point2::new(self.min.x, self.max.y),
        ]
    }
}

/// A simple polygon given by its vertices in counter-clockwise order.
///
/// Voronoi cells are returned as `Polygon`s (clipped to the domain when the
/// cell is unbounded).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polygon {
    /// Vertices in counter-clockwise order.
    pub vertices: Vec<Point2>,
}

impl Polygon {
    /// Creates a polygon from a vertex list (assumed CCW).
    pub fn new(vertices: Vec<Point2>) -> Self {
        Polygon { vertices }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the polygon has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Signed area (positive for counter-clockwise orientation).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.cross(b);
        }
        0.5 * acc
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        let n = self.vertices.len();
        if n < 2 {
            return 0.0;
        }
        (0..n)
            .map(|i| self.vertices[i].distance(self.vertices[(i + 1) % n]))
            .sum()
    }

    /// Centroid of the polygon (area-weighted). Returns the vertex average
    /// for degenerate (zero-area) polygons.
    pub fn centroid(&self) -> Point2 {
        let n = self.vertices.len();
        if n == 0 {
            return Point2::ORIGIN;
        }
        let a = self.signed_area();
        if a.abs() < 1e-300 {
            let mut cx = 0.0;
            let mut cy = 0.0;
            for v in &self.vertices {
                cx += v.x;
                cy += v.y;
            }
            return Point2::new(cx / n as f64, cy / n as f64);
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point2::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Point-in-polygon test (winding-free, ray casting). Boundary points may
    /// be classified either way; callers needing exactness should rely on the
    /// triangulation predicates instead.
    pub fn contains(&self, p: Point2) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Clips the polygon against an axis-aligned rectangle using the
    /// Sutherland–Hodgman algorithm. The result is again convex whenever the
    /// input is convex (Voronoi cells are convex).
    pub fn clip_to_rect(&self, rect: Rect) -> Polygon {
        #[derive(Clone, Copy)]
        enum Side {
            Left(f64),
            Right(f64),
            Bottom(f64),
            Top(f64),
        }
        fn inside(p: Point2, s: Side) -> bool {
            match s {
                Side::Left(x) => p.x >= x,
                Side::Right(x) => p.x <= x,
                Side::Bottom(y) => p.y >= y,
                Side::Top(y) => p.y <= y,
            }
        }
        fn intersect(a: Point2, b: Point2, s: Side) -> Point2 {
            match s {
                Side::Left(x) | Side::Right(x) => {
                    let t = (x - a.x) / (b.x - a.x);
                    Point2::new(x, a.y + t * (b.y - a.y))
                }
                Side::Bottom(y) | Side::Top(y) => {
                    let t = (y - a.y) / (b.y - a.y);
                    Point2::new(a.x + t * (b.x - a.x), y)
                }
            }
        }

        let sides = [
            Side::Left(rect.min.x),
            Side::Right(rect.max.x),
            Side::Bottom(rect.min.y),
            Side::Top(rect.max.y),
        ];
        let mut output = self.vertices.clone();
        for s in sides {
            if output.is_empty() {
                break;
            }
            let input = std::mem::take(&mut output);
            let n = input.len();
            for i in 0..n {
                let cur = input[i];
                let prev = input[(i + n - 1) % n];
                let cur_in = inside(cur, s);
                let prev_in = inside(prev, s);
                if cur_in {
                    if !prev_in {
                        output.push(intersect(prev, cur, s));
                    }
                    output.push(cur);
                } else if prev_in {
                    output.push(intersect(prev, cur, s));
                }
            }
        }
        Polygon::new(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_norm() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance2(b), 25.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a.add(b), Point2::new(4.0, 1.0));
        assert_eq!(a.sub(b), Point2::new(-2.0, 3.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert_eq!(a.scale(2.0), Point2::new(2.0, 4.0));
        assert_eq!(a.midpoint(b), Point2::new(2.0, 0.5));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }

    #[test]
    fn segment_projection_clamps_to_endpoints() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        assert_eq!(Point2::new(-1.0, 1.0).project_on_segment(a, b), a);
        assert_eq!(Point2::new(2.0, 1.0).project_on_segment(a, b), b);
        assert_eq!(
            Point2::new(0.25, 1.0).project_on_segment(a, b),
            Point2::new(0.25, 0.0)
        );
        assert_eq!(Point2::new(0.5, 2.0).distance_to_segment(a, b), 2.0);
    }

    #[test]
    fn degenerate_segment_projection() {
        let a = Point2::new(1.0, 1.0);
        assert_eq!(Point2::new(5.0, 5.0).project_on_segment(a, a), a);
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::UNIT;
        assert!(r.contains(Point2::new(0.5, 0.5)));
        assert!(r.contains(Point2::new(0.0, 1.0)));
        assert!(!r.contains(Point2::new(-0.1, 0.5)));
        assert_eq!(r.clamp(Point2::new(2.0, -1.0)), Point2::new(1.0, 0.0));
        assert_eq!(r.area(), 1.0);
        assert!((r.diagonal() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rect_inflate_and_corners() {
        let r = Rect::UNIT.inflate(1.0);
        assert_eq!(r.min, Point2::new(-1.0, -1.0));
        assert_eq!(r.max, Point2::new(2.0, 2.0));
        let c = Rect::UNIT.corners();
        assert_eq!(c[2], Point2::new(1.0, 1.0));
    }

    #[test]
    fn polygon_area_and_centroid() {
        let square = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ]);
        assert!((square.area() - 1.0).abs() < 1e-12);
        assert!((square.signed_area() - 1.0).abs() < 1e-12);
        assert!((square.perimeter() - 4.0).abs() < 1e-12);
        let c = square.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn polygon_contains() {
        let tri = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ]);
        assert!(tri.contains(Point2::new(0.25, 0.25)));
        assert!(!tri.contains(Point2::new(0.75, 0.75)));
    }

    #[test]
    fn polygon_clip_to_rect() {
        let big = Polygon::new(vec![
            Point2::new(-1.0, -1.0),
            Point2::new(2.0, -1.0),
            Point2::new(2.0, 2.0),
            Point2::new(-1.0, 2.0),
        ]);
        let clipped = big.clip_to_rect(Rect::UNIT);
        assert!((clipped.area() - 1.0).abs() < 1e-9);
        for v in &clipped.vertices {
            assert!(Rect::UNIT.inflate(1e-9).contains(*v));
        }
    }

    #[test]
    fn polygon_clip_disjoint_is_empty() {
        let far = Polygon::new(vec![
            Point2::new(10.0, 10.0),
            Point2::new(11.0, 10.0),
            Point2::new(11.0, 11.0),
        ]);
        assert!(far.clip_to_rect(Rect::UNIT).is_empty());
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        let a = Point2::new(0.0, 5.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 6.0);
        assert_eq!(a.lex_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&c), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&a), std::cmp::Ordering::Equal);
    }
}
