//! Convex hull (Andrew's monotone chain) and a brute-force Delaunay edge
//! oracle.
//!
//! Neither is used on the hot path of the overlay; they provide independent
//! reference implementations against which the incremental triangulation is
//! validated in tests, and small utilities for the examples.

use crate::point::Point2;
use crate::predicates::{incircle, orient2d, Orientation};

/// Convex hull of a point set, counter-clockwise, first point repeated not
/// included.  Collinear points on the hull boundary are dropped.
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(b));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) != Orientation::Positive
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) != Orientation::Positive
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop();
    hull
}

/// Brute-force Delaunay edge test: `a` and `b` (indices into `points`) are
/// Delaunay neighbours iff some circle through them is empty of all other
/// points.  For points in general position this is equivalent to the
/// existence of a third point `c` such that the circumcircle of `(a, b, c)`
/// is empty, or to `a`–`b` being a hull edge of a 2-point set.
///
/// Complexity is O(n²) per edge — strictly a test oracle for small inputs.
pub fn is_delaunay_edge_bruteforce(points: &[Point2], a: usize, b: usize) -> bool {
    let n = points.len();
    if n == 2 {
        return true;
    }
    let pa = points[a];
    let pb = points[b];
    for c in 0..n {
        if c == a || c == b {
            continue;
        }
        let pc = points[c];
        if orient2d(pa, pb, pc).is_zero() {
            continue;
        }
        // Orient the triangle counter-clockwise.
        let (x, y, z) = if orient2d(pa, pb, pc).is_positive() {
            (pa, pb, pc)
        } else {
            (pa, pc, pb)
        };
        let mut empty = true;
        for (d, &pd) in points.iter().enumerate() {
            if d == a || d == b || d == c {
                continue;
            }
            if incircle(x, y, z, pd) == Orientation::Positive {
                empty = false;
                break;
            }
        }
        if empty {
            return true;
        }
    }
    false
}

/// All Delaunay edges of a small point set, computed by brute force.
/// Returns index pairs `(i, j)` with `i < j`.
pub fn delaunay_edges_bruteforce(points: &[Point2]) -> Vec<(usize, usize)> {
    let n = points.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if is_delaunay_edge_bruteforce(points, i, j) {
                edges.push((i, j));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Rect;
    use crate::triangulation::Triangulation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn hull_of_square_plus_interior() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
            Point2::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for corner in Rect::UNIT.corners() {
            assert!(hull.contains(&corner));
        }
    }

    #[test]
    fn hull_collinear_points() {
        let pts: Vec<Point2> = (0..10)
            .map(|i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
    }

    #[test]
    fn hull_of_fewer_than_three_points() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point2::new(1.0, 2.0)]).len(), 1);
        let two = convex_hull(&[Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn hull_is_convex_and_contains_all_points() {
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Point2> = (0..200)
            .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let hull = convex_hull(&pts);
        let n = hull.len();
        assert!(n >= 3);
        for i in 0..n {
            let a = hull[i];
            let b = hull[(i + 1) % n];
            let c = hull[(i + 2) % n];
            assert!(
                orient2d(a, b, c).is_positive(),
                "hull must be strictly convex"
            );
            for &p in &pts {
                assert!(
                    !orient2d(a, b, p).is_negative(),
                    "all points left of hull edges"
                );
            }
        }
    }

    #[test]
    fn incremental_triangulation_matches_bruteforce_interior_edges() {
        // Compare the incremental structure with the brute-force oracle on a
        // small random instance.  Hull-incident edges may legitimately differ
        // because of the sentinel box (see DESIGN.md), so the comparison is
        // restricted to edges between points strictly interior to the hull.
        let mut rng = StdRng::seed_from_u64(17);
        let pts: Vec<Point2> = (0..40)
            .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let hull = convex_hull(&pts);
        let is_hull = |p: Point2| hull.iter().any(|&h| h.x == p.x && h.y == p.y);

        let mut tri = Triangulation::unit_square();
        let ids: Vec<_> = pts.iter().map(|&p| tri.insert(p).unwrap()).collect();

        let brute = delaunay_edges_bruteforce(&pts);
        for (i, j) in brute {
            if is_hull(pts[i]) || is_hull(pts[j]) {
                continue;
            }
            assert!(
                tri.are_neighbors(ids[i], ids[j]),
                "brute-force Delaunay edge ({i},{j}) missing from the triangulation"
            );
        }
        // Conversely, every interior incremental edge must be a brute-force
        // Delaunay edge.
        for (vi, &v) in ids.iter().enumerate() {
            if is_hull(pts[vi]) {
                continue;
            }
            for n in tri.real_neighbors(v) {
                let nj = ids.iter().position(|&x| x == n).unwrap();
                if is_hull(pts[nj]) {
                    continue;
                }
                assert!(
                    is_delaunay_edge_bruteforce(&pts, vi, nj),
                    "incremental edge ({vi},{nj}) is not Delaunay"
                );
            }
        }
    }
}
