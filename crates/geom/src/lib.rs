//! # voronet-geom
//!
//! Robust 2-D computational geometry substrate for the VoroNet
//! reproduction (Beaumont, Kermarrec, Marchal, Rivière — *VoroNet: A
//! scalable object network based on Voronoi tessellations*, IPDPS 2007).
//!
//! The crate provides everything the overlay needs from computational
//! geometry, implemented from scratch:
//!
//! * [`Point2`], [`Rect`], [`Polygon`] — elementary planar types;
//! * [`predicates`] — exact orientation and in-circle tests (floating-point
//!   filter with an exact expansion-arithmetic fallback), the robustness
//!   mechanism standing in for the paper's Sugihara–Iri construction;
//! * [`Triangulation`] — incremental Delaunay triangulation with point
//!   location, insertion and removal, the structure behind `vn(o)`,
//!   `AddVoronoiRegion` and `RemoveVoronoiRegion`;
//! * [`voronoi`] — Voronoi cells, `DistanceToRegion` and region-ownership
//!   queries;
//! * [`hull`] — convex hull and a brute-force Delaunay oracle used to
//!   validate the incremental structure.
//!
//! ```
//! use voronet_geom::{Point2, Triangulation};
//!
//! let mut tri = Triangulation::unit_square();
//! let a = tri.insert(Point2::new(0.2, 0.3)).unwrap();
//! let b = tri.insert(Point2::new(0.7, 0.8)).unwrap();
//! assert!(tri.are_neighbors(a, b));
//! assert_eq!(tri.nearest_vertex(Point2::new(0.1, 0.1)), Some(a));
//! ```

#![warn(missing_docs)]

pub mod expansion;
pub mod hull;
pub mod point;
pub mod predicates;
pub mod triangulation;
pub mod voronoi;

pub use point::{Point2, Polygon, Rect};
pub use predicates::{circumcenter, incircle, orient2d, Orientation};
pub use triangulation::{InsertError, Locate, RemoveError, TriId, Triangulation, VertexId};
pub use voronoi::{cell_stats, distance_to_region, voronoi_cell, CellStats, VoronoiCell};
