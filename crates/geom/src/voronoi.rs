//! Voronoi views over the Delaunay triangulation.
//!
//! VoroNet reasons about *Voronoi regions*: `R(o)` is the set of points
//! closer to object `o` than to any other object.  The triangulation stores
//! the dual (Delaunay) structure; this module derives the primal quantities
//! the protocol needs: cell polygons, the closest point of a region to an
//! external point (`DistanceToRegion` in the paper) and region-ownership
//! tests.

use crate::point::{Point2, Polygon, Rect};
use crate::predicates::circumcenter;
use crate::triangulation::{Triangulation, VertexId};

/// The Voronoi cell of a vertex, as a convex polygon.
///
/// Cells of objects whose region is unbounded in the true (sentinel-free)
/// diagram are bounded here by the sentinel box; [`VoronoiCell::clipped`]
/// restricts them to the attribute domain, which is what the figures and the
/// range queries use.
#[derive(Debug, Clone)]
pub struct VoronoiCell {
    /// The owner of the cell.
    pub site: VertexId,
    /// The site's coordinates.
    pub center: Point2,
    /// Cell polygon (counter-clockwise), possibly extending beyond the
    /// attribute domain for hull objects.
    pub polygon: Polygon,
}

impl VoronoiCell {
    /// The cell clipped to a rectangle (usually the unit square).
    pub fn clipped(&self, rect: Rect) -> Polygon {
        self.polygon.clip_to_rect(rect)
    }

    /// Area of the cell clipped to the given rectangle.
    pub fn area_in(&self, rect: Rect) -> f64 {
        self.clipped(rect).area()
    }
}

/// Computes the Voronoi cell of `v`.
///
/// The polygon vertices are the circumcentres of the triangles incident to
/// `v`, in counter-clockwise order.  Degenerate (collinear) triangles —
/// which can only involve sentinel corners — contribute no vertex.
pub fn voronoi_cell(tri: &Triangulation, v: VertexId) -> VoronoiCell {
    let mut cell = Vec::new();
    for t in tri.incident_triangles(v) {
        if let Some(ids) = tri.triangle_vertices(t) {
            let (a, b, c) = (tri.point(ids[0]), tri.point(ids[1]), tri.point(ids[2]));
            if let Some(cc) = circumcenter(a, b, c) {
                cell.push(cc);
            }
        }
    }
    VoronoiCell {
        site: v,
        center: tri.point(v),
        polygon: Polygon::new(cell),
    }
}

/// The closest point of `v`'s Voronoi region to the point `p`
/// (`DistanceToRegion` in the paper, Section 4.2.3).
///
/// If `p` lies inside the region, `p`'s owner is `v` and the paper specifies
/// that the object's own coordinates are returned.
pub fn distance_to_region(tri: &Triangulation, v: VertexId, p: Point2) -> Point2 {
    let site = tri.point(v);
    // Ownership test: p belongs to R(v) iff v is at least as close to p as
    // every Delaunay neighbour of v.
    let d_self = site.distance2(p);
    let owned = tri
        .neighbors(v)
        .iter()
        .all(|&n| tri.point(n).distance2(p) >= d_self);
    if owned {
        return site;
    }
    // Otherwise project p on the cell polygon boundary and return the
    // closest boundary point.
    let cell = voronoi_cell(tri, v);
    let poly = &cell.polygon.vertices;
    if poly.len() < 2 {
        return site;
    }
    let mut best = poly[0];
    let mut best_d = best.distance2(p);
    let n = poly.len();
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        let q = p.project_on_segment(a, b);
        let d = q.distance2(p);
        if d < best_d {
            best = q;
            best_d = d;
        }
    }
    best
}

/// True when `p` belongs to the Voronoi region of `v` (ties included), i.e.
/// no other live vertex is strictly closer to `p`.
pub fn region_contains(tri: &Triangulation, v: VertexId, p: Point2) -> bool {
    match tri.nearest_vertex(p) {
        Some(owner) => {
            tri.point(owner).distance2(p) >= tri.point(v).distance2(p) - f64::EPSILON
                && tri.point(v).distance2(p) <= tri.point(owner).distance2(p) + f64::EPSILON
        }
        None => false,
    }
}

/// Summary statistics of all Voronoi cells clipped to the domain; used by
/// examples and by load-balance analyses.
#[derive(Debug, Clone, Default)]
pub struct CellStats {
    /// Number of cells measured.
    pub count: usize,
    /// Mean clipped cell area.
    pub mean_area: f64,
    /// Maximum clipped cell area.
    pub max_area: f64,
    /// Minimum clipped cell area.
    pub min_area: f64,
}

/// Computes [`CellStats`] over every real vertex of the triangulation.
pub fn cell_stats(tri: &Triangulation, domain: Rect) -> CellStats {
    let mut stats = CellStats {
        count: 0,
        mean_area: 0.0,
        max_area: f64::MIN,
        min_area: f64::MAX,
    };
    for v in tri.vertices() {
        let a = voronoi_cell(tri, v).area_in(domain);
        stats.count += 1;
        stats.mean_area += a;
        stats.max_area = stats.max_area.max(a);
        stats.min_area = stats.min_area.min(a);
    }
    if stats.count > 0 {
        stats.mean_area /= stats.count as f64;
    } else {
        stats.max_area = 0.0;
        stats.min_area = 0.0;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn build(n: usize, seed: u64) -> (Triangulation, Vec<VertexId>) {
        let mut t = Triangulation::unit_square();
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = (0..n)
            .map(|_| {
                t.insert(Point2::new(rng.random::<f64>(), rng.random::<f64>()))
                    .unwrap()
            })
            .collect();
        (t, ids)
    }

    #[test]
    fn cells_tile_the_domain() {
        let (t, _) = build(200, 1);
        let total: f64 = t
            .vertices()
            .map(|v| voronoi_cell(&t, v).area_in(Rect::UNIT))
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "clipped Voronoi cells must tile the unit square, got total area {total}"
        );
    }

    #[test]
    fn cell_contains_its_site() {
        let (t, ids) = build(80, 2);
        for &v in ids.iter().take(30) {
            let cell = voronoi_cell(&t, v);
            assert!(
                cell.clipped(Rect::UNIT).contains(t.point(v)) || cell.polygon.contains(t.point(v)),
                "a site must lie in its own cell"
            );
        }
    }

    #[test]
    fn distance_to_region_inside_returns_site() {
        let (t, ids) = build(50, 3);
        for &v in &ids {
            let p = t.point(v);
            assert_eq!(distance_to_region(&t, v, p), p);
        }
    }

    #[test]
    fn distance_to_region_outside_is_on_boundary() {
        let (t, ids) = build(100, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            let owner = t.nearest_vertex(p).unwrap();
            for &v in ids.iter().take(10) {
                if v == owner {
                    continue;
                }
                let z = distance_to_region(&t, v, p);
                // The returned point is at least as close to p as the site,
                // and never closer than the owner's distance of zero-region.
                assert!(z.distance2(p) <= t.point(v).distance2(p) + 1e-12);
                // z must be (approximately) in v's region: v is among the
                // closest sites to z.
                let dz = t.point(v).distance2(z);
                let closest = t.point(t.nearest_vertex(z).unwrap()).distance2(z);
                assert!(dz <= closest + 1e-9);
            }
        }
    }

    #[test]
    fn region_contains_matches_nearest_vertex() {
        let (t, _) = build(60, 6);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            let owner = t.nearest_vertex(p).unwrap();
            assert!(region_contains(&t, owner, p));
        }
    }

    #[test]
    fn cell_stats_reasonable() {
        let (t, _) = build(300, 8);
        let stats = cell_stats(&t, Rect::UNIT);
        assert_eq!(stats.count, 300);
        assert!((stats.mean_area - 1.0 / 300.0).abs() < 1e-6);
        assert!(stats.max_area >= stats.mean_area);
        assert!(stats.min_area <= stats.mean_area);
        assert!(stats.min_area >= 0.0);
    }
}
