//! The differential harness: one script, five executions, zero tolerated
//! disagreement.
//!
//! [`run_case`] replays a [`FuzzCase`] simultaneously against
//!
//! 1. **sync/1** — the live `VoroNet` walk, one op at a time (the
//!    reference execution);
//! 2. **sync/N** — `SyncEngine::apply_batch` with `threads` workers
//!    (frozen-snapshot parallel read runs between write barriers);
//! 3. **async** — the message-driven `AsyncOverlay` runtime on a
//!    loss-free network;
//! 4. **frozen** — every read served through a
//!    [`FrozenView`](voronet_core::FrozenView) rebuilt at
//!    each write barrier ([`crate::frozen::FrozenReplay`]);
//!
//! checking every [`OpResult`] element-wise across all four and against
//! the O(n²) [`OracleModel`].  When the case carries a lossy
//! [`NetProfile`], a fifth async execution runs under loss, latency
//! shifts and partition windows — its results legitimately diverge, so it
//! is checked for *sanity* instead: only `OperationLost`/`UnknownObject`
//! failures, structural invariants intact after every round.
//!
//! Audit points close every resolution round: populations, dense orders,
//! coordinates, aggregate stats, per-node sent counters and invariant
//! audits (with non-vacuity asserted via
//! [`InvariantAudit`](voronet_core::InvariantAudit) counts), plus — while
//! the population is small — the oracle's brute-force Delaunay
//! cross-check of the engine's Voronoi neighbour relation.

use crate::frozen::{Fault, FrozenReplay};
use crate::grammar::{FuzzCase, NetProfile};
use crate::oracle::OracleModel;
use voronet_api::{resolve_workload, AsyncEngine, Op, OpResult, Overlay, SyncEngine};
use voronet_core::{ErrorKind, VoroNetConfig};
use voronet_geom::Point2;
use voronet_services::ServiceEngine;
use voronet_sim::NetworkModel;

/// A disagreement between executions (or between an execution and the
/// oracle): what the fuzzer hunts and the shrinker preserves.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index into the *resolved* op stream at which the disagreement
    /// surfaced (`None` for audit-point divergences).
    pub op_index: Option<usize>,
    /// Short machine-matchable label ("result:sync/N", "oracle", …).
    pub kind: String,
    /// Full human-readable diagnostic.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op_index {
            Some(i) => write!(f, "[{}] at op {}: {}", self.kind, i, self.detail),
            None => write!(f, "[{}]: {}", self.kind, self.detail),
        }
    }
}

/// What a divergence-free run covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Ops resolved and executed on every engine.
    pub ops_run: usize,
    /// Resolution rounds (== audit points).
    pub rounds: usize,
    /// Final population.
    pub population: usize,
    /// Operations the lossy companion run lost to the network.
    pub lossy_lost: usize,
    /// Invariant checks performed across all audits (sum of audited
    /// nodes).
    pub invariants_checked: usize,
}

struct Fleet {
    sync1: ServiceEngine<SyncEngine>,
    syncn: ServiceEngine<SyncEngine>,
    asynchronous: ServiceEngine<AsyncEngine>,
    frozen: ServiceEngine<FrozenReplay>,
    lossy: Option<ServiceEngine<AsyncEngine>>,
    oracle: OracleModel,
}

impl Fleet {
    fn build(case: &FuzzCase, fault: Fault) -> Fleet {
        // Every execution carries the service layer, so scripts mixing
        // pub/sub and KV traffic into the protocol stream exercise it on
        // all engines at once — including the KV ownership handoff hooks
        // that churn ops trigger.
        let config = VoroNetConfig::new(case.nmax).with_seed(case.seed);
        Fleet {
            sync1: ServiceEngine::new(SyncEngine::new(config).with_threads(1)),
            syncn: ServiceEngine::new(SyncEngine::new(config).with_threads(case.threads)),
            asynchronous: ServiceEngine::new(AsyncEngine::new(config, NetworkModel::ideal())),
            frozen: ServiceEngine::new(FrozenReplay::new(config, fault)),
            lossy: match case.net {
                NetProfile::Ideal => None,
                lossy => Some(ServiceEngine::new(AsyncEngine::new(
                    config,
                    lossy.network(),
                ))),
            },
            oracle: OracleModel::new(&config),
        }
    }
}

fn result_divergence(
    engine: &str,
    base: usize,
    ops: &[Op],
    reference: &[OpResult],
    candidate: &[OpResult],
) -> Option<Divergence> {
    debug_assert_eq!(reference.len(), candidate.len());
    for (i, (want, got)) in reference.iter().zip(candidate).enumerate() {
        if want != got {
            return Some(Divergence {
                op_index: Some(base + i),
                kind: format!("result:{engine}"),
                detail: format!(
                    "op {:?} diverges on {engine}: reference (sync/1) {want:?}, {engine} {got:?}",
                    ops[i]
                ),
            });
        }
    }
    None
}

fn audit_fleet(fleet: &mut Fleet, round: usize, report: &mut RunReport) -> Result<(), Divergence> {
    let fail = |kind: &str, detail: String| Divergence {
        op_index: None,
        kind: kind.to_string(),
        detail: format!("audit after round {round}: {detail}"),
    };

    // Populations and dense orders agree everywhere.
    let ids = fleet.sync1.ids();
    for (name, other) in [
        ("sync/N", fleet.syncn.ids()),
        ("async", fleet.asynchronous.ids()),
        ("frozen", fleet.frozen.inner().net().ids().collect()),
    ] {
        if other != ids {
            return Err(fail(
                "audit:population",
                format!("dense id order diverges on {name}: sync/1 {ids:?}, {name} {other:?}"),
            ));
        }
    }
    for &id in &ids {
        let c = fleet.sync1.coords(id);
        for (name, other) in [
            ("sync/N", fleet.syncn.coords(id)),
            ("async", fleet.asynchronous.coords(id)),
            ("frozen", fleet.frozen.inner().net().coords(id)),
        ] {
            if other != c {
                return Err(fail(
                    "audit:coords",
                    format!("coordinates of {id} diverge on {name}: {c:?} vs {other:?}"),
                ));
            }
        }
    }
    fleet
        .oracle
        .check_population("sync/1", &ids, |id| fleet.sync1.coords(id))
        .map_err(|e| fail("audit:oracle", e))?;

    // Aggregate stats and per-node sent counters across the three
    // deterministic sync-semantics executions.
    let stats = fleet.sync1.stats();
    for (name, other) in [
        ("sync/N", fleet.syncn.stats()),
        ("frozen", fleet.frozen.stats()),
    ] {
        if other != stats {
            return Err(fail(
                "audit:stats",
                format!("aggregate stats diverge on {name}: sync/1 {stats:?}, {name} {other:?}"),
            ));
        }
    }
    for &id in &ids {
        let sent = fleet.sync1.inner().net().sent_by(id);
        for (name, other) in [
            ("sync/N", fleet.syncn.inner().net().sent_by(id)),
            ("frozen", fleet.frozen.inner().net().sent_by(id)),
        ] {
            if other != sent {
                return Err(fail(
                    "audit:traffic",
                    format!(
                        "per-node sent counter of {id} diverges on {name}: {sent:?} vs {other:?}"
                    ),
                ));
            }
        }
    }

    // Structural invariants, with non-vacuous audits.  The exhaustive
    // O(n²) close-set reconstruction runs while it is cheap.
    let exhaustive = ids.len() <= 128;
    for (name, net) in [
        ("sync/1", fleet.sync1.inner().net()),
        ("async", fleet.asynchronous.inner().overlay().net()),
        ("frozen", fleet.frozen.inner().net()),
    ] {
        let audit = net
            .audit_invariants(exhaustive)
            .map_err(|e| fail("audit:invariants", format!("{name}: {e}")))?;
        if audit.nodes != ids.len() {
            return Err(fail(
                "audit:invariants",
                format!(
                    "{name}: invariant audit visited {} nodes of a population of {}",
                    audit.nodes,
                    ids.len()
                ),
            ));
        }
        report.invariants_checked += audit.nodes;
    }

    // Service-layer state — subscriptions, topic sequence numbers, the
    // delivery ledger, the KV table with its placements, and the service
    // counters — agrees bit for bit across the four deterministic
    // executions and matches the oracle's naive model.
    let service = fleet.sync1.service_state();
    for (name, other) in [
        ("sync/N", fleet.syncn.service_state()),
        ("async", fleet.asynchronous.service_state()),
        ("frozen", fleet.frozen.service_state()),
    ] {
        if other != service {
            return Err(fail(
                "audit:services",
                format!("service state diverges on {name}: sync/1 {service:?}, {name} {other:?}"),
            ));
        }
    }
    fleet
        .oracle
        .check_service_state("sync/1", service)
        .map_err(|e| fail("audit:services", e))?;

    // Brute-force Delaunay cross-check while the population is small.
    if ids.len() <= 96 {
        let net = fleet.sync1.inner().net();
        let targets: Vec<Point2> = (0..6)
            .map(|i| {
                let t = f64::from(i) / 6.0;
                Point2::new(0.07 + 0.86 * t, 0.93 - 0.86 * t)
            })
            .collect();
        fleet
            .oracle
            .delaunay_reference_check(
                |id| net.voronoi_neighbours(id).unwrap_or_default(),
                &targets,
            )
            .map_err(|e| fail("audit:delaunay", e))?;
    }
    Ok(())
}

fn check_lossy(
    lossy: &mut ServiceEngine<AsyncEngine>,
    base: usize,
    ops: &[Op],
    report: &mut RunReport,
) -> Result<(), Divergence> {
    let results = lossy.apply_batch(ops);
    for (i, result) in results.iter().enumerate() {
        if let OpResult::Failed(e) = result {
            match e.kind() {
                ErrorKind::OperationLost => report.lossy_lost += 1,
                // The lossy overlay's population legitimately lags the
                // script (lost joins), so later ops may reference objects
                // it never admitted or kept — and an insert the reference
                // rejected as a duplicate may collide differently here.
                ErrorKind::UnknownObject(_)
                | ErrorKind::UnknownBootstrap(_)
                | ErrorKind::DuplicatePosition(_) => {}
                other => {
                    return Err(Divergence {
                        op_index: Some(base + i),
                        kind: "lossy:error-kind".to_string(),
                        detail: format!(
                            "lossy run failed op {:?} with unexpected kind {other:?}: {e}",
                            ops[i]
                        ),
                    })
                }
            }
        }
    }
    // Only the *overlay* invariants are demanded here: the service
    // layer's owner-is-nearest KV invariant assumes reliable transport
    // (a loss-degraded route can legitimately resolve a put to a stale
    // owner, and a timed-out join skips the handoff hook), so it is
    // verified on the deterministic engines via the oracle's
    // service-state audit instead.
    lossy.inner().verify_invariants().map_err(|e| Divergence {
        op_index: None,
        kind: "lossy:invariants".to_string(),
        detail: format!("lossy run violated invariants: {e}"),
    })?;
    Ok(())
}

/// Executes a case across the fleet.  `Ok` means every check of every
/// round passed; `Err` carries the first divergence.
pub fn run_case(case: &FuzzCase, fault: Fault) -> Result<RunReport, Divergence> {
    let mut fleet = Fleet::build(case, fault);
    let mut report = RunReport::default();
    let round_len = case.round.max(1);

    for (round, chunk) in case.script.chunks(round_len).enumerate() {
        // Resolve participant indices against live state once per round,
        // so this round's ops can address objects earlier rounds created.
        let ops = resolve_workload(&fleet.sync1, chunk);
        let base = report.ops_run;

        let reference: Vec<OpResult> = ops.iter().map(|op| fleet.sync1.apply(op)).collect();
        let batched = fleet.syncn.apply_batch(&ops);
        if let Some(d) = result_divergence("sync/N", base, &ops, &reference, &batched) {
            return Err(d);
        }
        let asynchronous = fleet.asynchronous.apply_batch(&ops);
        if let Some(d) = result_divergence("async", base, &ops, &reference, &asynchronous) {
            return Err(d);
        }
        let frozen: Vec<OpResult> = ops.iter().map(|op| fleet.frozen.apply(op)).collect();
        if let Some(d) = result_divergence("frozen", base, &ops, &reference, &frozen) {
            return Err(d);
        }
        for (i, (op, result)) in ops.iter().zip(&reference).enumerate() {
            fleet
                .oracle
                .check_apply(op, result)
                .map_err(|e| Divergence {
                    op_index: Some(base + i),
                    kind: "oracle".to_string(),
                    detail: e,
                })?;
        }
        if let Some(lossy) = fleet.lossy.as_mut() {
            check_lossy(lossy, base, &ops, &mut report)?;
        }

        report.ops_run += ops.len();
        report.rounds = round + 1;
        audit_fleet(&mut fleet, round, &mut report)?;
    }
    report.population = fleet.sync1.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate_case, FuzzSpec};

    #[test]
    fn smoke_cases_run_divergence_free() {
        for seed in [1u64, 2] {
            let case = generate_case(&FuzzSpec {
                warmup: 16,
                ops: 96,
                ..FuzzSpec::smoke(seed)
            });
            let report = run_case(&case, Fault::None)
                .unwrap_or_else(|d| panic!("seed {seed}: unexpected divergence {d}"));
            assert!(report.ops_run > 0);
            assert!(report.population >= 2);
            assert!(report.invariants_checked > 0, "audits must not be vacuous");
        }
    }

    #[test]
    fn the_planted_fault_is_detected() {
        let case = generate_case(&FuzzSpec {
            warmup: 12,
            ops: 64,
            lossy: false,
            ..FuzzSpec::smoke(11)
        });
        let d = run_case(&case, Fault::FrozenRouteExtraHop)
            .expect_err("a wrong hop count must be caught");
        assert_eq!(d.kind, "result:frozen", "{d}");
        assert!(d.op_index.is_some());
    }
}
