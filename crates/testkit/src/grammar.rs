//! Seeded generation of fuzz cases from a weighted op grammar.
//!
//! A [`FuzzCase`] is fully self-describing: the overlay parameters, the
//! network profile of the lossy companion run, and an engine-agnostic
//! [`WorkloadOp`] script (participants named by dense population index, so
//! the script survives arbitrary subsequence removal during shrinking).
//! Generation reuses [`OpBatchGenerator`]/[`OpMix`] as the grammar
//! backbone: the script opens with a warm-up burst of inserts, then
//! alternates weighted segments — read-heavy serving, churn bursts,
//! read-only stretches (which exercise the frozen parallel path), a
//! balanced mix that includes snapshots, and service segments (region
//! pub/sub and coordinate-keyed KV traffic, occasionally with a
//! Zipf-skewed hot-topic palette) — while the lossy profile layers
//! network events on top: iid loss, latency shifts and partition windows.
//! Service segments are always part of the rotation; [`FuzzSpec::services`]
//! biases generation towards them for service-focused fuzzing.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use voronet_sim::{LatencyModel, NetworkModel, PartitionWindow};
use voronet_workloads::{Distribution, OpBatchGenerator, OpMix, PointGenerator, WorkloadOp};

/// Knobs of case generation (what [`generate_case`] consumes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzSpec {
    /// Master seed: two specs with the same seed generate the same case.
    pub seed: u64,
    /// Warm-up inserts opening the script.
    pub warmup: usize,
    /// Generated operations after the warm-up.
    pub ops: usize,
    /// Provisioned overlay capacity (`N_max`).
    pub nmax: usize,
    /// Worker threads of the parallel sync engine under test.
    pub threads: usize,
    /// Whether to attach a lossy network profile (adds the lossy async
    /// companion run).
    pub lossy: bool,
    /// Bias generation towards service segments (pub/sub + KV).  Service
    /// traffic appears in every case regardless; this roughly triples its
    /// share for service-focused fuzzing.
    pub services: bool,
}

impl FuzzSpec {
    /// A small, CI-friendly spec (a few hundred ops).
    pub fn smoke(seed: u64) -> Self {
        FuzzSpec {
            seed,
            warmup: 24,
            ops: 220,
            nmax: 400,
            threads: 4,
            lossy: seed % 2 == 1,
            services: false,
        }
    }

    /// The acceptance-grade spec: a 10k-op script.
    pub fn deep(seed: u64) -> Self {
        FuzzSpec {
            seed,
            warmup: 120,
            ops: 10_000,
            nmax: 4_000,
            threads: 4,
            lossy: true,
            services: false,
        }
    }
}

/// The network conditions of the lossy companion run, in serializable
/// form (resolved to a [`NetworkModel`] at execution time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetProfile {
    /// No companion run: only the four deterministic executions.
    Ideal,
    /// A lossy, latency-shifting, occasionally partitioned network.
    Lossy {
        /// Seed of the network's own RNG.
        seed: u64,
        /// iid per-message loss probability.
        loss: f64,
        /// Initial latency bounds (uniform in `[min, max]`).
        lat_min: u64,
        /// Upper latency bound.
        lat_max: u64,
        /// Optional latency shift: from instant `.0`, latency becomes
        /// uniform in `[.1, .2]`.
        shift: Option<(u64, u64, u64)>,
        /// Optional partition window `(start, end, groups)`.
        partition: Option<(u64, u64, u64)>,
    },
}

impl NetProfile {
    /// Builds the concrete network model.
    pub fn network(&self) -> NetworkModel {
        match *self {
            NetProfile::Ideal => NetworkModel::ideal(),
            NetProfile::Lossy {
                seed,
                loss,
                lat_min,
                lat_max,
                shift,
                partition,
            } => {
                let mut model = NetworkModel::new(
                    seed,
                    LatencyModel::Uniform {
                        min: lat_min,
                        max: lat_max,
                    },
                )
                .with_loss(loss);
                if let Some((at, min, max)) = shift {
                    model = model.with_latency_shift(at, LatencyModel::Uniform { min, max });
                }
                if let Some((start, end, groups)) = partition {
                    model = model.with_partition(PartitionWindow { start, end, groups });
                }
                model
            }
        }
    }
}

/// One self-contained, replayable fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Seed of every engine's stochastic choices.
    pub seed: u64,
    /// Provisioned overlay capacity.
    pub nmax: usize,
    /// Worker threads of the parallel sync engine.
    pub threads: usize,
    /// Ops per resolution round (scripts resolve participant indices
    /// against live state once per round, so later rounds can address
    /// objects inserted by earlier ones).
    pub round: usize,
    /// Network profile of the lossy companion run.
    pub net: NetProfile,
    /// The op script.
    pub script: Vec<WorkloadOp>,
}

/// Generates the case a spec describes (deterministic in `spec.seed`).
pub fn generate_case(spec: &FuzzSpec) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7E57_4B17);
    let mut script = Vec::with_capacity(spec.warmup + spec.ops);

    // Warm-up: enough population for routes/queries to be non-trivial.
    let mut points = PointGenerator::new(Distribution::Uniform, spec.seed ^ 0x57A2);
    for _ in 0..spec.warmup {
        script.push(WorkloadOp::Insert {
            position: points.next_point(),
        });
    }

    // Weighted segments over the OpMix grammar.
    let mut pop = spec.warmup.max(1);
    while script.len() < spec.warmup + spec.ops {
        let remaining = spec.warmup + spec.ops - script.len();
        let len = rng.random_range(32..=192usize).min(remaining);
        let selector = if spec.services && rng.random_range(0..2u32) == 0 {
            // Service-focused fuzzing: force a service segment half the
            // time, the regular rotation otherwise.
            10 + rng.random_range(0..2u32)
        } else {
            rng.random_range(0..12u32)
        };
        let service_segment = selector >= 10;
        let mix = match selector {
            0..=3 => OpMix {
                snapshot: 0.02,
                ..OpMix::read_heavy()
            },
            4..=5 => OpMix::churn_heavy(),
            6..=7 => OpMix {
                snapshot: 0.05,
                ..OpMix::read_only()
            },
            8..=9 => OpMix {
                insert: 0.15,
                remove: 0.10,
                route: 0.45,
                range: 0.10,
                radius: 0.10,
                snapshot: 0.10,
                ..OpMix::routes_only()
            },
            // Service segments: a publish-heavy and a KV-heavy flavour.
            // Both keep some churn in the residual protocol share, so KV
            // ownership handoff runs under live insert/remove pressure.
            10 => OpMix::services(55, 25),
            _ => OpMix::services(15, 60),
        };
        let dist = match rng.random_range(0..4u32) {
            0 => Distribution::Uniform,
            1 => Distribution::PowerLaw { alpha: 1.0 },
            2 => Distribution::Clusters {
                clusters: 5,
                spread: 0.05,
            },
            _ => Distribution::Grid {
                side: 24,
                jitter: 0.4,
            },
        };
        let extent = if rng.random_range(0..4u32) == 0 {
            1.0
        } else {
            0.2
        };
        let mut gen =
            OpBatchGenerator::new(dist, rng.random::<u64>(), mix).with_max_query_extent(extent);
        if service_segment && rng.random_range(0..2u32) == 0 {
            // Half the service segments publish into a Zipf-skewed
            // hot-topic palette instead of fresh rectangles, so per-topic
            // sequence numbers climb and duplicate detection gets traffic.
            gen = gen.with_zipf_topics(1.0);
        }
        let segment = gen.batch(pop, len);
        for op in &segment {
            match op {
                WorkloadOp::Insert { .. } => pop += 1,
                WorkloadOp::Remove { .. } => pop = pop.saturating_sub(1).max(1),
                _ => {}
            }
        }
        script.extend(segment);
    }

    let net = if spec.lossy {
        let lat_min = rng.random_range(1..4u64);
        let lat_max = lat_min + rng.random_range(1..12u64);
        let shift = if rng.random_range(0..2u32) == 0 {
            let min = rng.random_range(1..6u64);
            Some((
                rng.random_range(50..400u64),
                min,
                min + rng.random_range(1..20u64),
            ))
        } else {
            None
        };
        let partition = if rng.random_range(0..3u32) == 0 {
            let start = rng.random_range(50..600u64);
            Some((
                start,
                start + rng.random_range(20..200u64),
                rng.random_range(2..4u64),
            ))
        } else {
            None
        };
        NetProfile::Lossy {
            seed: rng.random::<u64>(),
            loss: f64::from(rng.random_range(1..30u32)) / 100.0,
            lat_min,
            lat_max,
            shift,
            partition,
        }
    } else {
        NetProfile::Ideal
    };

    FuzzCase {
        seed: spec.seed,
        nmax: spec.nmax,
        threads: spec.threads.max(1),
        round: 64,
        net,
        script,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = FuzzSpec::smoke(42);
        assert_eq!(generate_case(&spec), generate_case(&spec));
        let other = FuzzSpec::smoke(43);
        assert_ne!(generate_case(&spec).script, generate_case(&other).script);
    }

    #[test]
    fn scripts_open_with_the_warmup_and_hit_the_requested_length() {
        let spec = FuzzSpec::smoke(7);
        let case = generate_case(&spec);
        assert_eq!(case.script.len(), spec.warmup + spec.ops);
        assert!(case.script[..spec.warmup]
            .iter()
            .all(|op| matches!(op, WorkloadOp::Insert { .. })));
        // The generated tail contains more than one op family.
        let tail = &case.script[spec.warmup..];
        assert!(tail.iter().any(|op| matches!(op, WorkloadOp::Route { .. })));
        assert!(tail
            .iter()
            .any(|op| matches!(op, WorkloadOp::Insert { .. })));
    }

    #[test]
    fn lossy_profiles_resolve_to_lossy_networks() {
        let case = generate_case(&FuzzSpec {
            lossy: true,
            ..FuzzSpec::smoke(3)
        });
        let NetProfile::Lossy { .. } = case.net else {
            panic!("lossy spec must generate a lossy profile");
        };
        assert!(case.net.network().is_lossy());
        let ideal = generate_case(&FuzzSpec {
            lossy: false,
            ..FuzzSpec::smoke(3)
        });
        assert_eq!(ideal.net, NetProfile::Ideal);
    }
}
