//! The frozen-snapshot execution under differential test, plus fault
//! injection.
//!
//! [`FrozenReplay`] drives its own [`VoroNet`] through the same op
//! sequence as the engines, but serves every read through a [`FrozenView`]
//! kept current by **epoch-keyed delta refresh** ([`FrozenView::refresh`])
//! — the maintenance path `SyncEngine::apply_batch` relies on, here
//! exercised at *every* read so each write barrier's patch is covered by
//! the differential oracle (a faithful run freezes from scratch exactly
//! once and patches thereafter).  Traffic deltas are replayed onto the
//! overlay after each read, which must reproduce the live engines'
//! counters bit for bit.
//!
//! [`Fault`] deliberately corrupts this execution (never the shared
//! production code): the harness's self-test injects a wrong hop count
//! into the frozen route results and asserts the differential checker
//! catches it and the shrinker reduces the offending script to a handful
//! of ops.

use voronet_api::{
    InsertOutcome, Overlay, OverlayStats, QueryOutcome, RemoveOutcome, RouteOutcome,
};
use voronet_core::queries::{radius_query_in, range_query_in};
use voronet_core::snapshot::{FrozenView, RouteScratch, SnapshotStats, ViewRefresh};
use voronet_core::{ObjectId, ObjectView, OverlayError, VoroNet, VoroNetConfig, VoronetError};
use voronet_geom::Point2;
use voronet_sim::RouteStats;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// A deliberate defect injected into the frozen execution (self-test
/// instrumentation; [`Fault::None`] in every real fuzz run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: the frozen execution is faithful.
    #[default]
    None,
    /// Every frozen route that takes at least one hop reports one hop too
    /// many — the "wrong hop in a scratch copy of `FrozenView`" defect the
    /// acceptance self-test plants and expects to be caught and shrunk.
    FrozenRouteExtraHop,
}

/// The frozen-view execution of an op sequence (see the [module
/// docs](self)).
pub struct FrozenReplay {
    net: VoroNet,
    routes: RouteStats,
    scratch: RouteScratch,
    view: Option<FrozenView>,
    fault: Fault,
}

impl FrozenReplay {
    /// Creates a replay engine over a fresh overlay.
    pub fn new(config: VoroNetConfig, fault: Fault) -> Self {
        FrozenReplay {
            net: VoroNet::new(config),
            routes: RouteStats::new(),
            scratch: RouteScratch::new(),
            view: None,
            fault,
        }
    }

    /// Read access to the underlying overlay.
    pub fn net(&self) -> &VoroNet {
        &self.net
    }

    fn sabotage(&self, owner: ObjectId, hops: u32) -> RouteOutcome {
        let hops = match self.fault {
            Fault::FrozenRouteExtraHop if hops >= 1 => hops + 1,
            _ => hops,
        };
        RouteOutcome { owner, hops }
    }

    /// Runs one frozen-view walk (`FrozenView::route_to_point_in` or
    /// `FrozenView::route_between_in` — the exact helpers the parallel
    /// sync engine's read runs call), replays the accounting and applies
    /// the configured fault to the outcome.
    fn frozen_route(
        &mut self,
        walk: impl FnOnce(&FrozenView, &mut RouteScratch) -> Result<(ObjectId, u32), OverlayError>,
    ) -> Result<RouteOutcome, VoronetError> {
        // Epoch-keyed maintenance: freeze once, then bring the retained
        // view forward through the change log at every read — exactly the
        // delta path the production engine depends on, so the oracle
        // exercises patching after every interleaved write.
        let refresh = match self.view.as_mut() {
            None => {
                self.view = Some(self.net.freeze());
                ViewRefresh::Rebuilt
            }
            Some(view) => view.refresh(&self.net),
        };
        self.net.record_view_refresh(&refresh);
        let view = self.view.as_ref().expect("just built");
        self.scratch.delta.clear();
        let (owner, hops) = walk(view, &mut self.scratch)?;
        self.net.apply_traffic(&self.scratch.delta);
        self.routes.record(hops);
        Ok(self.sabotage(owner, hops))
    }

    /// Drops the retained snapshot so the next read freezes from scratch
    /// instead of delta-patching (used by tests).
    pub fn invalidate(&mut self) {
        self.view = None;
    }
}

/// The [`Overlay`] implementation mirrors the per-op semantics of the
/// synchronous engine but serves every read through the retained frozen
/// snapshot; writes do not drop the view — the epoch moves on and the
/// next read delta-patches the retained snapshot forward.  Implementing
/// the trait lets the service layer (`ServiceEngine`) wrap this replay
/// exactly like the production engines.
impl Overlay for FrozenReplay {
    fn engine_name(&self) -> &'static str {
        "frozen"
    }

    fn config(&self) -> &VoroNetConfig {
        self.net.config()
    }

    fn len(&self) -> usize {
        self.net.len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.net.contains(id)
    }

    fn coords(&self, id: ObjectId) -> Option<Point2> {
        self.net.coords(id)
    }

    fn id_at(&self, index: usize) -> Option<ObjectId> {
        self.net.id_at(index)
    }

    fn insert(&mut self, position: Point2) -> Result<InsertOutcome, VoronetError> {
        let report = self.net.insert(position)?;
        Ok(InsertOutcome { id: report.id })
    }

    fn remove(&mut self, id: ObjectId) -> Result<RemoveOutcome, VoronetError> {
        self.net.remove(id)?;
        Ok(RemoveOutcome { id })
    }

    fn route(&mut self, from: ObjectId, target: Point2) -> Result<RouteOutcome, VoronetError> {
        self.frozen_route(|view, scratch| view.route_to_point_in(from, target, scratch))
    }

    fn route_between(
        &mut self,
        from: ObjectId,
        to: ObjectId,
    ) -> Result<RouteOutcome, VoronetError> {
        self.frozen_route(|view, scratch| view.route_between_in(from, to, scratch))
    }

    fn range(&mut self, from: ObjectId, query: RangeQuery) -> Result<QueryOutcome, VoronetError> {
        self.scratch.delta.clear();
        let report = range_query_in(&self.net, from, query, &mut self.scratch)?;
        self.net.apply_traffic(&self.scratch.delta);
        Ok(report.into())
    }

    fn radius(&mut self, from: ObjectId, query: RadiusQuery) -> Result<QueryOutcome, VoronetError> {
        self.scratch.delta.clear();
        let report = radius_query_in(&self.net, from, query, &mut self.scratch)?;
        self.net.apply_traffic(&self.scratch.delta);
        Ok(report.into())
    }

    fn snapshot(&self, id: ObjectId) -> Result<ObjectView, VoronetError> {
        Ok(self.net.view(id)?)
    }

    fn stats(&self) -> OverlayStats {
        OverlayStats {
            population: self.net.len(),
            messages: self.net.traffic().total(),
            routes_completed: self.routes.count() as u64,
            mean_route_hops: if self.routes.count() == 0 {
                0.0
            } else {
                self.routes.mean()
            },
        }
    }

    /// Snapshot-maintenance economics of this replay: a faithful run over
    /// a script with interleaved writes shows exactly one full rebuild
    /// (the first read) and a delta patch per read-after-write barrier.
    fn snapshot_stats(&self) -> SnapshotStats {
        self.net.snapshot_stats()
    }

    fn verify_invariants(&self) -> Result<(), VoronetError> {
        self.net.check_invariants(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voronet_api::{Op, OpResult, OverlayBuilder};
    use voronet_geom::Point2;
    use voronet_workloads::{Distribution, PointGenerator, RangeQuery};

    #[test]
    fn faithful_replay_matches_the_sync_engine_bit_for_bit() {
        let mut engine = OverlayBuilder::new(300).seed(31).build_sync();
        let mut replay = FrozenReplay::new(*engine.config(), Fault::None);
        let mut points = PointGenerator::new(Distribution::Uniform, 31);
        let mut ops: Vec<Op> = (0..60)
            .map(|_| Op::Insert {
                position: points.next_point(),
            })
            .collect();
        for i in 0..40u64 {
            ops.push(Op::RouteBetween {
                from: ObjectId(i % 50),
                to: ObjectId((i * 7 + 1) % 50),
            });
        }
        ops.push(Op::Range {
            from: ObjectId(2),
            query: RangeQuery {
                rect: voronet_geom::Rect::new(Point2::new(0.2, 0.2), Point2::new(0.7, 0.7)),
            },
        });
        ops.push(Op::Remove { id: ObjectId(5) });
        ops.push(Op::Snapshot { id: ObjectId(6) });
        for op in &ops {
            let live = engine.apply(op);
            let frozen = replay.apply(op);
            assert_eq!(live, frozen, "op {op:?}");
        }
        assert_eq!(engine.stats(), replay.stats());
        for id in engine.ids() {
            assert_eq!(engine.net().sent_by(id), replay.net().sent_by(id));
        }
    }

    #[test]
    fn interleaved_writes_take_the_delta_patch_path_and_stay_faithful() {
        let mut engine = OverlayBuilder::new(200).seed(47).build_sync();
        let mut replay = FrozenReplay::new(*engine.config(), Fault::None);
        let mut points = PointGenerator::new(Distribution::Uniform, 47);
        let mut ops: Vec<Op> = (0..40)
            .map(|_| Op::Insert {
                position: points.next_point(),
            })
            .collect();
        // Alternate write barriers and reads so every read after the first
        // must patch the retained view rather than rebuild it.
        for i in 0..15u64 {
            ops.push(Op::RouteBetween {
                from: ObjectId(i % 30),
                to: ObjectId((i * 11 + 2) % 30),
            });
            ops.push(Op::Remove {
                id: ObjectId(30 + i),
            });
            ops.push(Op::Insert {
                position: points.next_point(),
            });
        }
        ops.push(Op::RouteBetween {
            from: ObjectId(1),
            to: ObjectId(2),
        });
        for op in &ops {
            assert_eq!(engine.apply(op), replay.apply(op), "op {op:?}");
        }
        assert_eq!(engine.stats(), replay.stats());
        let snap = replay.snapshot_stats();
        assert_eq!(snap.full_rebuilds, 1, "exactly one from-scratch freeze");
        assert!(
            snap.delta_patches >= 15,
            "every read-after-write barrier must patch (got {})",
            snap.delta_patches
        );
        // The retained, many-times-patched view equals a fresh freeze
        // (the final op was a read, so the view is current).
        let fresh = replay.net().freeze();
        assert_eq!(replay.view.as_ref().expect("reads ran"), &fresh);
    }

    #[test]
    fn the_injected_fault_perturbs_exactly_the_multi_hop_routes() {
        let mut engine = OverlayBuilder::new(100).seed(3).build_sync();
        let mut replay = FrozenReplay::new(*engine.config(), Fault::FrozenRouteExtraHop);
        let mut points = PointGenerator::new(Distribution::Uniform, 3);
        for _ in 0..20 {
            let op = Op::Insert {
                position: points.next_point(),
            };
            assert_eq!(engine.apply(&op), replay.apply(&op));
        }
        let op = Op::RouteBetween {
            from: ObjectId(0),
            to: ObjectId(0),
        };
        // Self-routes take 0 hops and stay untouched.
        assert_eq!(engine.apply(&op), replay.apply(&op));
        let mut diverged = false;
        for i in 1..20u64 {
            let op = Op::RouteBetween {
                from: ObjectId(0),
                to: ObjectId(i),
            };
            let live = engine.apply(&op);
            let frozen = replay.apply(&op);
            let (OpResult::Routed(l), OpResult::Routed(f)) = (&live, &frozen) else {
                panic!("routes between live objects succeed");
            };
            assert_eq!(l.owner, f.owner);
            if l.hops >= 1 {
                assert_eq!(f.hops, l.hops + 1, "fault adds exactly one hop");
                diverged = true;
            }
        }
        assert!(diverged, "some route must take at least one hop");
    }
}
